//! Local SQL execution engine.
//!
//! Executes parsed queries against real in-memory [`RecordBatch`]es using
//! the `skadi-arrow` kernels. The distributed runtime *prices* execution
//! on the simulated cluster; this engine *computes actual answers*, which
//! (a) validates the planner's semantics and (b) powers the examples that
//! want to show real results.
//!
//! Supported: projection, WHERE conjunctions, equi-joins, GROUP BY with
//! `sum`/`count`/`min`/`max`/`avg`, ORDER BY, LIMIT.
//!
//! The hot paths are vectorized: WHERE conjuncts fuse into a single
//! boolean mask ([`compute::and`]) applied once; joins and group-bys key
//! on FNV-1a hashes of the raw column bytes with a typed equality check
//! on collision — no per-row `String` rendering anywhere on the join or
//! group-by key path. Each relational operator also records a
//! wall-clock [`Category::Exec`] span (named after the planner's
//! [`ops`] vertices) so a traced query correlates real compute with the
//! simulated plan.

use std::collections::BTreeMap;
use std::time::Instant;

use skadi_arrow::array::{Array, Value};
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::compute::{self, CmpOp};
use skadi_arrow::datatype::DataType;
use skadi_arrow::schema::{Field, Schema};
use skadi_dcsim::span::{Category, SpanId, Trace, Tracer};
use skadi_dcsim::time::SimTime;
use skadi_flowgraph::profile::{QueryProfile, ShardStats};

use crate::catalog::{Catalog, TableDef};
use crate::sql::ast::{Comparison, Expr, Literal, Query};
use crate::sql::planner::ops;
use crate::sql::{parse, tokenize, SqlError};
use skadi_ir::types::ScalarType;

pub mod parallel;
pub mod pool;

use pool::PARALLEL_MIN_ROWS;

/// An in-memory database: named tables of record batches.
#[derive(Debug, Clone, Default)]
pub struct MemDb {
    tables: BTreeMap<String, RecordBatch>,
}

impl MemDb {
    /// An empty database.
    pub fn new() -> Self {
        MemDb::default()
    }

    /// Registers a table.
    pub fn register(mut self, name: &str, batch: RecordBatch) -> Self {
        self.tables.insert(name.to_string(), batch);
        self
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&RecordBatch, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::Plan(format!("unknown table {name:?}")))
    }

    /// All registered tables, by name.
    pub fn tables(&self) -> &BTreeMap<String, RecordBatch> {
        &self.tables
    }

    /// Parses and executes a query, returning the result batch.
    pub fn query(&self, sql: &str) -> Result<RecordBatch, SqlError> {
        let q = parse(&tokenize(sql)?)?;
        execute(&q, self)
    }

    /// Like [`MemDb::query`], but also returns a [`Trace`] with one
    /// wall-clock span per relational operator (scan/filter/join/
    /// aggregate/project/sort/limit). Span times are real elapsed
    /// nanoseconds mapped onto the virtual timeline, so callers can set
    /// measured compute beside simulated pricing.
    pub fn query_traced(&self, sql: &str) -> Result<(RecordBatch, Trace), SqlError> {
        let q = parse(&tokenize(sql)?)?;
        let mut tracer = Tracer::new(true);
        let out = execute_traced(&q, self, &mut tracer)?;
        Ok((out, tracer.finish()))
    }

    /// Like [`MemDb::query`], but also returns a per-operator
    /// [`QueryProfile`] (single-shard chain: scan → filter → join → … in
    /// execution order). Accepts the query with or without an
    /// `EXPLAIN ANALYZE` prefix. The profile's deterministic portion
    /// (everything except wall time) is a pure function of the query and
    /// the data.
    pub fn query_profiled(&self, sql: &str) -> Result<(RecordBatch, QueryProfile), SqlError> {
        let body = crate::sql::strip_explain_analyze(sql).unwrap_or(sql);
        let q = parse(&tokenize(body)?)?;
        let mut spans = ExecSpans::profiled();
        let out = execute_inner(&q, self, &mut spans)?;
        let chain = spans.profile.take().unwrap_or_default();
        Ok((out, QueryProfile::from_chain(body, 2.0, chain)))
    }

    /// Executes `EXPLAIN ANALYZE <query>` (prefix optional) and renders
    /// the annotated plan tree with measured wall times.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, SqlError> {
        let (_, profile) = self.query_profiled(sql)?;
        Ok(profile.render(true))
    }

    /// Derives a planner [`Catalog`] from the registered tables: schemas
    /// from the batches, cardinalities from their actual row counts and
    /// byte sizes — so the same database drives both real execution and
    /// simulated distributed execution.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for (name, batch) in &self.tables {
            let columns: Vec<(String, ScalarType)> = batch
                .schema()
                .fields()
                .iter()
                .map(|f| {
                    let t = match f.data_type {
                        DataType::Int64 => ScalarType::I64,
                        DataType::Float64 => ScalarType::F64,
                        DataType::Bool => ScalarType::Bool,
                        DataType::Utf8 | DataType::DictUtf8 => ScalarType::Str,
                    };
                    (f.name.clone(), t)
                })
                .collect();
            c = c.table(
                name,
                TableDef {
                    columns,
                    rows: batch.num_rows() as u64,
                    bytes: batch.byte_size() as u64,
                },
            );
        }
        c
    }
}

pub(crate) fn wrap(e: skadi_arrow::error::ArrowError) -> SqlError {
    SqlError::Plan(format!("execution: {e}"))
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::I64(*v),
        Literal::Float(v) => Value::F64(*v),
        Literal::Str(s) => Value::Str(s.clone()),
    }
}

fn cmp_op(op: &str) -> Result<CmpOp, SqlError> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(SqlError::Plan(format!("unsupported operator {other:?}"))),
    })
}

/// Hash-table measurements from one join or group-by kernel invocation.
/// Zero-valued fields mean "not applicable" (e.g. a filter has no hash
/// table); the profile JSON omits them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Hash-table capacity in slots (join build table or group table).
    pub hash_slots: u64,
    /// Probe steps that visited an occupied slot without matching: chain
    /// walks for the join's bucket chains, linear-probe steps for the
    /// group table. A well-sized table keeps this near zero.
    pub hash_collisions: u64,
    /// Distinct groups produced (group-by only).
    pub groups: u64,
    /// Hash-table growth events: how many times a join or group table had
    /// to double capacity and reinsert. The kernels size tables from exact
    /// row-count hints, so this stays 0 on every planned path; a non-zero
    /// value flags a sizing bug.
    pub rehashes: u64,
}

impl KernelStats {
    /// Accumulates another kernel's counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.hash_slots += other.hash_slots;
        self.hash_collisions += other.hash_collisions;
        self.groups += other.groups;
        self.rehashes += other.rehashes;
    }
}

/// Per-operator wall-clock span recorder. Disabled (`inner: None`) it
/// costs one `Instant` read per operator and records nothing. With
/// `profile` set it additionally accumulates a [`ShardStats`] chain for
/// [`QueryProfile::from_chain`].
struct ExecSpans<'a> {
    inner: Option<(&'a mut Tracer, SpanId)>,
    profile: Option<Vec<(String, ShardStats)>>,
    clock: Instant,
}

impl ExecSpans<'_> {
    fn disabled() -> ExecSpans<'static> {
        ExecSpans {
            inner: None,
            profile: None,
            clock: Instant::now(),
        }
    }

    fn profiled() -> ExecSpans<'static> {
        ExecSpans {
            inner: None,
            profile: Some(Vec::new()),
            clock: Instant::now(),
        }
    }

    /// Elapsed wall-clock since the query started, as a virtual time.
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.elapsed().as_nanos() as u64)
    }

    /// Records one completed operator span under the root query span,
    /// with profile detail: measured output bytes, filter selectivity,
    /// and hash-table counters.
    #[allow(clippy::too_many_arguments)]
    fn op_ext(
        &mut self,
        name: &str,
        start: SimTime,
        rows_in: usize,
        rows_out: usize,
        output_bytes: u64,
        selectivity: Option<f64>,
        kernel: KernelStats,
    ) {
        let end = SimTime::from_nanos(self.clock.elapsed().as_nanos() as u64);
        if let Some((tracer, root)) = &mut self.inner {
            tracer.span(
                name,
                "exec",
                Category::Exec,
                Some(*root),
                start,
                end,
                &[
                    ("rows_in", &rows_in.to_string()),
                    ("rows_out", &rows_out.to_string()),
                ],
            );
        }
        if let Some(chain) = &mut self.profile {
            chain.push((
                name.to_string(),
                ShardStats {
                    shard: 0,
                    rows_in: rows_in as u64,
                    rows_out: rows_out as u64,
                    output_bytes,
                    wall_nanos: end.as_nanos().saturating_sub(start.as_nanos()),
                    selectivity,
                    hash_slots: kernel.hash_slots,
                    hash_collisions: kernel.hash_collisions,
                    groups: kernel.groups,
                    rehashes: kernel.rehashes,
                },
            ));
        }
    }

    fn close_root(&mut self, rows_out: usize) {
        if let Some((tracer, root)) = &mut self.inner {
            let end = SimTime::from_nanos(self.clock.elapsed().as_nanos() as u64);
            tracer.attr(*root, "rows_out", &rows_out.to_string());
            tracer.close(*root, end);
        }
    }
}

/// Applies a conjunction of comparisons as ONE filter: each conjunct
/// becomes a boolean mask ([`compute::cmp_scalar`]), the masks fuse with
/// [`compute::and`] (SQL three-valued logic), and the batch is gathered
/// once — instead of materializing an intermediate batch per conjunct.
pub(crate) fn apply_conjuncts(
    batch: &RecordBatch,
    conjuncts: &[&Comparison],
) -> Result<RecordBatch, SqlError> {
    match conjunct_mask(batch, conjuncts)? {
        Some(m) => {
            let idx = compute::mask_to_indices(&m).map_err(wrap)?;
            parallel::take_batch(batch, &idx).map_err(wrap)
        }
        None => Ok(batch.clone()),
    }
}

/// Fuses a conjunction into one boolean mask (`None` for an empty
/// conjunction, meaning "keep everything").
fn conjunct_mask(
    batch: &RecordBatch,
    conjuncts: &[&Comparison],
) -> Result<Option<Array>, SqlError> {
    // Multiple conjuncts over a large batch evaluate concurrently; the
    // branch keys on data size only, so path choice (and the resulting
    // mask bytes) never depends on thread count.
    if conjuncts.len() >= 2 && batch.num_rows() >= PARALLEL_MIN_ROWS {
        return parallel::conjunct_mask(batch, conjuncts);
    }
    let mut mask: Option<Array> = None;
    for c in conjuncts {
        let col = batch.column_by_name(&c.column).map_err(wrap)?;
        let m = compute::cmp_scalar(col, cmp_op(&c.op)?, &literal_value(&c.value)).map_err(wrap)?;
        mask = Some(match mask {
            Some(prev) => compute::and(&prev, &m).map_err(wrap)?,
            None => m,
        });
    }
    Ok(mask)
}

/// Evaluates a conjunction to a selection vector — the indices of the
/// passing rows — WITHOUT materializing the filtered batch. Joins probe
/// through this directly (late materialization), so the filtered columns
/// are gathered exactly once, as part of the join output.
pub(crate) fn selection_indices(
    batch: &RecordBatch,
    conjuncts: &[&Comparison],
) -> Result<Vec<usize>, SqlError> {
    match conjunct_mask(batch, conjuncts)? {
        Some(m) => compute::mask_to_indices(&m).map_err(wrap),
        None => Ok((0..batch.num_rows()).collect()),
    }
}

/// Typed key equality for join collision checks. Floats compare by bit
/// pattern (so NaN keys self-join and `-0.0` stays distinct from `0.0`,
/// matching the old rendered-key semantics); a mixed `Int64`/`Float64`
/// pair compares *exactly* via [`compute::i64_f64_key_eq`] — no lossy
/// `i64 -> f64` cast, so distinct integers above 2^53 never collide.
/// Dictionary and plain string keys compare by resolved value. Null keys
/// never join. Other cross-type pairs are unequal.
fn join_key_eq(l: &Array, li: usize, r: &Array, ri: usize) -> bool {
    match (l, r) {
        (Array::Int64(a), Array::Int64(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        (Array::Float64(a), Array::Float64(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x.to_bits() == y.to_bits())
        }
        (Array::Int64(a), Array::Float64(b)) => {
            matches!(
                (a.get(li), b.get(ri)),
                (Some(x), Some(y)) if compute::i64_f64_key_eq(x, y)
            )
        }
        (Array::Float64(a), Array::Int64(b)) => {
            matches!(
                (a.get(li), b.get(ri)),
                (Some(x), Some(y)) if compute::i64_f64_key_eq(y, x)
            )
        }
        (Array::Bool(a), Array::Bool(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        (Array::Utf8(a), Array::Utf8(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        (Array::DictUtf8(a), Array::DictUtf8(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        (Array::DictUtf8(a), Array::Utf8(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        (Array::Utf8(a), Array::DictUtf8(b)) => {
            matches!((a.get(li), b.get(ri)), (Some(x), Some(y)) if x == y)
        }
        _ => false,
    }
}

/// Folds the high hash bits down before masking to a table bucket, so
/// power-of-two tables see entropy from the whole 64-bit FNV hash.
#[inline]
fn fold_hash(h: u64) -> u64 {
    h ^ (h >> 32)
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Hash equi-join (inner). Right-side key column is dropped from the
/// output; other right columns are appended.
///
/// Keys are bucketed by their raw-byte FNV-1a hash
/// ([`compute::hash_key_column`]) with a typed equality check on each
/// candidate — no per-row key rendering. The build side is a chained
/// bucket table (`head` + `next` arrays) addressed directly by the key
/// hash: zero allocations per bucket and no re-hashing of the `u64`.
/// Null keys match nothing.
pub fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    left_key: &str,
    right_key: &str,
) -> Result<RecordBatch, SqlError> {
    let mut stats = KernelStats::default();
    let (left_rows, right_rows) = join_rows(left, right, left_key, right_key, None, &mut stats)?;
    assemble_join(left, right, right_key, &left_rows, &right_rows)
}

/// [`hash_join`] probing only the left rows in `left_sel` (in selection
/// order): the selection-vector pushdown path. Equivalent to filtering
/// `left` down to `left_sel` first, without materializing that batch.
pub fn hash_join_sel(
    left: &RecordBatch,
    left_sel: &[usize],
    right: &RecordBatch,
    left_key: &str,
    right_key: &str,
) -> Result<RecordBatch, SqlError> {
    let mut stats = KernelStats::default();
    let (left_rows, right_rows) =
        join_rows(left, right, left_key, right_key, Some(left_sel), &mut stats)?;
    assemble_join(left, right, right_key, &left_rows, &right_rows)
}

/// The join core: produces matching `(left_row, right_row)` index pairs
/// in probe order, probing either every left row or just a selection.
/// Build-table capacity and failed chain visits accumulate into `stats`.
pub(crate) fn join_rows(
    left: &RecordBatch,
    right: &RecordBatch,
    left_key: &str,
    right_key: &str,
    left_sel: Option<&[usize]>,
    stats: &mut KernelStats,
) -> Result<(Vec<usize>, Vec<usize>), SqlError> {
    let lk = left.schema().index_of(left_key).map_err(wrap)?;
    let rk = right.schema().index_of(right_key).map_err(wrap)?;
    let lcol = left.column(lk);
    let rcol = right.column(rk);

    // A mixed Int64/Float64 key pair hashes the integer side through its
    // f64 bit pattern so numerically-equal keys share a bucket.
    let mixed = matches!(
        (lcol.data_type(), rcol.data_type()),
        (DataType::Int64, DataType::Float64) | (DataType::Float64, DataType::Int64)
    );

    // Large joins take the partitioned parallel path. The threshold is
    // data-dependent only, so which kernel runs — and every stat it
    // reports — is identical at every thread count.
    let probe_rows = left_sel.map_or(left.num_rows(), |s| s.len());
    if probe_rows.max(right.num_rows()) >= PARALLEL_MIN_ROWS {
        return Ok(parallel::join_rows_partitioned(
            lcol, rcol, mixed, left_sel, stats,
        ));
    }

    // Probe-side hashes: hashing the whole column amortizes best when
    // probing every row, but a selection probe hashes only the rows it
    // touches — `hash_key_at` is bit-identical per row.
    let lh = match left_sel {
        None => compute::hash_key_column(lcol, mixed),
        Some(_) => Vec::new(),
    };
    let rh = compute::hash_key_column(rcol, mixed);

    // Build side: bucket -> chain of right rows. Inserting in reverse
    // row order leaves every chain sorted ascending, preserving the
    // match order of the old ordered-map engine.
    let cap = (right.num_rows() * 2).next_power_of_two().max(16);
    stats.hash_slots += cap as u64;
    let mask = cap as u64 - 1;
    let mut head = vec![EMPTY_SLOT; cap];
    let mut next = vec![EMPTY_SLOT; right.num_rows()];
    let r_validity = rcol.validity();
    for r in (0..right.num_rows()).rev() {
        if r_validity.is_some_and(|v| !v.get(r)) {
            continue;
        }
        let b = (fold_hash(rh[r]) & mask) as usize;
        next[r] = head[b];
        head[b] = r as u32;
    }

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    let mut collisions = 0u64;
    let l_validity = lcol.validity();
    let mut probe = |l: usize, h: u64| {
        if l_validity.is_some_and(|v| !v.get(l)) {
            return;
        }
        let mut r = head[(fold_hash(h) & mask) as usize];
        while r != EMPTY_SLOT {
            let ri = r as usize;
            if rh[ri] == h && join_key_eq(lcol, l, rcol, ri) {
                left_rows.push(l);
                right_rows.push(ri);
            } else {
                collisions += 1;
            }
            r = next[ri];
        }
    };
    match left_sel {
        Some(sel) => {
            for &l in sel {
                probe(l, compute::hash_key_at(lcol, mixed, l));
            }
        }
        None => {
            for (l, &h) in lh.iter().enumerate() {
                probe(l, h);
            }
        }
    }
    stats.hash_collisions += collisions;
    Ok((left_rows, right_rows))
}

/// Gathers matched pairs into the join's output batch: all left columns,
/// then right columns except the key and any name collisions.
pub(crate) fn assemble_join(
    left: &RecordBatch,
    right: &RecordBatch,
    right_key: &str,
    left_rows: &[usize],
    right_rows: &[usize],
) -> Result<RecordBatch, SqlError> {
    let rk = right.schema().index_of(right_key).map_err(wrap)?;
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if i == rk || fields.iter().any(|lf| lf.name == f.name) {
            continue;
        }
        fields.push(f.clone());
        right_cols.push(i);
    }

    let columns = parallel::gather_join_columns(left, right, &right_cols, left_rows, right_rows);
    RecordBatch::try_new(Schema::new(fields), columns).map_err(wrap)
}

/// Typed equality of two rows across the group-key columns. Floats
/// compare by bit pattern; within a group column, null equals null (SQL
/// GROUP BY puts all nulls in one group).
fn group_key_eq(batch: &RecordBatch, cols: &[usize], a: usize, b: usize) -> bool {
    cols.iter().all(|&c| match batch.column(c) {
        Array::Int64(arr) => arr.get(a) == arr.get(b),
        Array::Float64(arr) => match (arr.get(a), arr.get(b)) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            (None, None) => true,
            _ => false,
        },
        Array::Bool(arr) => arr.get(a) == arr.get(b),
        Array::Utf8(arr) => arr.get(a) == arr.get(b),
        Array::DictUtf8(arr) => arr.get(a) == arr.get(b),
    })
}

/// One resolved aggregate: which accumulator runs over which column.
/// Integer sums/mins/maxes stay `Int64`; `count` is `Int64`; everything
/// else (including `avg`) is `Float64`. Non-numeric inputs to
/// `sum`/`min`/`max`/`avg` yield an all-null `Float64` column.
enum AggKind {
    CountStar,
    Count(usize),
    SumI64(usize),
    MinI64(usize),
    MaxI64(usize),
    SumF64(usize),
    MinF64(usize),
    MaxF64(usize),
    Avg(usize),
    NonNumeric,
}

impl AggKind {
    fn data_type(&self) -> DataType {
        match self {
            AggKind::CountStar
            | AggKind::Count(_)
            | AggKind::SumI64(_)
            | AggKind::MinI64(_)
            | AggKind::MaxI64(_) => DataType::Int64,
            _ => DataType::Float64,
        }
    }
}

fn resolve_agg(func: &str, column: &str, input: &RecordBatch) -> Result<AggKind, SqlError> {
    if func == "count" {
        if column == "*" {
            return Ok(AggKind::CountStar);
        }
        return Ok(AggKind::Count(
            input.schema().index_of(column).map_err(wrap)?,
        ));
    }
    let c = input.schema().index_of(column).map_err(wrap)?;
    Ok(match (func, input.column(c).data_type()) {
        ("sum", DataType::Int64) => AggKind::SumI64(c),
        ("min", DataType::Int64) => AggKind::MinI64(c),
        ("max", DataType::Int64) => AggKind::MaxI64(c),
        ("sum", DataType::Float64) => AggKind::SumF64(c),
        ("min", DataType::Float64) => AggKind::MinF64(c),
        ("max", DataType::Float64) => AggKind::MaxF64(c),
        ("avg", DataType::Int64 | DataType::Float64) => AggKind::Avg(c),
        ("sum" | "min" | "max" | "avg", _) => AggKind::NonNumeric,
        (other, _) => return Err(SqlError::Plan(format!("unsupported aggregate {other:?}"))),
    })
}

/// Streaming per-group fold over an `Int64` column: one pass in row
/// order, `Option<i64>` per group (groups with no non-null value stay
/// null).
fn fold_groups_i64(
    col: &Array,
    row_group: &[u32],
    num_groups: usize,
    identity: i64,
    op: fn(i64, i64) -> i64,
) -> Array {
    let a = col.as_i64().expect("resolved as Int64");
    let validity = a.validity();
    let mut acc: Vec<Option<i64>> = vec![None; num_groups];
    for (r, v) in a.iter_raw().enumerate() {
        if validity.is_some_and(|m| !m.get(r)) {
            continue;
        }
        let g = row_group[r] as usize;
        acc[g] = Some(op(acc[g].unwrap_or(identity), v));
    }
    Array::from_opt_i64(acc)
}

/// Streaming per-group fold over a `Float64` column. Folding from the
/// identity (`0.0` / `±INFINITY`) in row order reproduces the old
/// engine's `Vec<f64>`-per-group results bit-for-bit.
fn fold_groups_f64(
    col: &Array,
    row_group: &[u32],
    num_groups: usize,
    identity: f64,
    op: fn(f64, f64) -> f64,
) -> Array {
    let a = col.as_f64().expect("resolved as Float64");
    let validity = a.validity();
    let mut acc: Vec<Option<f64>> = vec![None; num_groups];
    for (r, v) in a.iter_raw().enumerate() {
        if validity.is_some_and(|m| !m.get(r)) {
            continue;
        }
        let g = row_group[r] as usize;
        acc[g] = Some(op(acc[g].unwrap_or(identity), v));
    }
    Array::from_opt_f64(acc)
}

/// Runs one aggregate over the whole input in a single column-at-a-time
/// pass, given each row's group id. No per-group `Vec<f64>` staging.
fn accumulate(
    kind: &AggKind,
    input: &RecordBatch,
    row_group: &[u32],
    group_sizes: &[i64],
) -> Array {
    let ng = group_sizes.len();
    match *kind {
        AggKind::CountStar => Array::from_i64(group_sizes.to_vec()),
        AggKind::Count(c) => {
            let validity = input.column(c).validity();
            let mut counts = vec![0i64; ng];
            for (r, &g) in row_group.iter().enumerate() {
                if validity.is_none_or(|v| v.get(r)) {
                    counts[g as usize] += 1;
                }
            }
            Array::from_i64(counts)
        }
        AggKind::SumI64(c) => fold_groups_i64(input.column(c), row_group, ng, 0, i64::wrapping_add),
        AggKind::MinI64(c) => fold_groups_i64(input.column(c), row_group, ng, i64::MAX, i64::min),
        AggKind::MaxI64(c) => fold_groups_i64(input.column(c), row_group, ng, i64::MIN, i64::max),
        AggKind::SumF64(c) => fold_groups_f64(input.column(c), row_group, ng, 0.0, |a, b| a + b),
        AggKind::MinF64(c) => {
            fold_groups_f64(input.column(c), row_group, ng, f64::INFINITY, f64::min)
        }
        AggKind::MaxF64(c) => {
            fold_groups_f64(input.column(c), row_group, ng, f64::NEG_INFINITY, f64::max)
        }
        AggKind::Avg(c) => {
            let mut sums = vec![0f64; ng];
            let mut counts = vec![0i64; ng];
            match input.column(c) {
                Array::Int64(a) => {
                    let validity = a.validity();
                    for (r, v) in a.iter_raw().enumerate() {
                        if validity.is_some_and(|m| !m.get(r)) {
                            continue;
                        }
                        sums[row_group[r] as usize] += v as f64;
                        counts[row_group[r] as usize] += 1;
                    }
                }
                Array::Float64(a) => {
                    let validity = a.validity();
                    for (r, v) in a.iter_raw().enumerate() {
                        if validity.is_some_and(|m| !m.get(r)) {
                            continue;
                        }
                        sums[row_group[r] as usize] += v;
                        counts[row_group[r] as usize] += 1;
                    }
                }
                _ => unreachable!("avg resolved only for numeric columns"),
            }
            Array::from_opt_f64(
                (0..ng)
                    .map(|g| (counts[g] > 0).then(|| sums[g] / counts[g] as f64))
                    .collect(),
            )
        }
        AggKind::NonNumeric => Array::from_opt_f64(vec![None; ng]),
    }
}

/// Grouped aggregation, keyed on raw-byte row hashes.
///
/// Rows get dense group ids from a `u64`-hash table with typed
/// collision-checked key equality; aggregates then run as single-pass
/// streaming accumulators ([`accumulate`]). A global aggregate (no
/// GROUP BY) always yields exactly one group — even over an empty
/// input, so `count(*)` of nothing is one row holding `0`. Output group
/// order replicates the old engine's `BTreeMap` order by rendering ONE
/// key string per *group* (not per row) and sorting.
pub fn aggregate(q: &Query, input: &RecordBatch) -> Result<RecordBatch, SqlError> {
    aggregate_with_stats(q, input, &mut KernelStats::default())
}

/// [`aggregate`] with kernel counters accumulated into `stats`.
pub(crate) fn aggregate_with_stats(
    q: &Query,
    input: &RecordBatch,
    stats: &mut KernelStats,
) -> Result<RecordBatch, SqlError> {
    let aggs: Vec<(String, String, String)> = q
        .select
        .iter()
        .filter_map(|item| match &item.expr {
            Expr::Agg { func, column } => Some((
                func.clone(),
                column.clone(),
                item.alias
                    .clone()
                    .unwrap_or_else(|| format!("{func}({column})")),
            )),
            Expr::Column(_) => None,
        })
        .collect();
    aggregate_spec(&q.group_by, &aggs, input, stats)
}

/// The aggregation core, independent of the SQL AST: `aggs` is
/// `(func, column, output_name)` triples. Shard execution drives this
/// directly from [`ExecOp::Aggregate`] descriptors. Group-table capacity,
/// linear-probe steps, and the group count accumulate into `stats`.
///
/// [`ExecOp::Aggregate`]: skadi_flowgraph::ExecOp::Aggregate
pub(crate) fn aggregate_spec(
    group_by: &[String],
    aggs: &[(String, String, String)],
    input: &RecordBatch,
    stats: &mut KernelStats,
) -> Result<RecordBatch, SqlError> {
    let group_cols: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema().index_of(g).map_err(wrap))
        .collect::<Result<_, _>>()?;
    let nrows = input.num_rows();

    // Large grouped aggregations take the partitioned parallel path
    // (byte-identical output; the threshold is data-dependent only).
    // Global aggregates stay serial — one group, nothing to partition.
    if !group_cols.is_empty() && nrows >= PARALLEL_MIN_ROWS {
        return parallel::aggregate_partitioned(&group_cols, aggs, input, stats);
    }

    // Assign each row a dense group id.
    let mut row_group: Vec<u32> = Vec::with_capacity(nrows);
    let mut rep_rows: Vec<usize> = Vec::new(); // first row seen per group
    let mut group_sizes: Vec<i64> = Vec::new();
    if group_cols.is_empty() {
        row_group.resize(nrows, 0);
        rep_rows.push(0);
        group_sizes.push(nrows as i64);
    } else {
        let hashes = compute::hash_rows(input, &group_cols);
        // Linear-probing table of group ids, addressed by the row hash,
        // preallocated from the exact row count (so it never rehashes).
        let mut table = parallel::GroupTable::with_capacity_hint(nrows);
        stats.hash_slots += table.capacity() as u64;
        let mut collisions = 0u64;
        for (r, &h) in hashes.iter().enumerate() {
            let (g, inserted) = table.find_or_insert(
                h,
                |g| group_key_eq(input, &group_cols, rep_rows[g as usize], r),
                &mut collisions,
            );
            if inserted {
                rep_rows.push(r);
                group_sizes.push(1);
            } else {
                group_sizes[g as usize] += 1;
            }
            row_group.push(g);
        }
        stats.hash_collisions += collisions;
        stats.rehashes += table.rehashes;
    }
    let ng = group_sizes.len();
    stats.groups += ng as u64;

    // Output order: the old engine iterated a BTreeMap over the rendered
    // group key; sorting one rendered string per group reproduces it in
    // O(groups), not O(rows).
    let mut order: Vec<u32> = (0..ng as u32).collect();
    if !group_cols.is_empty() {
        let keys: Vec<String> = rep_rows
            .iter()
            .map(|&r| {
                group_cols
                    .iter()
                    .map(|&c| input.column(c).value_at(r).to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect();
        order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    }

    // Output schema: group columns then one column per aggregate item.
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|&c| input.schema().field(c).clone())
        .collect();
    let mut kinds: Vec<AggKind> = Vec::new();
    for (func, column, name) in aggs {
        let kind = resolve_agg(func, column, input)?;
        fields.push(Field::new(name.clone(), kind.data_type(), true));
        kinds.push(kind);
    }

    let ordered_reps: Vec<usize> = order.iter().map(|&g| rep_rows[g as usize]).collect();
    let perm: Vec<usize> = order.iter().map(|&g| g as usize).collect();
    let mut columns: Vec<Array> = group_cols
        .iter()
        .map(|&c| input.column(c).take_rows(&ordered_reps))
        .collect();
    for kind in &kinds {
        columns.push(accumulate(kind, input, &row_group, &group_sizes).take_rows(&perm));
    }
    RecordBatch::try_new(Schema::new(fields), columns).map_err(wrap)
}

/// Sorts by one column (via the shared sort kernel; NULLs sort lowest).
pub(crate) fn sort_by(
    batch: &RecordBatch,
    column: &str,
    descending: bool,
) -> Result<RecordBatch, SqlError> {
    let col = batch.column_by_name(column).map_err(wrap)?;
    let order = if descending {
        compute::SortOrder::Descending
    } else {
        compute::SortOrder::Ascending
    };
    // Large sorts run morsel-parallel: the merge's total order makes the
    // permutation identical to the serial stable sort.
    if batch.num_rows() >= PARALLEL_MIN_ROWS {
        let perm = parallel::sort_permutation(col, order);
        return parallel::take_batch(batch, &perm).map_err(wrap);
    }
    let indices = compute::sort_to_indices(col, order);
    compute::take(batch, &indices).map_err(wrap)
}

/// Executes a parsed query against the database.
pub fn execute(q: &Query, db: &MemDb) -> Result<RecordBatch, SqlError> {
    execute_inner(q, db, &mut ExecSpans::disabled())
}

/// Executes a parsed query, recording per-operator [`Category::Exec`]
/// spans into `tracer` under a root `"query"` span.
pub fn execute_traced(q: &Query, db: &MemDb, tracer: &mut Tracer) -> Result<RecordBatch, SqlError> {
    let clock = Instant::now();
    let root = tracer.open("query", "exec", Category::Exec, None, SimTime::ZERO);
    let mut spans = ExecSpans {
        inner: Some((tracer, root)),
        profile: None,
        clock,
    };
    let out = execute_inner(q, db, &mut spans)?;
    spans.close_root(out.num_rows());
    Ok(out)
}

/// Selectivity of a filter step: fraction of input rows that pass.
fn selectivity(rows_in: usize, rows_out: usize) -> Option<f64> {
    (rows_in > 0).then(|| rows_out as f64 / rows_in as f64)
}

fn execute_inner(q: &Query, db: &MemDb, spans: &mut ExecSpans) -> Result<RecordBatch, SqlError> {
    let t0 = spans.now();
    let mut current = db.table(&q.from)?.clone();
    spans.op_ext(
        ops::SCAN,
        t0,
        current.num_rows(),
        current.num_rows(),
        current.byte_size() as u64,
        None,
        KernelStats::default(),
    );

    // Pushdown-equivalent: conjuncts on base-table columns apply before
    // joins; the rest after. Each side fuses into a single mask.
    let (pushed, residual): (Vec<&Comparison>, Vec<&Comparison>) = match &q.predicate {
        Some(p) => p
            .conjuncts
            .iter()
            .partition(|c| current.schema().index_of(&c.column).is_ok()),
        None => (Vec::new(), Vec::new()),
    };
    let mut joins = q.joins.iter();
    if !pushed.is_empty() {
        if let Some(j) = joins.next() {
            // Selection-vector pushdown: the filter yields row indices and
            // the first join probes through them, so the filtered batch is
            // never materialized — passing rows are gathered once, as part
            // of the join output. (The filter op reports 0 output bytes
            // for the same reason.)
            let right = db.table(&j.table)?;
            let t0 = spans.now();
            let rows_in = current.num_rows();
            let sel = selection_indices(&current, &pushed)?;
            spans.op_ext(
                ops::FILTER,
                t0,
                rows_in,
                sel.len(),
                0,
                selectivity(rows_in, sel.len()),
                KernelStats::default(),
            );
            let t0 = spans.now();
            let rows_in = sel.len() + right.num_rows();
            let mut ks = KernelStats::default();
            let (lr, rr) = join_rows(
                &current,
                right,
                &j.left_key,
                &j.right_key,
                Some(&sel),
                &mut ks,
            )?;
            current = assemble_join(&current, right, &j.right_key, &lr, &rr)?;
            spans.op_ext(
                ops::JOIN,
                t0,
                rows_in,
                current.num_rows(),
                current.byte_size() as u64,
                None,
                ks,
            );
        } else {
            let t0 = spans.now();
            let rows_in = current.num_rows();
            current = apply_conjuncts(&current, &pushed)?;
            spans.op_ext(
                ops::FILTER,
                t0,
                rows_in,
                current.num_rows(),
                current.byte_size() as u64,
                selectivity(rows_in, current.num_rows()),
                KernelStats::default(),
            );
        }
    }
    for j in joins {
        let right = db.table(&j.table)?;
        let t0 = spans.now();
        let rows_in = current.num_rows() + right.num_rows();
        let mut ks = KernelStats::default();
        let (lr, rr) = join_rows(&current, right, &j.left_key, &j.right_key, None, &mut ks)?;
        current = assemble_join(&current, right, &j.right_key, &lr, &rr)?;
        spans.op_ext(
            ops::JOIN,
            t0,
            rows_in,
            current.num_rows(),
            current.byte_size() as u64,
            None,
            ks,
        );
    }
    if !residual.is_empty() {
        let t0 = spans.now();
        let rows_in = current.num_rows();
        current = apply_conjuncts(&current, &residual)?;
        spans.op_ext(
            ops::FILTER,
            t0,
            rows_in,
            current.num_rows(),
            current.byte_size() as u64,
            selectivity(rows_in, current.num_rows()),
            KernelStats::default(),
        );
    }

    if q.is_aggregate() {
        let t0 = spans.now();
        let rows_in = current.num_rows();
        let mut ks = KernelStats::default();
        current = aggregate_with_stats(q, &current, &mut ks)?;
        spans.op_ext(
            ops::AGGREGATE,
            t0,
            rows_in,
            current.num_rows(),
            current.byte_size() as u64,
            None,
            ks,
        );
    } else {
        let cols = q.projected_columns();
        if !cols.is_empty() && !cols.contains(&"*") {
            let t0 = spans.now();
            current = current.project(&cols).map_err(wrap)?;
            spans.op_ext(
                ops::PROJECT,
                t0,
                current.num_rows(),
                current.num_rows(),
                current.byte_size() as u64,
                None,
                KernelStats::default(),
            );
        }
    }

    if let Some(ob) = &q.order_by {
        let t0 = spans.now();
        current = sort_by(&current, &ob.column, ob.descending)?;
        spans.op_ext(
            ops::SORT,
            t0,
            current.num_rows(),
            current.num_rows(),
            current.byte_size() as u64,
            None,
            KernelStats::default(),
        );
    }
    if let Some(n) = q.limit {
        let t0 = spans.now();
        let rows_in = current.num_rows();
        let keep = (n.max(0) as usize).min(current.num_rows());
        let indices: Vec<usize> = (0..keep).collect();
        current = compute::take_indices(&current, &indices).map_err(wrap)?;
        spans.op_ext(
            ops::LIMIT,
            t0,
            rows_in,
            current.num_rows(),
            current.byte_size() as u64,
            None,
            KernelStats::default(),
        );
    }
    // Output boundary: results leave the engine as plain columns, so a
    // query over dictionary-encoded tables is byte-identical to one over
    // plain tables.
    Ok(current.dict_decoded())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> MemDb {
        let events = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("user_id", DataType::Int64, false),
                Field::new("kind", DataType::Utf8, false),
                Field::new("value", DataType::Float64, true),
            ]),
            vec![
                Array::from_i64(vec![1, 1, 2, 2, 3, 3]),
                Array::from_utf8(&["click", "view", "click", "click", "view", "click"]),
                Array::from_opt_f64(vec![
                    Some(1.0),
                    Some(2.0),
                    Some(3.0),
                    None,
                    Some(5.0),
                    Some(6.0),
                ]),
            ],
        )
        .unwrap();
        let users = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("user_id", DataType::Int64, false),
                Field::new("country", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_utf8(&["DE", "US", "DE"]),
            ],
        )
        .unwrap();
        MemDb::new()
            .register("events", events)
            .register("users", users)
    }

    #[test]
    fn filter_and_project() {
        let out = db()
            .query("SELECT user_id FROM events WHERE kind = 'click'")
            .unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.column(0).value_at(0), Value::I64(1));
    }

    #[test]
    fn conjunction() {
        let out = db()
            .query("SELECT user_id FROM events WHERE kind = 'click' AND value > 2")
            .unwrap();
        // click rows with value > 2: (2, 3.0), (3, 6.0). Null drops.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn global_aggregate() {
        let out = db().query("SELECT sum(value) FROM events").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).value_at(0), Value::F64(17.0));
    }

    #[test]
    fn group_by_with_alias() {
        let out = db()
            .query("SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind")
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // Rendered-key order: click before view.
        assert_eq!(
            out.column_by_name("kind").unwrap().value_at(0),
            Value::Str("click".into())
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(0),
            Value::F64(10.0)
        );
        assert_eq!(out.column_by_name("n").unwrap().value_at(0), Value::I64(4));
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(1),
            Value::F64(7.0)
        );
    }

    #[test]
    fn count_skips_nulls_star_does_not() {
        let out = db()
            .query("SELECT count(value) AS vals, count(*) AS rows FROM events")
            .unwrap();
        assert_eq!(
            out.column_by_name("vals").unwrap().value_at(0),
            Value::I64(5)
        );
        assert_eq!(
            out.column_by_name("rows").unwrap().value_at(0),
            Value::I64(6)
        );
    }

    #[test]
    fn min_max_avg() {
        let out = db()
            .query("SELECT min(value) AS lo, max(value) AS hi, avg(value) AS mean FROM events")
            .unwrap();
        assert_eq!(
            out.column_by_name("lo").unwrap().value_at(0),
            Value::F64(1.0)
        );
        assert_eq!(
            out.column_by_name("hi").unwrap().value_at(0),
            Value::F64(6.0)
        );
        assert_eq!(
            out.column_by_name("mean").unwrap().value_at(0),
            Value::F64(3.4)
        );
    }

    #[test]
    fn int_aggregates_stay_int64() {
        let out = db()
            .query("SELECT sum(user_id) AS s, min(user_id) AS lo, max(user_id) AS hi FROM events")
            .unwrap();
        assert_eq!(out.column_by_name("s").unwrap().value_at(0), Value::I64(12));
        assert_eq!(out.column_by_name("lo").unwrap().value_at(0), Value::I64(1));
        assert_eq!(out.column_by_name("hi").unwrap().value_at(0), Value::I64(3));
        // avg over ints still floats.
        let out = db().query("SELECT avg(user_id) AS m FROM events").unwrap();
        assert_eq!(
            out.column_by_name("m").unwrap().value_at(0),
            Value::F64(2.0)
        );
    }

    #[test]
    fn global_aggregate_over_empty_input_is_one_row() {
        let out = db()
            .query("SELECT count(*) AS n, sum(value) AS s FROM events WHERE value > 100")
            .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column_by_name("n").unwrap().value_at(0), Value::I64(0));
        assert_eq!(out.column_by_name("s").unwrap().value_at(0), Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let out = db()
            .query("SELECT kind, count(*) AS n FROM events WHERE value > 100 GROUP BY kind")
            .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn join_enriches_rows() {
        let out = db()
            .query(
                "SELECT country, sum(value) AS total FROM events \
                 JOIN users ON user_id = user_id GROUP BY country",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // DE: users 1 and 3 -> 1 + 2 + 5 + 6 = 14; US: user 2 -> 3.
        assert_eq!(
            out.column_by_name("country").unwrap().value_at(0),
            Value::Str("DE".into())
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(0),
            Value::F64(14.0)
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(1),
            Value::F64(3.0)
        );
    }

    #[test]
    fn join_skips_null_keys_and_expands_duplicates() {
        let left = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("l", DataType::Utf8, false),
            ]),
            vec![
                Array::from_opt_i64(vec![Some(1), None, Some(2), Some(1)]),
                Array::from_utf8(&["a", "b", "c", "d"]),
            ],
        )
        .unwrap();
        let right = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("r", DataType::Utf8, false),
            ]),
            vec![
                Array::from_opt_i64(vec![Some(1), Some(1), None]),
                Array::from_utf8(&["x", "y", "z"]),
            ],
        )
        .unwrap();
        let out = hash_join(&left, &right, "k", "k").unwrap();
        // Left rows 0 and 3 (k=1) each match right rows 0 and 1; nulls on
        // either side match nothing.
        assert_eq!(out.num_rows(), 4);
        assert_eq!(
            out.column_by_name("l").unwrap().value_at(0),
            Value::Str("a".into())
        );
        assert_eq!(
            out.column_by_name("r").unwrap().value_at(1),
            Value::Str("y".into())
        );
        assert_eq!(
            out.column_by_name("l").unwrap().value_at(2),
            Value::Str("d".into())
        );
    }

    #[test]
    fn join_mixed_int_float_keys() {
        let left = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("l", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_utf8(&["a", "b", "c"]),
            ],
        )
        .unwrap();
        let right = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("fk", DataType::Float64, false),
                Field::new("r", DataType::Utf8, false),
            ]),
            vec![
                Array::from_f64(vec![2.0, 3.5, 1.0]),
                Array::from_utf8(&["x", "y", "z"]),
            ],
        )
        .unwrap();
        let out = hash_join(&left, &right, "k", "fk").unwrap();
        // 1 <-> 1.0 and 2 <-> 2.0 join; 3 vs 3.5 does not.
        assert_eq!(out.num_rows(), 2);
        assert_eq!(
            out.column_by_name("r").unwrap().value_at(0),
            Value::Str("z".into())
        );
        assert_eq!(
            out.column_by_name("r").unwrap().value_at(1),
            Value::Str("x".into())
        );
    }

    #[test]
    fn join_mixed_keys_exact_above_2_53() {
        // 2^53 is the last f64-exact integer: 2^53 + 1 as f64 rounds back
        // down to 2^53. The old coerced equality joined both left rows to
        // the float key; exact equality joins only the representable one.
        let big = 1i64 << 53;
        let left = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("l", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![big, big + 1]),
                Array::from_utf8(&["exact", "offbyone"]),
            ],
        )
        .unwrap();
        let right = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("fk", DataType::Float64, false),
                Field::new("r", DataType::Utf8, false),
            ]),
            vec![Array::from_f64(vec![big as f64]), Array::from_utf8(&["f"])],
        )
        .unwrap();
        let out = hash_join(&left, &right, "k", "fk").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(
            out.column_by_name("l").unwrap().value_at(0),
            Value::Str("exact".into())
        );
        // Same result with the sides flipped.
        let out = hash_join(&right, &left, "fk", "k").unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn dict_tables_compute_identical_results() {
        let plain = db();
        let mut dict = MemDb::new();
        for (name, batch) in plain.tables() {
            dict = dict.register(name, batch.dict_encoded());
        }
        // The events.kind column actually encoded (2 distinct over 6 rows).
        assert_eq!(
            dict.table("events")
                .unwrap()
                .column_by_name("kind")
                .unwrap()
                .data_type(),
            DataType::DictUtf8
        );
        for sql in [
            "SELECT user_id, kind FROM events WHERE kind = 'click'",
            "SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind",
            "SELECT country, sum(value) AS total FROM events \
             JOIN users ON user_id = user_id GROUP BY country",
            "SELECT kind FROM events ORDER BY kind DESC LIMIT 3",
            "SELECT min(kind) AS lo FROM events",
        ] {
            assert_eq!(plain.query(sql).unwrap(), dict.query(sql).unwrap(), "{sql}");
        }
    }

    #[test]
    fn order_and_limit() {
        let out = db()
            .query("SELECT user_id, value FROM events ORDER BY value DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(
            out.column_by_name("value").unwrap().value_at(0),
            Value::F64(6.0)
        );
        assert_eq!(
            out.column_by_name("value").unwrap().value_at(1),
            Value::F64(5.0)
        );
    }

    #[test]
    fn order_by_string() {
        let out = db()
            .query("SELECT kind FROM events ORDER BY kind DESC LIMIT 1")
            .unwrap();
        assert_eq!(out.column(0).value_at(0), Value::Str("view".into()));
    }

    #[test]
    fn join_respects_filters() {
        let out = db()
            .query(
                "SELECT country FROM events JOIN users ON user_id = user_id \
                 WHERE kind = 'view'",
            )
            .unwrap();
        // Views: user 1 (DE) and user 3 (DE).
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        assert!(db().query("SELECT a FROM missing").is_err());
    }

    #[test]
    fn select_star_passthrough() {
        let out = db().query("SELECT * FROM users").unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn traced_query_emits_operator_spans() {
        let (out, trace) = db()
            .query_traced(
                "SELECT country, sum(value) AS total FROM events \
                 JOIN users ON user_id = user_id \
                 WHERE kind = 'click' GROUP BY country ORDER BY country LIMIT 5",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        trace.validate().unwrap();
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "query",
                ops::SCAN,
                ops::FILTER,
                ops::JOIN,
                ops::AGGREGATE,
                ops::SORT,
                ops::LIMIT
            ]
        );
        assert_eq!(trace.count_category(Category::Exec), names.len());
        // Operator spans nest under the root and carry row counts.
        let root = trace.spans()[0].id;
        for s in &trace.spans()[1..] {
            assert_eq!(s.parent, Some(root));
            assert!(s.attr("rows_in").is_some() && s.attr("rows_out").is_some());
        }
        let agg = trace
            .spans()
            .iter()
            .find(|s| s.name == ops::AGGREGATE)
            .unwrap();
        assert_eq!(agg.attr("rows_out"), Some("2"));
        // The untraced path computes the identical answer.
        assert_eq!(
            db().query(
                "SELECT country, sum(value) AS total FROM events \
                 JOIN users ON user_id = user_id \
                 WHERE kind = 'click' GROUP BY country ORDER BY country LIMIT 5",
            )
            .unwrap(),
            out
        );
    }
}

#[cfg(test)]
mod catalog_bridge_tests {
    use super::*;
    use skadi_arrow::array::Array;

    #[test]
    fn catalog_mirrors_registered_tables() {
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("name", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_utf8(&["a", "b", "c"]),
            ],
        )
        .unwrap();
        let db = MemDb::new().register("people", batch);
        let catalog = db.catalog();
        let def = catalog.get("people").expect("table derived");
        assert_eq!(def.rows, 3);
        assert!(def.bytes > 0);
        assert!(def.has_column("name"));
        // The derived catalog plans real statements.
        let (g, _) = crate::sql::plan_sql("SELECT id FROM people WHERE id > 1", &catalog).unwrap();
        g.validate().unwrap();
    }
}

//! Local SQL execution engine.
//!
//! Executes parsed queries against real in-memory [`RecordBatch`]es using
//! the `skadi-arrow` kernels. The distributed runtime *prices* execution
//! on the simulated cluster; this engine *computes actual answers*, which
//! (a) validates the planner's semantics and (b) powers the examples that
//! want to show real results.
//!
//! Supported: projection, WHERE conjunctions, equi-joins, GROUP BY with
//! `sum`/`count`/`min`/`max`/`avg`, ORDER BY, LIMIT.

use std::collections::BTreeMap;

use skadi_arrow::array::{Array, Value};
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::compute::{self, CmpOp};
use skadi_arrow::datatype::DataType;
use skadi_arrow::schema::{Field, Schema};

use crate::catalog::{Catalog, TableDef};
use crate::sql::ast::{Comparison, Expr, Literal, Query};
use crate::sql::{parse, tokenize, SqlError};
use skadi_ir::types::ScalarType;

/// An in-memory database: named tables of record batches.
#[derive(Debug, Clone, Default)]
pub struct MemDb {
    tables: BTreeMap<String, RecordBatch>,
}

impl MemDb {
    /// An empty database.
    pub fn new() -> Self {
        MemDb::default()
    }

    /// Registers a table.
    pub fn register(mut self, name: &str, batch: RecordBatch) -> Self {
        self.tables.insert(name.to_string(), batch);
        self
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&RecordBatch, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::Plan(format!("unknown table {name:?}")))
    }

    /// Parses and executes a query, returning the result batch.
    pub fn query(&self, sql: &str) -> Result<RecordBatch, SqlError> {
        let q = parse(&tokenize(sql)?)?;
        execute(&q, self)
    }

    /// Derives a planner [`Catalog`] from the registered tables: schemas
    /// from the batches, cardinalities from their actual row counts and
    /// byte sizes — so the same database drives both real execution and
    /// simulated distributed execution.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for (name, batch) in &self.tables {
            let columns: Vec<(String, ScalarType)> = batch
                .schema()
                .fields()
                .iter()
                .map(|f| {
                    let t = match f.data_type {
                        DataType::Int64 => ScalarType::I64,
                        DataType::Float64 => ScalarType::F64,
                        DataType::Bool => ScalarType::Bool,
                        DataType::Utf8 => ScalarType::Str,
                    };
                    (f.name.clone(), t)
                })
                .collect();
            c = c.table(
                name,
                TableDef {
                    columns,
                    rows: batch.num_rows() as u64,
                    bytes: batch.byte_size() as u64,
                },
            );
        }
        c
    }
}

fn wrap(e: skadi_arrow::error::ArrowError) -> SqlError {
    SqlError::Plan(format!("execution: {e}"))
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::I64(*v),
        Literal::Float(v) => Value::F64(*v),
        Literal::Str(s) => Value::Str(s.clone()),
    }
}

fn cmp_op(op: &str) -> Result<CmpOp, SqlError> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(SqlError::Plan(format!("unsupported operator {other:?}"))),
    })
}

/// Applies one conjunct as a filter.
fn apply_filter(batch: &RecordBatch, c: &Comparison) -> Result<RecordBatch, SqlError> {
    let col = batch.column_by_name(&c.column).map_err(wrap)?;
    let mask = compute::cmp_scalar(col, cmp_op(&c.op)?, &literal_value(&c.value)).map_err(wrap)?;
    compute::filter(batch, &mask).map_err(wrap)
}

/// Hash equi-join (inner). Right-side key column is dropped from the
/// output; other right columns are appended.
fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    left_key: &str,
    right_key: &str,
) -> Result<RecordBatch, SqlError> {
    let lk = left.schema().index_of(left_key).map_err(wrap)?;
    let rk = right.schema().index_of(right_key).map_err(wrap)?;

    // Build side: key value -> row indices.
    let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in 0..right.num_rows() {
        let key = right.column(rk).value_at(r);
        if key == Value::Null {
            continue;
        }
        index.entry(key.to_string()).or_default().push(r);
    }

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for l in 0..left.num_rows() {
        let key = left.column(lk).value_at(l);
        if key == Value::Null {
            continue;
        }
        if let Some(matches) = index.get(&key.to_string()) {
            for r in matches {
                left_rows.push(l);
                right_rows.push(*r);
            }
        }
    }

    // Assemble output schema: all left columns, then right columns except
    // the key and any name collisions.
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if i == rk || fields.iter().any(|lf| lf.name == f.name) {
            continue;
        }
        fields.push(f.clone());
        right_cols.push(i);
    }

    let mut columns: Vec<Array> = Vec::with_capacity(fields.len());
    for c in 0..left.num_columns() {
        let values: Vec<Value> = left_rows
            .iter()
            .map(|r| left.column(c).value_at(*r))
            .collect();
        columns.push(Array::from_values(left.column(c).data_type(), &values).map_err(wrap)?);
    }
    for &c in &right_cols {
        let values: Vec<Value> = right_rows
            .iter()
            .map(|r| right.column(c).value_at(*r))
            .collect();
        columns.push(Array::from_values(right.column(c).data_type(), &values).map_err(wrap)?);
    }
    RecordBatch::try_new(Schema::new(fields), columns).map_err(wrap)
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::I64(x) => Some(*x as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// Grouped aggregation.
fn aggregate(q: &Query, input: &RecordBatch) -> Result<RecordBatch, SqlError> {
    let group_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|g| input.schema().index_of(g).map_err(wrap))
        .collect::<Result<_, _>>()?;

    // Group rows by rendered key (deterministic order via BTreeMap).
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in 0..input.num_rows() {
        let key: String = group_cols
            .iter()
            .map(|c| input.column(*c).value_at(r).to_string())
            .collect::<Vec<_>>()
            .join("\u{1}");
        groups.entry(key).or_default().push(r);
    }
    if group_cols.is_empty() && input.num_rows() > 0 {
        // Global aggregate: one group.
        groups.clear();
        groups.insert(String::new(), (0..input.num_rows()).collect());
    }

    // Output schema: group columns then one column per aggregate item.
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|c| input.schema().field(*c).clone())
        .collect();
    let mut agg_items: Vec<(&str, &str, String)> = Vec::new(); // (func, col, out name)
    for item in &q.select {
        if let Expr::Agg { func, column } = &item.expr {
            let name = item
                .alias
                .clone()
                .unwrap_or_else(|| format!("{func}({column})"));
            let dt = if func == "count" {
                DataType::Int64
            } else {
                DataType::Float64
            };
            fields.push(Field::new(name.clone(), dt, true));
            agg_items.push((func, column, name));
        }
    }

    let mut group_values: Vec<Vec<Value>> = vec![Vec::new(); group_cols.len()];
    let mut agg_values: Vec<Vec<Value>> = vec![Vec::new(); agg_items.len()];
    for rows in groups.values() {
        for (i, c) in group_cols.iter().enumerate() {
            group_values[i].push(input.column(*c).value_at(rows[0]));
        }
        for (i, (func, col, _)) in agg_items.iter().enumerate() {
            let v = if *func == "count" {
                if *col == "*" {
                    Value::I64(rows.len() as i64)
                } else {
                    let c = input.schema().index_of(col).map_err(wrap)?;
                    Value::I64(
                        rows.iter()
                            .filter(|r| input.column(c).value_at(**r) != Value::Null)
                            .count() as i64,
                    )
                }
            } else {
                let c = input.schema().index_of(col).map_err(wrap)?;
                let nums: Vec<f64> = rows
                    .iter()
                    .filter_map(|r| numeric(&input.column(c).value_at(*r)))
                    .collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    match *func {
                        "sum" => Value::F64(nums.iter().sum()),
                        "min" => Value::F64(nums.iter().copied().fold(f64::INFINITY, f64::min)),
                        "max" => Value::F64(nums.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                        "avg" => Value::F64(nums.iter().sum::<f64>() / nums.len() as f64),
                        other => {
                            return Err(SqlError::Plan(format!("unsupported aggregate {other:?}")))
                        }
                    }
                }
            };
            agg_values[i].push(v);
        }
    }

    let mut columns = Vec::with_capacity(fields.len());
    for (i, _) in group_cols.iter().enumerate() {
        columns.push(Array::from_values(fields[i].data_type, &group_values[i]).map_err(wrap)?);
    }
    for (i, vals) in agg_values.iter().enumerate() {
        columns
            .push(Array::from_values(fields[group_cols.len() + i].data_type, vals).map_err(wrap)?);
    }
    RecordBatch::try_new(Schema::new(fields), columns).map_err(wrap)
}

/// Sorts by one column (via the shared sort kernel; NULLs sort lowest).
fn sort_by(batch: &RecordBatch, column: &str, descending: bool) -> Result<RecordBatch, SqlError> {
    let col = batch.column_by_name(column).map_err(wrap)?;
    let order = if descending {
        compute::SortOrder::Descending
    } else {
        compute::SortOrder::Ascending
    };
    let indices = compute::sort_to_indices(col, order);
    compute::take(batch, &indices).map_err(wrap)
}

/// Executes a parsed query against the database.
pub fn execute(q: &Query, db: &MemDb) -> Result<RecordBatch, SqlError> {
    let mut current = db.table(&q.from)?.clone();

    // Pushdown-equivalent: apply base-table conjuncts first.
    if let Some(p) = &q.predicate {
        for c in &p.conjuncts {
            if current.schema().index_of(&c.column).is_ok() {
                current = apply_filter(&current, c)?;
            }
        }
    }
    for j in &q.joins {
        let right = db.table(&j.table)?;
        current = hash_join(&current, right, &j.left_key, &j.right_key)?;
    }
    // Residual conjuncts (columns that only exist post-join).
    if let Some(p) = &q.predicate {
        for c in &p.conjuncts {
            if db.table(&q.from)?.schema().index_of(&c.column).is_err() {
                current = apply_filter(&current, c)?;
            }
        }
    }

    if q.is_aggregate() {
        current = aggregate(q, &current)?;
    } else {
        let cols = q.projected_columns();
        if !cols.is_empty() && !cols.contains(&"*") {
            current = current.project(&cols).map_err(wrap)?;
        }
    }

    if let Some(ob) = &q.order_by {
        current = sort_by(&current, &ob.column, ob.descending)?;
    }
    if let Some(n) = q.limit {
        let keep = (n.max(0) as usize).min(current.num_rows());
        let indices = Array::from_i64((0..keep as i64).collect());
        current = compute::take(&current, &indices).map_err(wrap)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> MemDb {
        let events = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("user_id", DataType::Int64, false),
                Field::new("kind", DataType::Utf8, false),
                Field::new("value", DataType::Float64, true),
            ]),
            vec![
                Array::from_i64(vec![1, 1, 2, 2, 3, 3]),
                Array::from_utf8(&["click", "view", "click", "click", "view", "click"]),
                Array::from_opt_f64(vec![
                    Some(1.0),
                    Some(2.0),
                    Some(3.0),
                    None,
                    Some(5.0),
                    Some(6.0),
                ]),
            ],
        )
        .unwrap();
        let users = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("user_id", DataType::Int64, false),
                Field::new("country", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_utf8(&["DE", "US", "DE"]),
            ],
        )
        .unwrap();
        MemDb::new()
            .register("events", events)
            .register("users", users)
    }

    #[test]
    fn filter_and_project() {
        let out = db()
            .query("SELECT user_id FROM events WHERE kind = 'click'")
            .unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.column(0).value_at(0), Value::I64(1));
    }

    #[test]
    fn conjunction() {
        let out = db()
            .query("SELECT user_id FROM events WHERE kind = 'click' AND value > 2")
            .unwrap();
        // click rows with value > 2: (2, 3.0), (3, 6.0). Null drops.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn global_aggregate() {
        let out = db().query("SELECT sum(value) FROM events").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).value_at(0), Value::F64(17.0));
    }

    #[test]
    fn group_by_with_alias() {
        let out = db()
            .query("SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind")
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // BTreeMap ordering: click before view.
        assert_eq!(
            out.column_by_name("kind").unwrap().value_at(0),
            Value::Str("click".into())
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(0),
            Value::F64(10.0)
        );
        assert_eq!(out.column_by_name("n").unwrap().value_at(0), Value::I64(4));
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(1),
            Value::F64(7.0)
        );
    }

    #[test]
    fn count_skips_nulls_star_does_not() {
        let out = db()
            .query("SELECT count(value) AS vals, count(*) AS rows FROM events")
            .unwrap();
        assert_eq!(
            out.column_by_name("vals").unwrap().value_at(0),
            Value::I64(5)
        );
        assert_eq!(
            out.column_by_name("rows").unwrap().value_at(0),
            Value::I64(6)
        );
    }

    #[test]
    fn min_max_avg() {
        let out = db()
            .query("SELECT min(value) AS lo, max(value) AS hi, avg(value) AS mean FROM events")
            .unwrap();
        assert_eq!(
            out.column_by_name("lo").unwrap().value_at(0),
            Value::F64(1.0)
        );
        assert_eq!(
            out.column_by_name("hi").unwrap().value_at(0),
            Value::F64(6.0)
        );
        assert_eq!(
            out.column_by_name("mean").unwrap().value_at(0),
            Value::F64(3.4)
        );
    }

    #[test]
    fn join_enriches_rows() {
        let out = db()
            .query(
                "SELECT country, sum(value) AS total FROM events \
                 JOIN users ON user_id = user_id GROUP BY country",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // DE: users 1 and 3 -> 1 + 2 + 5 + 6 = 14; US: user 2 -> 3.
        assert_eq!(
            out.column_by_name("country").unwrap().value_at(0),
            Value::Str("DE".into())
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(0),
            Value::F64(14.0)
        );
        assert_eq!(
            out.column_by_name("total").unwrap().value_at(1),
            Value::F64(3.0)
        );
    }

    #[test]
    fn order_and_limit() {
        let out = db()
            .query("SELECT user_id, value FROM events ORDER BY value DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(
            out.column_by_name("value").unwrap().value_at(0),
            Value::F64(6.0)
        );
        assert_eq!(
            out.column_by_name("value").unwrap().value_at(1),
            Value::F64(5.0)
        );
    }

    #[test]
    fn order_by_string() {
        let out = db()
            .query("SELECT kind FROM events ORDER BY kind DESC LIMIT 1")
            .unwrap();
        assert_eq!(out.column(0).value_at(0), Value::Str("view".into()));
    }

    #[test]
    fn join_respects_filters() {
        let out = db()
            .query(
                "SELECT country FROM events JOIN users ON user_id = user_id \
                 WHERE kind = 'view'",
            )
            .unwrap();
        // Views: user 1 (DE) and user 3 (DE).
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        assert!(db().query("SELECT a FROM missing").is_err());
    }

    #[test]
    fn select_star_passthrough() {
        let out = db().query("SELECT * FROM users").unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 2);
    }
}

#[cfg(test)]
mod catalog_bridge_tests {
    use super::*;
    use skadi_arrow::array::Array;

    #[test]
    fn catalog_mirrors_registered_tables() {
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("name", DataType::Utf8, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_utf8(&["a", "b", "c"]),
            ],
        )
        .unwrap();
        let db = MemDb::new().register("people", batch);
        let catalog = db.catalog();
        let def = catalog.get("people").expect("table derived");
        assert_eq!(def.rows, 3);
        assert!(def.bytes > 0);
        assert!(def.has_column("name"));
        // The derived catalog plans real statements.
        let (g, _) = crate::sql::plan_sql("SELECT id FROM people WHERE id > 1", &catalog).unwrap();
        g.validate().unwrap();
    }
}

//! Table catalog: schemas and cardinality hints for planning.

use std::collections::BTreeMap;

use skadi_ir::types::ScalarType;

/// One base table's description.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Column names and types.
    pub columns: Vec<(String, ScalarType)>,
    /// Estimated row count.
    pub rows: u64,
    /// Estimated total size in bytes.
    pub bytes: u64,
}

impl TableDef {
    /// Builds a table definition.
    pub fn new(columns: &[(&str, ScalarType)], rows: u64, bytes: u64) -> Self {
        TableDef {
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            rows,
            bytes,
        }
    }

    /// True if the table has the named column.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|(n, _)| n == name)
    }
}

/// The planner's table catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table.
    pub fn table(mut self, name: &str, def: TableDef) -> Self {
        self.tables.insert(name.to_string(), def);
        self
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(name)
    }

    /// A small demo catalog used by examples and tests: web events and a
    /// user dimension table.
    pub fn demo() -> Catalog {
        Catalog::new()
            .table(
                "events",
                TableDef::new(
                    &[
                        ("user_id", ScalarType::I64),
                        ("ts", ScalarType::I64),
                        ("kind", ScalarType::Str),
                        ("value", ScalarType::F64),
                    ],
                    10_000_000,
                    640 << 20,
                ),
            )
            .table(
                "users",
                TableDef::new(
                    &[
                        ("user_id", ScalarType::I64),
                        ("country", ScalarType::Str),
                        ("age", ScalarType::I64),
                    ],
                    1_000_000,
                    48 << 20,
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        let c = Catalog::demo();
        assert!(c.get("events").is_some());
        assert!(c.get("nope").is_none());
        assert!(c.get("users").unwrap().has_column("country"));
        assert!(!c.get("users").unwrap().has_column("value"));
    }
}

//! SQL frontend: lexer, parser, planner.
//!
//! Supported subset:
//!
//! ```sql
//! SELECT col | agg(col) [, ...]
//! FROM table [JOIN table2 ON t1col = t2col]
//! [WHERE col op literal [AND ...]]
//! [GROUP BY col [, ...]]
//! [ORDER BY col [DESC]]
//! [LIMIT n]
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Expr, Query, SelectItem};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use planner::plan_query;

use crate::catalog::Catalog;
use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// Errors from the SQL frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexing failed at the given character offset.
    Lex {
        /// Offset of the bad character.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// A string literal was opened but never closed. Distinct from
    /// [`SqlError::Lex`] so the message can say what actually went
    /// wrong instead of blaming the opening quote.
    UnterminatedString {
        /// Offset of the opening quote.
        offset: usize,
    },
    /// Parsing failed.
    Parse(String),
    /// Planning failed (unknown table/column or graph error).
    Plan(String),
}

impl std::fmt::Display for SqlError {
    /// Human-readable rendering; this is the message remote clients see
    /// in wire `Exception` packets, so it names the problem rather than
    /// just the offending byte.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            SqlError::UnterminatedString { offset } => {
                write!(
                    f,
                    "unterminated string literal starting at offset {offset} \
                     (use '' to write a quote inside a string)"
                )
            }
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<GraphError> for SqlError {
    fn from(e: GraphError) -> Self {
        SqlError::Plan(e.to_string())
    }
}

/// If `stmt` starts with `EXPLAIN ANALYZE` (case-insensitive, any
/// whitespace), returns the statement body after the prefix; `None`
/// otherwise. This is how the frontend opts a query into profiled
/// execution without touching the grammar.
pub fn strip_explain_analyze(stmt: &str) -> Option<&str> {
    let rest = stmt.trim_start();
    let after_explain = rest
        .get(.."EXPLAIN".len())
        .filter(|w| w.eq_ignore_ascii_case("EXPLAIN"))
        .map(|_| &rest["EXPLAIN".len()..])?;
    if !after_explain.starts_with(char::is_whitespace) {
        return None;
    }
    let rest = after_explain.trim_start();
    let after_analyze = rest
        .get(.."ANALYZE".len())
        .filter(|w| w.eq_ignore_ascii_case("ANALYZE"))
        .map(|_| &rest["ANALYZE".len()..])?;
    if !after_analyze.starts_with(char::is_whitespace) {
        return None;
    }
    Some(after_analyze.trim_start())
}

/// Parses and plans one SQL statement onto a fresh FlowGraph, returning
/// the graph and its sink vertex.
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<(FlowGraph, VertexId), SqlError> {
    let tokens = tokenize(sql)?;
    let query = parse(&tokens)?;
    let mut g = FlowGraph::new();
    let sink = plan_query(&query, catalog, &mut g)?;
    Ok((g, sink))
}

#[cfg(test)]
mod tests {
    use super::strip_explain_analyze;

    #[test]
    fn explain_analyze_prefix_detection() {
        assert_eq!(
            strip_explain_analyze("EXPLAIN ANALYZE SELECT 1"),
            Some("SELECT 1")
        );
        assert_eq!(
            strip_explain_analyze("  explain   Analyze\n SELECT x FROM t"),
            Some("SELECT x FROM t")
        );
        assert_eq!(strip_explain_analyze("SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAINANALYZE SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN"), None);
    }
}

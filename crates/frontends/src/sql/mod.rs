//! SQL frontend: lexer, parser, planner.
//!
//! Supported subset:
//!
//! ```sql
//! SELECT col | agg(col) [, ...]
//! FROM table [JOIN table2 ON t1col = t2col]
//! [WHERE col op literal [AND ...]]
//! [GROUP BY col [, ...]]
//! [ORDER BY col [DESC]]
//! [LIMIT n]
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Expr, Query, SelectItem};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use planner::plan_query;

use crate::catalog::Catalog;
use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// Errors from the SQL frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexing failed at the given byte offset.
    Lex {
        /// Byte offset of the bad character.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// Parsing failed.
    Parse(String),
    /// Planning failed (unknown table/column or graph error).
    Plan(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<GraphError> for SqlError {
    fn from(e: GraphError) -> Self {
        SqlError::Plan(e.to_string())
    }
}

/// Parses and plans one SQL statement onto a fresh FlowGraph, returning
/// the graph and its sink vertex.
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<(FlowGraph, VertexId), SqlError> {
    let tokens = tokenize(sql)?;
    let query = parse(&tokens)?;
    let mut g = FlowGraph::new();
    let sink = plan_query(&query, catalog, &mut g)?;
    Ok((g, sink))
}

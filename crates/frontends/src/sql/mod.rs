//! SQL frontend: lexer, parser, planner.
//!
//! Supported subset:
//!
//! ```sql
//! SELECT col | agg(col) [, ...]
//! FROM table [JOIN table2 ON t1col = t2col]
//! [WHERE col op literal [AND ...]]
//! [GROUP BY col [, ...]]
//! [ORDER BY col [DESC]]
//! [LIMIT n]
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Expr, Query, SelectItem};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use planner::plan_query;

use crate::catalog::Catalog;
use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// Errors from the SQL frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexing failed at the given byte offset.
    Lex {
        /// Byte offset of the bad character.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// Parsing failed.
    Parse(String),
    /// Planning failed (unknown table/column or graph error).
    Plan(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<GraphError> for SqlError {
    fn from(e: GraphError) -> Self {
        SqlError::Plan(e.to_string())
    }
}

/// If `stmt` starts with `EXPLAIN ANALYZE` (case-insensitive, any
/// whitespace), returns the statement body after the prefix; `None`
/// otherwise. This is how the frontend opts a query into profiled
/// execution without touching the grammar.
pub fn strip_explain_analyze(stmt: &str) -> Option<&str> {
    let rest = stmt.trim_start();
    let after_explain = rest
        .get(.."EXPLAIN".len())
        .filter(|w| w.eq_ignore_ascii_case("EXPLAIN"))
        .map(|_| &rest["EXPLAIN".len()..])?;
    if !after_explain.starts_with(char::is_whitespace) {
        return None;
    }
    let rest = after_explain.trim_start();
    let after_analyze = rest
        .get(.."ANALYZE".len())
        .filter(|w| w.eq_ignore_ascii_case("ANALYZE"))
        .map(|_| &rest["ANALYZE".len()..])?;
    if !after_analyze.starts_with(char::is_whitespace) {
        return None;
    }
    Some(after_analyze.trim_start())
}

/// Parses and plans one SQL statement onto a fresh FlowGraph, returning
/// the graph and its sink vertex.
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<(FlowGraph, VertexId), SqlError> {
    let tokens = tokenize(sql)?;
    let query = parse(&tokens)?;
    let mut g = FlowGraph::new();
    let sink = plan_query(&query, catalog, &mut g)?;
    Ok((g, sink))
}

#[cfg(test)]
mod tests {
    use super::strip_explain_analyze;

    #[test]
    fn explain_analyze_prefix_detection() {
        assert_eq!(
            strip_explain_analyze("EXPLAIN ANALYZE SELECT 1"),
            Some("SELECT 1")
        );
        assert_eq!(
            strip_explain_analyze("  explain   Analyze\n SELECT x FROM t"),
            Some("SELECT x FROM t")
        );
        assert_eq!(strip_explain_analyze("SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAINANALYZE SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN"), None);
    }
}

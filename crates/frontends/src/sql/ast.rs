//! SQL abstract syntax.

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(v) => write!(f, "'{v}'"),
        }
    }
}

/// One comparison: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Column name.
    pub column: String,
    /// Operator text (`=`, `!=`, `<`, `<=`, `>`, `>=`).
    pub op: String,
    /// Right-hand literal.
    pub value: Literal,
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// A conjunction of comparisons (the supported WHERE form).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// ANDed comparisons.
    pub conjuncts: Vec<Comparison>,
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Kept for API compatibility with the module docs: an expression is
/// either a bare column or an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A bare column reference.
    Column(String),
    /// `func(col)` aggregate.
    Agg {
        /// Aggregate function name (lowercased).
        func: String,
        /// Column argument (`*` becomes `"*"`).
        column: String,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: Expr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// ORDER BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort column.
    pub column: String,
    /// Descending?
    pub descending: bool,
}

/// An equi-join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Right-side table.
    pub table: String,
    /// Left key column.
    pub left_key: String,
    /// Right key column.
    pub right_key: String,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list (empty means `*`).
    pub select: Vec<SelectItem>,
    /// Base table.
    pub from: String,
    /// Joins, in order.
    pub joins: Vec<Join>,
    /// WHERE conjunction.
    pub predicate: Option<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// ORDER BY clause.
    pub order_by: Option<OrderBy>,
    /// LIMIT.
    pub limit: Option<i64>,
}

impl Query {
    /// True if the query aggregates (has an aggregate select item or a
    /// GROUP BY).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .select
                .iter()
                .any(|s| matches!(s.expr, Expr::Agg { .. }))
    }

    /// The bare columns referenced in the SELECT list.
    pub fn projected_columns(&self) -> Vec<&str> {
        self.select
            .iter()
            .filter_map(|s| match &s.expr {
                Expr::Column(c) => Some(c.as_str()),
                Expr::Agg { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let q = Query {
            select: vec![SelectItem {
                expr: Expr::Agg {
                    func: "sum".into(),
                    column: "v".into(),
                },
                alias: None,
            }],
            from: "t".into(),
            joins: vec![],
            predicate: None,
            group_by: vec![],
            order_by: None,
            limit: None,
        };
        assert!(q.is_aggregate());
        let q2 = Query {
            select: vec![SelectItem {
                expr: Expr::Column("a".into()),
                alias: None,
            }],
            group_by: vec!["a".into()],
            ..q.clone()
        };
        assert!(q2.is_aggregate());
    }

    #[test]
    fn predicate_display() {
        let p = Predicate {
            conjuncts: vec![
                Comparison {
                    column: "a".into(),
                    op: ">".into(),
                    value: Literal::Int(5),
                },
                Comparison {
                    column: "b".into(),
                    op: "=".into(),
                    value: Literal::Str("x".into()),
                },
            ],
        };
        assert_eq!(p.to_string(), "a > 5 AND b = 'x'");
    }
}

//! Recursive-descent parser for the SQL subset.

use super::ast::{Comparison, Expr, Join, Literal, OrderBy, Predicate, Query, SelectItem};
use super::lexer::Token;
use super::SqlError;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = match self.next() {
            Some(Token::Star) => Expr::Column("*".to_string()),
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    // Aggregate call.
                    self.pos += 1;
                    let column = match self.next() {
                        Some(Token::Ident(c)) => c.clone(),
                        Some(Token::Star) => "*".to_string(),
                        other => {
                            return Err(SqlError::Parse(format!(
                                "expected aggregate argument, found {other:?}"
                            )))
                        }
                    };
                    match self.next() {
                        Some(Token::RParen) => {}
                        other => {
                            return Err(SqlError::Parse(format!("expected ')', found {other:?}")))
                        }
                    }
                    Expr::Agg {
                        func: name.to_ascii_lowercase(),
                        column,
                    }
                } else {
                    Expr::Column(name.clone())
                }
            }
            other => {
                return Err(SqlError::Parse(format!(
                    "expected select item, found {other:?}"
                )))
            }
        };
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Literal::Int(*v)),
            Some(Token::Float(v)) => Ok(Literal::Float(*v)),
            Some(Token::Str(s)) => Ok(Literal::Str(s.clone())),
            other => Err(SqlError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn comparison(&mut self) -> Result<Comparison, SqlError> {
        let column = self.ident()?;
        let op = match self.next() {
            Some(Token::Op(op)) => op.clone(),
            other => {
                return Err(SqlError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(Comparison { column, op, value })
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let mut select = Vec::new();
        loop {
            select.push(self.select_item()?);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let mut joins = Vec::new();
        while self.eat_keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left_key = self.ident()?;
            match self.next() {
                Some(Token::Op(op)) if op == "=" => {}
                other => {
                    return Err(SqlError::Parse(format!(
                        "JOIN requires equality, found {other:?}"
                    )))
                }
            }
            let right_key = self.ident()?;
            joins.push(Join {
                table,
                left_key,
                right_key,
            });
        }

        let predicate = if self.eat_keyword("WHERE") {
            let mut conjuncts = vec![self.comparison()?];
            while self.eat_keyword("AND") {
                conjuncts.push(self.comparison()?);
            }
            Some(Predicate { conjuncts })
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.ident()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let column = self.ident()?;
            let descending = self.eat_keyword("DESC") || {
                self.eat_keyword("ASC");
                false
            };
            Some(OrderBy { column, descending })
        } else {
            None
        };

        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                // The lexer folds a leading minus into the literal, so a
                // negative here is `LIMIT -5` — reject it instead of
                // letting a nonsense bound flow into the plan.
                Some(Token::Int(n)) if *n >= 0 => Some(*n),
                Some(Token::Int(n)) => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT must be a non-negative integer, got {n}"
                    )))
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT requires an integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        if let Some(t) = self.peek() {
            return Err(SqlError::Parse(format!("trailing tokens from {t:?}")));
        }

        Ok(Query {
            select,
            from,
            joins,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }
}

/// Parses a token stream into a [`Query`].
pub fn parse(tokens: &[Token]) -> Result<Query, SqlError> {
    Parser { tokens, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse_sql(sql: &str) -> Result<Query, SqlError> {
        parse(&tokenize(sql).unwrap())
    }

    #[test]
    fn simple_select() {
        let q = parse_sql("SELECT a, b FROM t").unwrap();
        assert_eq!(q.from, "t");
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.projected_columns(), vec!["a", "b"]);
        assert!(q.predicate.is_none());
    }

    #[test]
    fn full_query() {
        let q = parse_sql(
            "SELECT country, sum(value) AS total FROM events \
             JOIN users ON user_id = user_id \
             WHERE value > 0.5 AND kind = 'click' \
             GROUP BY country ORDER BY total DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table, "users");
        let p = q.predicate.as_ref().unwrap();
        assert_eq!(p.conjuncts.len(), 2);
        assert_eq!(q.group_by, vec!["country"]);
        let ob = q.order_by.as_ref().unwrap();
        assert_eq!(ob.column, "total");
        assert!(ob.descending);
        assert_eq!(q.limit, Some(10));
        assert!(q.is_aggregate());
        assert_eq!(q.select[1].alias.as_deref(), Some("total"));
    }

    #[test]
    fn star_and_count() {
        let q = parse_sql("SELECT count(*) FROM t").unwrap();
        match &q.select[0].expr {
            Expr::Agg { func, column } => {
                assert_eq!(func, "count");
                assert_eq!(column, "*");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_sql("SELECT FROM t").is_err());
        assert!(parse_sql("SELECT a t").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE a >").is_err());
        assert!(parse_sql("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_sql("SELECT a FROM t JOIN u ON a > b").is_err());
        assert!(parse_sql("SELECT a FROM t extra junk").is_err());
    }

    #[test]
    fn order_asc_default() {
        let q = parse_sql("SELECT a FROM t ORDER BY a ASC").unwrap();
        assert!(!q.order_by.unwrap().descending);
    }

    #[test]
    fn negative_limit_rejected_with_readable_message() {
        let err = parse_sql("SELECT a FROM t LIMIT -5").unwrap_err();
        match &err {
            SqlError::Parse(msg) => {
                assert!(msg.contains("LIMIT") && msg.contains("-5"), "{msg}")
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn zero_limit_parses() {
        let q = parse_sql("SELECT a FROM t LIMIT 0").unwrap();
        assert_eq!(q.limit, Some(0));
    }

    #[test]
    fn escaped_quote_string_parses_as_one_literal() {
        // Pre-fix, 'O''Brien' lexed as two adjacent Str tokens and died
        // here with a baffling "trailing tokens" error.
        let q = parse_sql("SELECT a FROM t WHERE name = 'O''Brien'").unwrap();
        let p = q.predicate.unwrap();
        assert_eq!(p.conjuncts.len(), 1);
        assert_eq!(
            p.conjuncts[0].value,
            super::super::ast::Literal::Str("O'Brien".into())
        );
    }
}

//! SQL planner: AST -> FlowGraph.
//!
//! The planner applies textbook rules — predicate pushdown below joins,
//! keyed (shuffle) edges for joins and aggregations — and annotates
//! vertices with cardinality estimates from the catalog so the physical
//! lowering can cost them.

use skadi_flowgraph::{ExecAgg, ExecCompare, ExecLiteral, ExecOp, FlowGraph, VertexId};

use super::ast::{Comparison, Expr, Literal, Query};
use super::SqlError;
use crate::catalog::Catalog;

/// Assumed selectivity of one predicate conjunct.
const CONJUNCT_SELECTIVITY: f64 = 0.4;
/// Assumed group-count reduction of an aggregation.
const AGG_REDUCTION: f64 = 0.01;

/// Relational operator names, shared between the planner's FlowGraph
/// vertices and the local engine's exec spans so a priced plan and a real
/// execution correlate by name.
pub mod ops {
    /// Base-table scan (planner: the source vertex named after the table).
    pub const SCAN: &str = "rel.scan";
    /// WHERE conjunction.
    pub const FILTER: &str = "rel.filter";
    /// Hash equi-join.
    pub const JOIN: &str = "rel.join";
    /// GROUP BY / global aggregation.
    pub const AGGREGATE: &str = "rel.aggregate";
    /// Column projection.
    pub const PROJECT: &str = "rel.project";
    /// ORDER BY.
    pub const SORT: &str = "rel.sort";
    /// LIMIT.
    pub const LIMIT: &str = "rel.limit";
}

fn exec_literal(l: &Literal) -> ExecLiteral {
    match l {
        Literal::Int(v) => ExecLiteral::Int(*v),
        Literal::Float(v) => ExecLiteral::Float(*v),
        Literal::Str(s) => ExecLiteral::Str(s.clone()),
    }
}

fn exec_conjuncts(cs: &[Comparison]) -> Vec<ExecCompare> {
    cs.iter()
        .map(|c| ExecCompare {
            column: c.column.clone(),
            op: c.op.clone(),
            value: exec_literal(&c.value),
        })
        .collect()
}

/// The aggregate items of the SELECT list as executable descriptors,
/// named exactly like the local engine names its output columns.
fn exec_aggs(q: &Query) -> Vec<ExecAgg> {
    q.select
        .iter()
        .filter_map(|item| match &item.expr {
            Expr::Agg { func, column } => Some(ExecAgg {
                func: func.clone(),
                column: column.clone(),
                name: item
                    .alias
                    .clone()
                    .unwrap_or_else(|| format!("{func}({column})")),
            }),
            Expr::Column(_) => None,
        })
        .collect()
}

/// Plans a query onto `g`, returning the sink vertex. Every vertex gets
/// an executable shard descriptor ([`ExecOp`]) beside its cost hints, so
/// the lowered physical graph can actually run.
pub fn plan_query(q: &Query, catalog: &Catalog, g: &mut FlowGraph) -> Result<VertexId, SqlError> {
    let base = catalog
        .get(&q.from)
        .ok_or_else(|| SqlError::Plan(format!("unknown table {:?}", q.from)))?;

    // Column sanity for predicates against the base table.
    let all_tables: Vec<&crate::catalog::TableDef> = {
        let mut v = vec![base];
        for j in &q.joins {
            v.push(
                catalog
                    .get(&j.table)
                    .ok_or_else(|| SqlError::Plan(format!("unknown table {:?}", j.table)))?,
            );
        }
        v
    };
    if let Some(p) = &q.predicate {
        for c in &p.conjuncts {
            if !all_tables.iter().any(|t| t.has_column(&c.column)) {
                return Err(SqlError::Plan(format!("unknown column {:?}", c.column)));
            }
        }
    }

    let mut rows = base.rows;
    let mut bytes = base.bytes;
    let mut head = g.add_source(&q.from, rows, bytes);
    g.set_exec(
        head,
        ExecOp::Scan {
            table: q.from.clone(),
        },
    );

    // Predicate pushdown: conjuncts that only touch the base table apply
    // before joins; the rest after.
    let (pushed, kept): (Vec<_>, Vec<_>) = match &q.predicate {
        Some(p) => p
            .conjuncts
            .iter()
            .cloned()
            .partition(|c| base.has_column(&c.column)),
        None => (Vec::new(), Vec::new()),
    };
    if !pushed.is_empty() {
        let sel = CONJUNCT_SELECTIVITY.powi(pushed.len() as i32);
        rows = ((rows as f64) * sel).max(1.0) as u64;
        bytes = ((bytes as f64) * sel).max(1.0) as u64;
        let f = g.add_ir_op(ops::FILTER, rows, bytes);
        g.set_exec(
            f,
            ExecOp::Filter {
                conjuncts: exec_conjuncts(&pushed),
            },
        );
        g.connect(head, f)?;
        head = f;
    }

    // Joins: shuffle both sides on their keys. The probe side arrives on
    // port 0, the build side on port 1, so shard execution can tell them
    // apart.
    for j in &q.joins {
        let right_def = catalog.get(&j.table).expect("validated above");
        let right = g.add_source(&j.table, right_def.rows, right_def.bytes);
        g.set_exec(
            right,
            ExecOp::Scan {
                table: j.table.clone(),
            },
        );
        rows = rows.max(right_def.rows);
        bytes += right_def.bytes / 4;
        let join = g.add_ir_op(ops::JOIN, rows, bytes);
        g.set_exec(
            join,
            ExecOp::Join {
                left_key: j.left_key.clone(),
                right_key: j.right_key.clone(),
                right_rows: right_def.rows,
            },
        );
        g.connect_keyed(head, join, &j.left_key)?;
        g.connect_keyed_port(right, join, &j.right_key, 1)?;
        head = join;
    }

    // Residual predicate after joins.
    if !kept.is_empty() {
        let sel = CONJUNCT_SELECTIVITY.powi(kept.len() as i32);
        rows = ((rows as f64) * sel).max(1.0) as u64;
        bytes = ((bytes as f64) * sel).max(1.0) as u64;
        let f = g.add_ir_op(ops::FILTER, rows, bytes);
        g.set_exec(
            f,
            ExecOp::Filter {
                conjuncts: exec_conjuncts(&kept),
            },
        );
        g.connect(head, f)?;
        head = f;
    }

    // Aggregation (keyed on the first GROUP BY column) or projection.
    if q.is_aggregate() {
        let out_rows = ((rows as f64) * AGG_REDUCTION).max(1.0) as u64;
        let out_bytes = ((bytes as f64) * AGG_REDUCTION).max(64.0) as u64;
        let agg = g.add_ir_op(ops::AGGREGATE, rows, out_bytes);
        g.set_exec(
            agg,
            ExecOp::Aggregate {
                group_by: q.group_by.clone(),
                aggs: exec_aggs(q),
            },
        );
        match q.group_by.first() {
            Some(k) => g.connect_keyed(head, agg, k)?,
            None => g.connect(head, agg)?,
        }
        rows = out_rows;
        bytes = out_bytes;
        head = agg;
    } else {
        let cols = q.projected_columns();
        if !cols.is_empty() && !cols.contains(&"*") {
            let keep_frac =
                (cols.len() as f64 / all_tables[0].columns.len().max(1) as f64).min(1.0);
            bytes = ((bytes as f64) * keep_frac).max(1.0) as u64;
            let p = g.add_ir_op(ops::PROJECT, rows, bytes);
            g.set_exec(
                p,
                ExecOp::Project {
                    columns: cols.iter().map(|c| c.to_string()).collect(),
                },
            );
            g.connect(head, p)?;
            head = p;
        }
    }

    let order = q
        .order_by
        .as_ref()
        .map(|ob| (ob.column.clone(), ob.descending));
    if let Some(ob) = &q.order_by {
        let s = g.add_ir_op(ops::SORT, rows, bytes);
        g.set_exec(
            s,
            ExecOp::Sort {
                column: ob.column.clone(),
                descending: ob.descending,
            },
        );
        g.connect_keyed(head, s, &ob.column)?;
        head = s;
    }
    if let Some(n) = q.limit {
        rows = rows.min(n.max(0) as u64);
        bytes = bytes.min(rows.saturating_mul(64).max(64));
        let l = g.add_ir_op(ops::LIMIT, rows, bytes);
        g.set_exec(
            l,
            ExecOp::Limit {
                n: n.max(0) as u64,
                order: order.clone(),
            },
        );
        g.connect(head, l)?;
        head = l;
    }

    let sink = g.add_sink("result");
    g.set_exec(
        sink,
        ExecOp::Collect {
            order_by: order,
            limit: q.limit.map(|n| n.max(0) as u64),
        },
    );
    g.connect(head, sink)?;
    Ok(sink)
}

#[cfg(test)]
mod tests {
    use super::super::plan_sql;
    use super::*;
    use skadi_flowgraph::EdgeKind;

    fn names(g: &FlowGraph) -> Vec<String> {
        g.vertices()
            .iter()
            .map(|v| v.body.name().to_string())
            .collect()
    }

    #[test]
    fn simple_scan_project() {
        let (g, _sink) = plan_sql("SELECT user_id FROM events", &Catalog::demo()).unwrap();
        let n = names(&g);
        assert_eq!(n, vec!["events", "rel.project", "result"]);
        g.validate().unwrap();
    }

    #[test]
    fn filter_pushed_below_join() {
        let (g, _) = plan_sql(
            "SELECT country FROM events JOIN users ON user_id = user_id WHERE value > 0.5",
            &Catalog::demo(),
        )
        .unwrap();
        let n = names(&g);
        // Filter (on events.value) sits between the events scan and the
        // join.
        let fpos = n.iter().position(|x| x == "rel.filter").unwrap();
        let jpos = n.iter().position(|x| x == "rel.join").unwrap();
        assert!(fpos < jpos, "{n:?}");
        g.validate().unwrap();
    }

    #[test]
    fn join_edges_are_keyed() {
        let (g, _) = plan_sql(
            "SELECT country FROM events JOIN users ON user_id = user_id",
            &Catalog::demo(),
        )
        .unwrap();
        let join = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.join")
            .unwrap()
            .id;
        for input in g.inputs_of(join) {
            match &g.edge_between(input, join).unwrap().kind {
                EdgeKind::Keyed(k) => assert_eq!(k, "user_id"),
                other => panic!("join edge not keyed: {other:?}"),
            }
        }
    }

    #[test]
    fn aggregate_keyed_on_group_by() {
        let (g, _) = plan_sql(
            "SELECT kind, sum(value) FROM events GROUP BY kind",
            &Catalog::demo(),
        )
        .unwrap();
        let agg = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.aggregate")
            .unwrap();
        let input = g.inputs_of(agg.id)[0];
        assert_eq!(
            g.edge_between(input, agg.id).unwrap().kind,
            EdgeKind::Keyed("kind".into())
        );
        // Aggregation shrinks output.
        assert!(agg.output_bytes_hint < g.vertex(input).output_bytes_hint);
    }

    #[test]
    fn order_and_limit_appended() {
        let (g, _) = plan_sql(
            "SELECT kind, sum(value) FROM events GROUP BY kind ORDER BY kind DESC LIMIT 5",
            &Catalog::demo(),
        )
        .unwrap();
        let n = names(&g);
        assert!(n.contains(&"rel.sort".to_string()));
        assert!(n.contains(&"rel.limit".to_string()));
        g.validate().unwrap();
    }

    #[test]
    fn unknown_table_and_column_rejected() {
        let c = Catalog::demo();
        assert!(matches!(
            plan_sql("SELECT a FROM missing", &c),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            plan_sql("SELECT user_id FROM events WHERE nope = 1", &c),
            Err(SqlError::Plan(_))
        ));
    }

    #[test]
    fn filter_shrinks_cardinality() {
        let (g, _) = plan_sql(
            "SELECT user_id FROM events WHERE value > 0.5 AND kind = 'x'",
            &Catalog::demo(),
        )
        .unwrap();
        let scan = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "events")
            .unwrap();
        let filt = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.filter")
            .unwrap();
        assert!(filt.rows_hint < scan.rows_hint / 5);
    }
}

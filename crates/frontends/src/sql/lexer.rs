//! SQL tokenizer.

use super::SqlError;

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (stored uppercase).
    Keyword(String),
    /// An identifier (table/column name), case preserved.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`, `!=`, `<`, `<=`, `>`, `>=`
    Op(String),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "ON", "AND", "AS", "DESC",
    "ASC",
];

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Op("=".into()));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Op("!=".into()));
                i += 2;
            }
            '<' | '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op(format!("{c}=")));
                    i += 2;
                } else {
                    out.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(SqlError::Lex {
                        offset: i,
                        found: '\'',
                    });
                }
                out.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                let mut j = if c == '-' { i + 1 } else { i };
                let mut is_float = false;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    if chars[j] == '.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| SqlError::Lex {
                        offset: start,
                        found: '.',
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| SqlError::Lex {
                        offset: start,
                        found: c,
                    })?;
                    out.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_alphanumeric() || chars[j] == '_' || chars[j] == '.')
                {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word));
                }
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    found: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, sum(b) FROM t WHERE a >= 10").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[3], Token::Ident("sum".into()));
        assert_eq!(toks[4], Token::LParen);
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn keywords_case_insensitive_idents_preserved() {
        let toks = tokenize("select MyCol from T").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("MyCol".into()));
        assert_eq!(toks[3], Token::Ident("T".into()));
    }

    #[test]
    fn literals() {
        let toks = tokenize("WHERE x = 1.5 AND name = 'bob'").unwrap();
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("bob".into())));
    }

    #[test]
    fn operators() {
        for (src, op) in [
            ("a = b", "="),
            ("a != b", "!="),
            ("a < b", "<"),
            ("a <= b", "<="),
            ("a > b", ">"),
            ("a >= b", ">="),
        ] {
            let toks = tokenize(src).unwrap();
            assert_eq!(toks[1], Token::Op(op.into()), "{src}");
        }
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn stray_character_errors() {
        assert!(matches!(
            tokenize("SELECT %"),
            Err(SqlError::Lex { found: '%', .. })
        ));
    }

    #[test]
    fn star_token() {
        let toks = tokenize("SELECT * FROM t").unwrap();
        assert_eq!(toks[1], Token::Star);
    }
}

#[cfg(test)]
mod negative_literal_tests {
    use super::*;

    #[test]
    fn negative_int_and_float() {
        let toks = tokenize("WHERE x > -5 AND y < -2.5").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Float(-2.5)));
    }

    #[test]
    fn lone_minus_still_errors() {
        assert!(matches!(tokenize("x - y"), Err(SqlError::Lex { .. })));
    }
}

//! SQL tokenizer.

use super::SqlError;

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (stored uppercase).
    Keyword(String),
    /// An identifier (table/column name), case preserved.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`, `!=`, `<`, `<=`, `>`, `>=`
    Op(String),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "ON", "AND", "AS", "DESC",
    "ASC",
];

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Op("=".into()));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Op("!=".into()));
                i += 2;
            }
            '<' | '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op(format!("{c}=")));
                    i += 2;
                } else {
                    out.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            '\'' => {
                // Standard SQL string literal: '' inside the literal is an
                // escaped single quote ('O''Brien' is the string O'Brien).
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match chars.get(j) {
                        None => return Err(SqlError::UnterminatedString { offset: i }),
                        Some('\'') if chars.get(j + 1) == Some(&'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some('\'') => {
                            j += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(*c);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                let mut j = if c == '-' { i + 1 } else { i };
                let mut is_float = false;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    if chars[j] == '.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| SqlError::Lex {
                        offset: start,
                        found: '.',
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| SqlError::Lex {
                        offset: start,
                        found: c,
                    })?;
                    out.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_alphanumeric() || chars[j] == '_' || chars[j] == '.')
                {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word));
                }
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    found: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, sum(b) FROM t WHERE a >= 10").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[3], Token::Ident("sum".into()));
        assert_eq!(toks[4], Token::LParen);
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn keywords_case_insensitive_idents_preserved() {
        let toks = tokenize("select MyCol from T").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("MyCol".into()));
        assert_eq!(toks[3], Token::Ident("T".into()));
    }

    #[test]
    fn literals() {
        let toks = tokenize("WHERE x = 1.5 AND name = 'bob'").unwrap();
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("bob".into())));
    }

    #[test]
    fn operators() {
        for (src, op) in [
            ("a = b", "="),
            ("a != b", "!="),
            ("a < b", "<"),
            ("a <= b", "<="),
            ("a > b", ">"),
            ("a >= b", ">="),
        ] {
            let toks = tokenize(src).unwrap();
            assert_eq!(toks[1], Token::Op(op.into()), "{src}");
        }
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("x = 'oops").unwrap_err();
        assert_eq!(err, SqlError::UnterminatedString { offset: 4 });
        let msg = err.to_string();
        assert!(
            msg.contains("unterminated string literal starting at offset 4"),
            "{msg}"
        );
    }

    #[test]
    fn doubled_quote_escapes() {
        let toks = tokenize("name = 'O''Brien'").unwrap();
        assert!(toks.contains(&Token::Str("O'Brien".into())), "{toks:?}");
    }

    #[test]
    fn empty_string_literal() {
        let toks = tokenize("name = ''").unwrap();
        assert_eq!(toks[2], Token::Str(String::new()));
    }

    #[test]
    fn literal_of_only_a_quote() {
        // '''' is the one-character string consisting of a quote.
        let toks = tokenize("name = ''''").unwrap();
        assert_eq!(toks[2], Token::Str("'".into()));
    }

    #[test]
    fn literal_ending_in_escaped_quote() {
        let toks = tokenize("name = 'tail''' AND a = 1").unwrap();
        assert_eq!(toks[2], Token::Str("tail'".into()));
        // The rest of the statement still lexes: the escape did not eat
        // the closing quote.
        assert!(toks.contains(&Token::Keyword("AND".into())));
        assert!(toks.contains(&Token::Int(1)));
    }

    #[test]
    fn adjacent_literals_stay_separate() {
        // With a space between them these are two strings, not an escape.
        let toks = tokenize("'a' 'b'").unwrap();
        assert_eq!(toks, vec![Token::Str("a".into()), Token::Str("b".into())]);
    }

    #[test]
    fn unterminated_after_escape_errors() {
        // The trailing '' is an escaped quote, so the literal never closes.
        assert_eq!(
            tokenize("'oops''"),
            Err(SqlError::UnterminatedString { offset: 0 })
        );
    }

    #[test]
    fn stray_character_errors() {
        assert!(matches!(
            tokenize("SELECT %"),
            Err(SqlError::Lex { found: '%', .. })
        ));
    }

    #[test]
    fn star_token() {
        let toks = tokenize("SELECT * FROM t").unwrap();
        assert_eq!(toks[1], Token::Star);
    }
}

#[cfg(test)]
mod negative_literal_tests {
    use super::*;

    #[test]
    fn negative_int_and_float() {
        let toks = tokenize("WHERE x > -5 AND y < -2.5").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Float(-2.5)));
    }

    #[test]
    fn lone_minus_still_errors() {
        assert!(matches!(tokenize("x - y"), Err(SqlError::Lex { .. })));
    }
}

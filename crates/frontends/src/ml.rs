//! ML training frontend.
//!
//! Declares a mini-batch training pipeline (the "ML training (e.g., a
//! python script)" input of §2.1) and lowers it onto FlowGraph: per
//! step, a data batch flows through feature extraction into a forward
//! pass, loss, backward pass, and an optimizer step; the updated weights
//! feed the next step over a broadcast edge. Marking the per-step
//! compute as a gang yields the SPMD sub-graph the paper's
//! gang-scheduling discussion targets.

use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// A declared training pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingPipeline {
    /// Training-data dataset name.
    pub dataset: String,
    /// Rows per mini-batch.
    pub batch_rows: u64,
    /// Bytes per mini-batch.
    pub batch_bytes: u64,
    /// Model parameter bytes.
    pub weight_bytes: u64,
    /// Optimizer steps to unroll.
    pub steps: u32,
}

impl TrainingPipeline {
    /// A pipeline over `dataset`.
    pub fn new(dataset: &str, batch_rows: u64, batch_bytes: u64, weight_bytes: u64) -> Self {
        TrainingPipeline {
            dataset: dataset.to_string(),
            batch_rows,
            batch_bytes,
            weight_bytes,
            steps: 1,
        }
    }

    /// Number of optimizer steps to unroll.
    pub fn steps(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one step");
        self.steps = n;
        self
    }

    /// Builds the FlowGraph, returning `(graph, sink)`. The sink receives
    /// the final weights.
    pub fn to_flowgraph(&self) -> Result<(FlowGraph, VertexId), GraphError> {
        let mut g = FlowGraph::new();
        let weights0 = g.add_source(
            &format!("{}-init-weights", self.dataset),
            1,
            self.weight_bytes,
        );
        let mut weights = weights0;
        for step in 0..self.steps {
            let batch = g.add_source(
                &format!("{}-batch-{step}", self.dataset),
                self.batch_rows,
                self.batch_bytes,
            );
            // Feature extraction: frame -> tensor (fusable, cross-domain).
            let feats = g.add_ir_op("tensor.from_frame", self.batch_rows, self.batch_bytes);
            g.connect(batch, feats)?;
            // Forward pass.
            let fwd = g.add_ir_op("tensor.matmul", self.batch_rows, self.batch_bytes);
            g.connect(feats, fwd)?;
            g.connect_broadcast(weights, fwd)?;
            // Activation.
            let act = g.add_ir_op("tensor.map", self.batch_rows, self.batch_bytes);
            g.connect(fwd, act)?;
            // Backward pass (gradient wrt weights).
            let grad = g.add_ir_op("tensor.matmul", self.batch_rows, self.weight_bytes);
            g.connect(act, grad)?;
            // Optimizer step: new weights.
            let sgd = g.add_ir_op("tensor.sgd_step", 1, self.weight_bytes);
            g.connect(grad, sgd)?;
            g.connect_broadcast(weights, sgd)?;
            weights = sgd;
        }
        let sink = g.add_sink(&format!("{}-weights", self.dataset));
        g.connect(weights, sink)?;
        g.validate()?;
        Ok((g, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_flowgraph::EdgeKind;

    #[test]
    fn single_step_shape() {
        let (g, _) = TrainingPipeline::new("mnist", 1 << 10, 4 << 20, 1 << 20)
            .to_flowgraph()
            .unwrap();
        let names: Vec<&str> = g.vertices().iter().map(|v| v.body.name()).collect();
        assert!(names.contains(&"tensor.matmul"));
        assert!(names.contains(&"tensor.sgd_step"));
        assert!(names.contains(&"tensor.from_frame"));
        // init weights + batch + 5 compute + sink.
        assert_eq!(g.len(), 8);
    }

    #[test]
    fn steps_chain_through_weights() {
        let (g, sink) = TrainingPipeline::new("d", 128, 1 << 16, 1 << 12)
            .steps(3)
            .to_flowgraph()
            .unwrap();
        let sgd_count = g
            .vertices()
            .iter()
            .filter(|v| v.body.name() == "tensor.sgd_step")
            .count();
        assert_eq!(sgd_count, 3);
        // The sink consumes the last sgd step.
        let last = g.inputs_of(sink)[0];
        assert_eq!(g.vertex(last).body.name(), "tensor.sgd_step");
        g.validate().unwrap();
    }

    #[test]
    fn weights_travel_on_broadcast_edges() {
        let (g, _) = TrainingPipeline::new("d", 128, 1 << 16, 1 << 12)
            .steps(2)
            .to_flowgraph()
            .unwrap();
        let bcast = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Broadcast)
            .count();
        // Two per step: into the forward pass and into the sgd step.
        assert_eq!(bcast, 4);
    }

    #[test]
    fn batches_are_distinct_sources() {
        let (g, _) = TrainingPipeline::new("d", 128, 1 << 16, 1 << 12)
            .steps(2)
            .to_flowgraph()
            .unwrap();
        let batches = g
            .vertices()
            .iter()
            .filter(|v| v.body.name().contains("batch"))
            .count();
        assert_eq!(batches, 2);
    }
}

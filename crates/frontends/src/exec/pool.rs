//! Fixed worker pool for morsel-driven parallel kernels.
//!
//! One process-wide pool ([`global`]) serves every kernel, session, and
//! server connection. Work is expressed as an indexed task set
//! ([`ExecPool::run_indexed`]): `n` independent items claimed by threads
//! through a shared atomic counter (morsel stealing) and returned in
//! index order — so the *schedule* is nondeterministic but the *result
//! vector* never is. Thread count is a pure performance knob: it must not
//! change any output bytes, and the kernels guarantee that by deriving
//! every algorithmic decision (morsel boundaries, partition counts, table
//! capacities) from data size alone, never from [`ExecPool::threads`].
//!
//! The pool runs `threads - 1` OS workers; the calling thread always
//! participates as the last worker, so `threads == 1` degrades to plain
//! inline execution with no queue traffic. Nested `run_indexed` calls are
//! safe: workers never block on other jobs, so an inner call simply runs
//! inline when every worker is busy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

/// Rows per morsel: the unit of work stealing. Fixed (never derived from
/// thread count) so row-range splits are identical at every parallelism.
pub const MORSEL_ROWS: usize = 16 * 1024;

/// Inputs below this many rows stay on the legacy single-threaded kernel
/// paths. The threshold is data-dependent only, so which path runs — and
/// therefore every profile counter it reports — is the same at every
/// thread count.
pub const PARALLEL_MIN_ROWS: usize = MORSEL_ROWS;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    /// Pending jobs plus the shutdown flag, under one lock.
    queue: Mutex<(VecDeque<Job>, bool)>,
    available: Condvar,
}

impl Inner {
    fn submit(&self, job: Job) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        q.0.push_back(job);
        drop(q);
        self.available.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if q.1 {
                        return;
                    }
                    if let Some(j) = q.0.pop_front() {
                        break j;
                    }
                    q = self.available.wait(q).expect("pool queue poisoned");
                }
            };
            job();
        }
    }
}

/// A fixed-size worker pool; see the module docs for the execution model.
pub struct ExecPool {
    inner: Arc<Inner>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl ExecPool {
    /// Creates a pool of `threads` compute threads (`threads - 1` spawned
    /// workers; the caller of [`ExecPool::run_indexed`] is the last one).
    pub fn new(threads: usize) -> ExecPool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("skadi-exec-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn pool worker")
            })
            .collect();
        ExecPool {
            inner,
            threads,
            workers,
        }
    }

    /// Total compute threads (spawned workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..n)` across the pool and returns the results in index
    /// order. Items are claimed through a shared counter, so load balance
    /// adapts to skew while the output stays deterministic. A panic in
    /// any item resumes on the calling thread.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if n == 0 {
            return Vec::new();
        }
        let helpers = (self.threads - 1).min(n - 1);
        if helpers == 0 {
            return (0..n).map(f).collect();
        }
        let f = Arc::new(f);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..helpers {
            let f = Arc::clone(&f);
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            self.inner
                .submit(Box::new(move || claim_loop(&*f, &counter, n, &tx)));
        }
        claim_loop(&*f, &counter, n, &tx);
        drop(tx);
        // Every claimed index sends exactly one result; indices the caller
        // didn't claim are held by workers actively computing them.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rx.recv().expect("claimed index must report");
            match r {
                Ok(v) => out[i] = Some(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out.into_iter()
            .map(|v| v.expect("result for every index"))
            .collect()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            q.1 = true;
        }
        self.inner.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn claim_loop<R: Send>(
    f: &(dyn Fn(usize) -> R + Send + Sync),
    counter: &AtomicUsize,
    n: usize,
    tx: &mpsc::Sender<(usize, std::thread::Result<R>)>,
) {
    loop {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
        // A send error means the caller already unwound (another item
        // panicked); nothing left to report.
        if tx.send((i, r)).is_err() {
            return;
        }
    }
}

/// Splits `n` rows into fixed [`MORSEL_ROWS`]-sized `(lo, hi)` ranges.
/// The split depends only on `n`, keeping per-morsel results — and any
/// order-sensitive merge of them — identical at every thread count.
pub fn morsels(n: usize) -> Vec<(usize, usize)> {
    (0..n.div_ceil(MORSEL_ROWS).max(1))
        .map(|m| (m * MORSEL_ROWS, ((m + 1) * MORSEL_ROWS).min(n)))
        .collect()
}

fn default_threads() -> usize {
    if let Ok(s) = std::env::var("SKADI_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<RwLock<Arc<ExecPool>>> = OnceLock::new();

fn cell() -> &'static RwLock<Arc<ExecPool>> {
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(ExecPool::new(default_threads()))))
}

/// The shared process-wide pool. Sized by `SKADI_THREADS` or
/// `available_parallelism` on first use; resized by
/// [`set_global_threads`].
pub fn global() -> Arc<ExecPool> {
    cell().read().expect("pool registry poisoned").clone()
}

/// The shared pool's thread count.
pub fn global_threads() -> usize {
    global().threads()
}

/// Resizes the shared pool (no-op when the size already matches; in-flight
/// users of the old pool finish on it — `Arc` keeps it alive).
pub fn set_global_threads(threads: usize) {
    let threads = threads.max(1);
    let mut w = cell().write().expect("pool registry poisoned");
    if w.threads() != threads {
        *w = Arc::new(ExecPool::new(threads));
    }
}

/// Serializes tests that resize the global pool (resizing is safe at any
/// time, but a test asserting the global size must not interleave with
/// another test's resize).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ExecPool::new(threads);
            let out = pool.run_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_sets() {
        let pool = ExecPool::new(4);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = Arc::new(ExecPool::new(3));
        let inner = Arc::clone(&pool);
        let out = pool.run_indexed(8, move |i| inner.run_indexed(5, move |j| i * 10 + j));
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_still_completes() {
        let pool = ExecPool::new(4);
        let out = pool.run_indexed(32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ExecPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_indexed(16, |i| {
                if i == 9 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(r.is_err());
        // The pool survives a panicked run.
        assert_eq!(pool.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn morsel_split_is_fixed_and_covering() {
        assert_eq!(morsels(0), vec![(0, 0)]);
        assert_eq!(morsels(10), vec![(0, 10)]);
        let m = morsels(MORSEL_ROWS * 2 + 5);
        assert_eq!(
            m,
            vec![
                (0, MORSEL_ROWS),
                (MORSEL_ROWS, MORSEL_ROWS * 2),
                (MORSEL_ROWS * 2, MORSEL_ROWS * 2 + 5)
            ]
        );
    }

    #[test]
    fn global_pool_resizes_once_per_size() {
        let _guard = test_guard();
        set_global_threads(3);
        let a = global();
        assert_eq!(a.threads(), 3);
        set_global_threads(3);
        assert!(Arc::ptr_eq(&a, &global()), "same size must not rebuild");
        set_global_threads(2);
        assert_eq!(global_threads(), 2);
    }
}

//! Morsel-driven parallel kernels: partitioned hash join, partitioned
//! group-by, parallel sort, parallel filter masks and gathers.
//!
//! Every kernel here is a drop-in replacement for its single-threaded
//! sibling in [`super`] (the `exec` module) with one invariant: **thread
//! count never changes output bytes**. The algorithms get that for free
//! by deriving all structure from the data alone —
//!
//! * morsel boundaries come from [`pool::morsels`] (fixed row ranges);
//! * join and group-by inputs split into [`PARTITIONS`] partitions by the
//!   *top* bits of the folded key hash (tables bucket by the *low* bits,
//!   so partitioning preserves bucket entropy);
//! * per-partition tables size themselves from exact partition row
//!   counts, so they never rehash ([`GroupTable::rehashes`] proves it);
//! * merges are deterministic: join morsel outputs concatenate in morsel
//!   order (reproducing serial probe order), group partitions merge by
//!   sorting `(rendered key, representative row)` (reproducing the serial
//!   stable sort with first-appearance ties), and sorted runs merge under
//!   a total order (key, then row index).
//!
//! Since every true join match shares the full key hash, matches land in
//! the probe row's own partition and per-partition chains ascend in
//! global row order — the concatenated morsel outputs are exactly the
//! serial pair sequence. Likewise every group lives wholly inside one
//! partition, so per-group fold order equals global row order and float
//! accumulations stay bit-identical.

use std::sync::Arc;

use skadi_arrow::array::{Array, Value};
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::compute::{self, CmpOp, SortOrder};
use skadi_arrow::datatype::DataType;
use skadi_arrow::error::ArrowError;
use skadi_arrow::schema::{Field, Schema};

use super::pool::{self, morsels, PARALLEL_MIN_ROWS};
use super::{
    fold_hash, group_key_eq, join_key_eq, resolve_agg, wrap, AggKind, KernelStats, EMPTY_SLOT,
};
use crate::sql::ast::Comparison;
use crate::sql::SqlError;

/// Hash partitions for the partitioned join and group-by. Fixed (never
/// derived from thread count); selected by the top `log2(PARTITIONS)`
/// bits of the folded hash.
pub const PARTITIONS: usize = 8;

#[inline]
fn partition_of(h: u64) -> usize {
    (fold_hash(h) >> 61) as usize
}

/// A linear-probing hash table assigning dense group ids, preallocated
/// from a row-count hint (capacity `next_pow2(rows * 2)`, load factor
/// under 0.5). If the hint was too small it doubles and reinserts,
/// counting each growth in [`GroupTable::rehashes`] — with exact hints,
/// as every kernel here supplies, that counter stays 0.
pub(crate) struct GroupTable {
    slots: Vec<u32>,
    group_hashes: Vec<u64>,
    /// Capacity-growth events (0 when the capacity hint was sufficient).
    pub(crate) rehashes: u64,
}

impl GroupTable {
    pub(crate) fn with_capacity_hint(rows: usize) -> GroupTable {
        let cap = (rows * 2).next_power_of_two().max(16);
        GroupTable {
            slots: vec![EMPTY_SLOT; cap],
            group_hashes: Vec::new(),
            rehashes: 0,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up the group for hash `h`, inserting a fresh id when no
    /// existing group matches. `eq(g)` answers whether group `g`'s key
    /// equals the probed row's; every visit to an occupied non-matching
    /// slot increments `collisions` (hash compared before `eq`, exactly
    /// like the serial kernel). Returns `(group_id, inserted)`.
    pub(crate) fn find_or_insert(
        &mut self,
        h: u64,
        eq: impl Fn(u32) -> bool,
        collisions: &mut u64,
    ) -> (u32, bool) {
        if (self.group_hashes.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() as u64 - 1;
        let mut b = (fold_hash(h) & mask) as usize;
        loop {
            match self.slots[b] {
                EMPTY_SLOT => {
                    let g = self.group_hashes.len() as u32;
                    self.slots[b] = g;
                    self.group_hashes.push(h);
                    return (g, true);
                }
                g if self.group_hashes[g as usize] == h && eq(g) => return (g, false),
                _ => {
                    *collisions += 1;
                    b = (b + 1) & mask as usize;
                }
            }
        }
    }

    fn grow(&mut self) {
        self.rehashes += 1;
        let cap = self.slots.len() * 2;
        let mask = cap - 1;
        let mut slots = vec![EMPTY_SLOT; cap];
        for (g, &h) in self.group_hashes.iter().enumerate() {
            let mut b = (fold_hash(h) as usize) & mask;
            while slots[b] != EMPTY_SLOT {
                b = (b + 1) & mask;
            }
            slots[b] = g as u32;
        }
        self.slots = slots;
    }
}

/// Parallel [`super::conjunct_mask`]: each conjunct's comparison mask is
/// an independent column scan, so they evaluate concurrently; the `AND`
/// combine runs serially in conjunct order (as do column/operator
/// resolution errors, preserving serial error precedence).
pub(crate) fn conjunct_mask(
    batch: &RecordBatch,
    conjuncts: &[&Comparison],
) -> Result<Option<Array>, SqlError> {
    let mut jobs: Vec<(Array, CmpOp, Value)> = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        jobs.push((
            batch.column_by_name(&c.column).map_err(wrap)?.clone(),
            super::cmp_op(&c.op)?,
            super::literal_value(&c.value),
        ));
    }
    let jobs = Arc::new(jobs);
    let jobs2 = Arc::clone(&jobs);
    let masks = pool::global().run_indexed(jobs.len(), move |i| {
        let (col, op, v) = &jobs2[i];
        compute::cmp_scalar(col, *op, v)
    });
    let mut mask: Option<Array> = None;
    for m in masks {
        let m = m.map_err(wrap)?;
        mask = Some(match mask {
            Some(prev) => compute::and(&prev, &m).map_err(wrap)?,
            None => m,
        });
    }
    Ok(mask)
}

/// [`compute::take_indices`] with the per-column gathers spread across
/// the pool. Small gathers (or single-column batches) stay inline.
pub(crate) fn take_batch(
    batch: &RecordBatch,
    indices: &[usize],
) -> Result<RecordBatch, ArrowError> {
    let pool = pool::global();
    if pool.threads() == 1 || indices.len() < PARALLEL_MIN_ROWS || batch.num_columns() < 2 {
        return compute::take_indices(batch, indices);
    }
    for &i in indices {
        if i >= batch.num_rows() {
            return Err(ArrowError::IndexOutOfBounds {
                index: i,
                len: batch.num_rows(),
            });
        }
    }
    let cols: Arc<Vec<Array>> = Arc::new(batch.columns().to_vec());
    let idx: Arc<Vec<usize>> = Arc::new(indices.to_vec());
    let ncols = cols.len();
    let gathered = pool.run_indexed(ncols, move |c| cols[c].take_rows(&idx));
    RecordBatch::try_new(batch.schema().clone(), gathered)
}

/// Gathers join output columns (all left columns by `left_rows`, the
/// selected right columns by `right_rows`), one pool job per column when
/// the match set is large.
pub(crate) fn gather_join_columns(
    left: &RecordBatch,
    right: &RecordBatch,
    right_cols: &[usize],
    left_rows: &[usize],
    right_rows: &[usize],
) -> Vec<Array> {
    let pool = pool::global();
    let ncols = left.num_columns() + right_cols.len();
    if pool.threads() == 1 || left_rows.len() < PARALLEL_MIN_ROWS || ncols < 2 {
        let mut columns = Vec::with_capacity(ncols);
        for c in 0..left.num_columns() {
            columns.push(left.column(c).take_rows(left_rows));
        }
        for &c in right_cols {
            columns.push(right.column(c).take_rows(right_rows));
        }
        return columns;
    }
    let jobs: Arc<Vec<(Array, bool)>> = Arc::new(
        (0..left.num_columns())
            .map(|c| (left.column(c).clone(), true))
            .chain(right_cols.iter().map(|&c| (right.column(c).clone(), false)))
            .collect(),
    );
    let lr: Arc<Vec<usize>> = Arc::new(left_rows.to_vec());
    let rr: Arc<Vec<usize>> = Arc::new(right_rows.to_vec());
    let jobs2 = Arc::clone(&jobs);
    pool.run_indexed(jobs.len(), move |i| {
        let (col, is_left) = &jobs2[i];
        col.take_rows(if *is_left { &lr } else { &rr })
    })
}

/// One partition's build side: a chained bucket table over the partition's
/// right rows (`rows` maps chain-local index back to the global row).
struct BuildPart {
    head: Vec<u32>,
    next: Vec<u32>,
    rows: Vec<u32>,
    cap: usize,
}

/// Partitioned hash join core: same `(left_row, right_row)` pair sequence
/// as [`super::join_rows`], produced by a parallel partition/build/probe.
///
/// Build rows partition morsel-parallel by hash prefix (concatenating
/// morsel outputs keeps each partition's row list ascending); each
/// partition builds its own chained table sized from its exact row count,
/// inserting in reverse so chains ascend; probe morsels walk the chains
/// and their outputs concatenate in morsel order — the serial probe order.
pub(crate) fn join_rows_partitioned(
    lcol: &Array,
    rcol: &Array,
    mixed: bool,
    left_sel: Option<&[usize]>,
    stats: &mut KernelStats,
) -> (Vec<usize>, Vec<usize>) {
    let pool = pool::global();
    let rh: Arc<Vec<u64>> = Arc::new(compute::hash_key_column(rcol, mixed));

    // Probe-side hashes, in probe order (morsel-parallel on the selection
    // path, where rows hash one at a time).
    let lh: Arc<Vec<u64>> = Arc::new(match left_sel {
        None => compute::hash_key_column(lcol, mixed),
        Some(sel) => {
            let sel2: Arc<Vec<usize>> = Arc::new(sel.to_vec());
            let lcol2 = lcol.clone();
            let ranges = morsels(sel.len());
            let ranges2 = ranges.clone();
            pool.run_indexed(ranges.len(), move |m| {
                let (lo, hi) = ranges2[m];
                sel2[lo..hi]
                    .iter()
                    .map(|&l| compute::hash_key_at(&lcol2, mixed, l))
                    .collect::<Vec<u64>>()
            })
            .concat()
        }
    });

    // Partition the build rows by hash prefix.
    let ranges = morsels(rh.len());
    let ranges2 = ranges.clone();
    let rcol2 = rcol.clone();
    let rh2 = Arc::clone(&rh);
    let chunks = pool.run_indexed(ranges.len(), move |m| {
        let (lo, hi) = ranges2[m];
        let mut out: [Vec<u32>; PARTITIONS] = Default::default();
        let validity = rcol2.validity();
        for r in lo..hi {
            if validity.is_some_and(|v| !v.get(r)) {
                continue;
            }
            out[partition_of(rh2[r])].push(r as u32);
        }
        out
    });
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); PARTITIONS];
    for chunk in chunks {
        for (p, rows) in chunk.into_iter().enumerate() {
            part_rows[p].extend(rows);
        }
    }

    // Build each partition's chained table.
    let part_rows = Arc::new(part_rows);
    let pr2 = Arc::clone(&part_rows);
    let rh3 = Arc::clone(&rh);
    let tables: Arc<Vec<BuildPart>> = Arc::new(pool.run_indexed(PARTITIONS, move |p| {
        let rows = &pr2[p];
        let cap = (rows.len() * 2).next_power_of_two().max(16);
        let mask = cap as u64 - 1;
        let mut head = vec![EMPTY_SLOT; cap];
        let mut next = vec![EMPTY_SLOT; rows.len()];
        for (li, &r) in rows.iter().enumerate().rev() {
            let b = (fold_hash(rh3[r as usize]) & mask) as usize;
            next[li] = head[b];
            head[b] = li as u32;
        }
        BuildPart {
            head,
            next,
            rows: rows.clone(),
            cap,
        }
    }));
    stats.hash_slots += tables.iter().map(|t| t.cap as u64).sum::<u64>();

    // Probe, morsel-parallel over the probe sequence.
    let ranges = morsels(lh.len());
    let ranges2 = ranges.clone();
    let lcol2 = lcol.clone();
    let rcol2 = rcol.clone();
    let sel2: Option<Arc<Vec<usize>>> = left_sel.map(|s| Arc::new(s.to_vec()));
    let lh2 = Arc::clone(&lh);
    let rh4 = Arc::clone(&rh);
    let tables2 = Arc::clone(&tables);
    let chunks = pool.run_indexed(ranges.len(), move |m| {
        let (lo, hi) = ranges2[m];
        let mut lrows: Vec<usize> = Vec::new();
        let mut rrows: Vec<usize> = Vec::new();
        let mut collisions = 0u64;
        let l_validity = lcol2.validity();
        for i in lo..hi {
            let l = match &sel2 {
                Some(s) => s[i],
                None => i,
            };
            if l_validity.is_some_and(|v| !v.get(l)) {
                continue;
            }
            let h = lh2[i];
            let t = &tables2[partition_of(h)];
            let mask = t.cap as u64 - 1;
            let mut slot = t.head[(fold_hash(h) & mask) as usize];
            while slot != EMPTY_SLOT {
                let li = slot as usize;
                let ri = t.rows[li] as usize;
                if rh4[ri] == h && join_key_eq(&lcol2, l, &rcol2, ri) {
                    lrows.push(l);
                    rrows.push(ri);
                } else {
                    collisions += 1;
                }
                slot = t.next[li];
            }
        }
        (lrows, rrows, collisions)
    });
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for (lr, rr, c) in chunks {
        left_rows.extend(lr);
        right_rows.extend(rr);
        stats.hash_collisions += c;
    }
    (left_rows, right_rows)
}

/// One partition's aggregation result, pre-merge.
struct PartAgg {
    /// First row seen per group (global row ids, ascending in group id).
    rep_rows: Vec<usize>,
    /// Rendered group key per group (the serial engine's ordering key).
    keys: Vec<String>,
    /// One accumulated column per aggregate, `groups` rows each.
    agg_cols: Vec<Array>,
    cap: usize,
    collisions: u64,
    rehashes: u64,
}

/// Partitioned group-by: byte-identical to the serial
/// [`super::aggregate_spec`] on the same input. Rows partition by hash
/// prefix; each partition groups and accumulates independently (fold
/// order inside a partition is global row order, so float sums match
/// bit-for-bit); the merge sorts all groups by `(rendered key,
/// representative row)` — the serial output order.
pub(crate) fn aggregate_partitioned(
    group_cols: &[usize],
    aggs: &[(String, String, String)],
    input: &RecordBatch,
    stats: &mut KernelStats,
) -> Result<RecordBatch, SqlError> {
    let pool = pool::global();
    let nrows = input.num_rows();
    let hashes: Arc<Vec<u64>> = Arc::new(compute::hash_rows(input, group_cols));

    // Output schema: group columns then one column per aggregate.
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|&c| input.schema().field(c).clone())
        .collect();
    let mut kinds: Vec<AggKind> = Vec::new();
    for (func, column, name) in aggs {
        let kind = resolve_agg(func, column, input)?;
        fields.push(Field::new(name.clone(), kind.data_type(), true));
        kinds.push(kind);
    }
    let kinds = Arc::new(kinds);

    // Partition rows by hash prefix (null keys group like any other key).
    let ranges = morsels(nrows);
    let ranges2 = ranges.clone();
    let h2 = Arc::clone(&hashes);
    let chunks = pool.run_indexed(ranges.len(), move |m| {
        let (lo, hi) = ranges2[m];
        let mut out: [Vec<u32>; PARTITIONS] = Default::default();
        for r in lo..hi {
            out[partition_of(h2[r])].push(r as u32);
        }
        out
    });
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); PARTITIONS];
    for chunk in chunks {
        for (p, rows) in chunk.into_iter().enumerate() {
            part_rows[p].extend(rows);
        }
    }

    // Group and accumulate each partition independently.
    let part_rows = Arc::new(part_rows);
    let pr2 = Arc::clone(&part_rows);
    let h3 = Arc::clone(&hashes);
    let k2 = Arc::clone(&kinds);
    let gcols: Arc<Vec<usize>> = Arc::new(group_cols.to_vec());
    let input2 = input.clone();
    let parts = pool.run_indexed(PARTITIONS, move |p| {
        let rows = &pr2[p];
        let mut table = GroupTable::with_capacity_hint(rows.len());
        let cap = table.capacity();
        let mut collisions = 0u64;
        let mut rep_rows: Vec<usize> = Vec::new();
        let mut group_sizes: Vec<i64> = Vec::new();
        let mut row_group: Vec<u32> = Vec::with_capacity(rows.len());
        for &r in rows.iter() {
            let r = r as usize;
            let (g, inserted) = table.find_or_insert(
                h3[r],
                |g| group_key_eq(&input2, &gcols, rep_rows[g as usize], r),
                &mut collisions,
            );
            if inserted {
                rep_rows.push(r);
                group_sizes.push(1);
            } else {
                group_sizes[g as usize] += 1;
            }
            row_group.push(g);
        }
        let keys: Vec<String> = rep_rows
            .iter()
            .map(|&r| {
                gcols
                    .iter()
                    .map(|&c| input2.column(c).value_at(r).to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect();
        let agg_cols: Vec<Array> = k2
            .iter()
            .map(|kind| accumulate_rows(kind, &input2, rows, &row_group, &group_sizes))
            .collect();
        PartAgg {
            rep_rows,
            keys,
            agg_cols,
            cap,
            collisions,
            rehashes: table.rehashes,
        }
    });

    for p in &parts {
        stats.hash_slots += p.cap as u64;
        stats.hash_collisions += p.collisions;
        stats.rehashes += p.rehashes;
        stats.groups += p.rep_rows.len() as u64;
    }

    // Deterministic merge: the serial engine stable-sorts groups by
    // rendered key with first-appearance tie order; first appearance is
    // ascending representative row, so (key, rep_row) reproduces it.
    let mut entries: Vec<(usize, usize)> = (0..PARTITIONS)
        .flat_map(|p| (0..parts[p].rep_rows.len()).map(move |g| (p, g)))
        .collect();
    entries.sort_by(|&(pa, ga), &(pb, gb)| {
        parts[pa].keys[ga]
            .cmp(&parts[pb].keys[gb])
            .then(parts[pa].rep_rows[ga].cmp(&parts[pb].rep_rows[gb]))
    });
    let ordered_reps: Vec<usize> = entries.iter().map(|&(p, g)| parts[p].rep_rows[g]).collect();

    let mut columns: Vec<Array> = group_cols
        .iter()
        .map(|&c| input.column(c).take_rows(&ordered_reps))
        .collect();
    for (k, kind) in kinds.iter().enumerate() {
        columns.push(gather_agg(&parts, k, &entries, kind.data_type()));
    }
    RecordBatch::try_new(Schema::new(fields), columns).map_err(wrap)
}

/// Gathers one aggregate's output column across partitions in merged
/// group order. Aggregates only produce `Int64` / `Float64` columns.
fn gather_agg(parts: &[PartAgg], k: usize, entries: &[(usize, usize)], dt: DataType) -> Array {
    match dt {
        DataType::Int64 => Array::from_opt_i64(
            entries
                .iter()
                .map(|&(p, g)| {
                    parts[p].agg_cols[k]
                        .as_i64()
                        .expect("integer aggregate")
                        .get(g)
                })
                .collect(),
        ),
        _ => Array::from_opt_f64(
            entries
                .iter()
                .map(|&(p, g)| {
                    parts[p].agg_cols[k]
                        .as_f64()
                        .expect("float aggregate")
                        .get(g)
                })
                .collect(),
        ),
    }
}

/// [`super::accumulate`] restricted to one partition's row list:
/// `row_group[k]` is the local group of row `rows[k]`. Iterating `rows`
/// (ascending global rows) folds each group in global row order.
fn accumulate_rows(
    kind: &AggKind,
    input: &RecordBatch,
    rows: &[u32],
    row_group: &[u32],
    group_sizes: &[i64],
) -> Array {
    let ng = group_sizes.len();
    match *kind {
        AggKind::CountStar => Array::from_i64(group_sizes.to_vec()),
        AggKind::Count(c) => {
            let validity = input.column(c).validity();
            let mut counts = vec![0i64; ng];
            for (k, &r) in rows.iter().enumerate() {
                if validity.is_none_or(|v| v.get(r as usize)) {
                    counts[row_group[k] as usize] += 1;
                }
            }
            Array::from_i64(counts)
        }
        AggKind::SumI64(c) => {
            fold_rows_i64(input.column(c), rows, row_group, ng, 0, i64::wrapping_add)
        }
        AggKind::MinI64(c) => {
            fold_rows_i64(input.column(c), rows, row_group, ng, i64::MAX, i64::min)
        }
        AggKind::MaxI64(c) => {
            fold_rows_i64(input.column(c), rows, row_group, ng, i64::MIN, i64::max)
        }
        AggKind::SumF64(c) => {
            fold_rows_f64(input.column(c), rows, row_group, ng, 0.0, |a, b| a + b)
        }
        AggKind::MinF64(c) => fold_rows_f64(
            input.column(c),
            rows,
            row_group,
            ng,
            f64::INFINITY,
            f64::min,
        ),
        AggKind::MaxF64(c) => fold_rows_f64(
            input.column(c),
            rows,
            row_group,
            ng,
            f64::NEG_INFINITY,
            f64::max,
        ),
        AggKind::Avg(c) => {
            let mut sums = vec![0f64; ng];
            let mut counts = vec![0i64; ng];
            match input.column(c) {
                Array::Int64(a) => {
                    for (k, &r) in rows.iter().enumerate() {
                        if let Some(v) = a.get(r as usize) {
                            sums[row_group[k] as usize] += v as f64;
                            counts[row_group[k] as usize] += 1;
                        }
                    }
                }
                Array::Float64(a) => {
                    for (k, &r) in rows.iter().enumerate() {
                        if let Some(v) = a.get(r as usize) {
                            sums[row_group[k] as usize] += v;
                            counts[row_group[k] as usize] += 1;
                        }
                    }
                }
                _ => unreachable!("avg resolved only for numeric columns"),
            }
            Array::from_opt_f64(
                (0..ng)
                    .map(|g| (counts[g] > 0).then(|| sums[g] / counts[g] as f64))
                    .collect(),
            )
        }
        AggKind::NonNumeric => Array::from_opt_f64(vec![None; ng]),
    }
}

fn fold_rows_i64(
    col: &Array,
    rows: &[u32],
    row_group: &[u32],
    ng: usize,
    identity: i64,
    op: fn(i64, i64) -> i64,
) -> Array {
    let a = col.as_i64().expect("resolved as Int64");
    let mut acc: Vec<Option<i64>> = vec![None; ng];
    for (k, &r) in rows.iter().enumerate() {
        if let Some(v) = a.get(r as usize) {
            let g = row_group[k] as usize;
            acc[g] = Some(op(acc[g].unwrap_or(identity), v));
        }
    }
    Array::from_opt_i64(acc)
}

fn fold_rows_f64(
    col: &Array,
    rows: &[u32],
    row_group: &[u32],
    ng: usize,
    identity: f64,
    op: fn(f64, f64) -> f64,
) -> Array {
    let a = col.as_f64().expect("resolved as Float64");
    let mut acc: Vec<Option<f64>> = vec![None; ng];
    for (k, &r) in rows.iter().enumerate() {
        if let Some(v) = a.get(r as usize) {
            let g = row_group[k] as usize;
            acc[g] = Some(op(acc[g].unwrap_or(identity), v));
        }
    }
    Array::from_opt_f64(acc)
}

/// Parallel sort: per-morsel stable [`compute::SortKeys::sort_range`]
/// runs, then pairwise [`compute::SortKeys::merge`] rounds on the pool.
/// The merge tie-breaks equal keys by row index, a total order — so any
/// merge shape yields the unique permutation of the full stable sort,
/// identical to [`compute::sort_to_indices`].
pub(crate) fn sort_permutation(col: &Array, order: SortOrder) -> Vec<usize> {
    let pool = pool::global();
    let keys = Arc::new(compute::SortKeys::new(col));
    let ranges = morsels(col.len());
    let ranges2 = ranges.clone();
    let k2 = Arc::clone(&keys);
    let mut runs: Vec<Vec<u32>> = pool.run_indexed(ranges.len(), move |m| {
        let (lo, hi) = ranges2[m];
        k2.sort_range(order, lo as u32, hi as u32)
    });
    while runs.len() > 1 {
        let pairs = runs.len() / 2;
        let prev = Arc::new(runs);
        let prev2 = Arc::clone(&prev);
        let k2 = Arc::clone(&keys);
        let mut merged = pool.run_indexed(pairs, move |i| {
            k2.merge(order, &prev2[2 * i], &prev2[2 * i + 1])
        });
        if prev.len() % 2 == 1 {
            merged.push(prev[prev.len() - 1].clone());
        }
        runs = merged;
    }
    runs.pop()
        .map_or_else(Vec::new, |r| r.into_iter().map(|i| i as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random i64s (splitmix-style), no rand dep.
    fn pseudo(n: usize, seed: u64, modulus: i64) -> Vec<i64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as i64).rem_euclid(modulus)
            })
            .collect()
    }

    #[test]
    fn group_table_grows_and_counts_rehashes() {
        let mut t = GroupTable::with_capacity_hint(0);
        assert_eq!(t.capacity(), 16);
        let mut collisions = 0u64;
        for h in 0..100u64 {
            // All keys distinct: eq by hash identity.
            let (_, inserted) = t.find_or_insert(
                h.wrapping_mul(0x9E3779B97F4A7C15),
                |_| false,
                &mut collisions,
            );
            assert!(inserted);
        }
        assert!(
            t.rehashes >= 4,
            "expected growth events, got {}",
            t.rehashes
        );
        assert!(t.capacity() >= 200);

        // An exact hint never rehashes.
        let mut t = GroupTable::with_capacity_hint(100);
        let mut collisions = 0u64;
        for h in 0..100u64 {
            t.find_or_insert(
                h.wrapping_mul(0x9E3779B97F4A7C15),
                |_| false,
                &mut collisions,
            );
        }
        assert_eq!(t.rehashes, 0);
    }

    #[test]
    fn partitioned_join_matches_bruteforce_and_is_thread_invariant() {
        let _guard = pool::test_guard();
        let n = PARALLEL_MIN_ROWS + 1234;
        let lkeys = pseudo(n, 7, 97);
        let rkeys: Vec<i64> = (0..97).map(|i| (i * 31) % 97).collect();
        let lcol = Array::from_i64(lkeys.clone());
        let rcol = Array::from_i64(rkeys.clone());

        let mut expected: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for (l, lk) in lkeys.iter().enumerate() {
            for (r, rk) in rkeys.iter().enumerate() {
                if lk == rk {
                    expected.0.push(l);
                    expected.1.push(r);
                }
            }
        }

        let mut baseline = None;
        for threads in [1, 2, 4] {
            pool::set_global_threads(threads);
            let mut stats = KernelStats::default();
            let got = join_rows_partitioned(&lcol, &rcol, false, None, &mut stats);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(stats.rehashes, 0);
            let sig = (stats.hash_slots, stats.hash_collisions);
            if let Some(prev) = baseline {
                assert_eq!(sig, prev, "stats must not depend on threads");
            }
            baseline = Some(sig);
        }
    }

    #[test]
    fn partitioned_join_respects_selection_order() {
        let _guard = pool::test_guard();
        let n = PARALLEL_MIN_ROWS + 100;
        let lkeys = pseudo(n, 11, 50);
        let lcol = Array::from_i64(lkeys.clone());
        let rcol = Array::from_i64((0..50).collect());
        // A scrambled-but-deterministic selection: every third row, twice.
        let sel: Vec<usize> = (0..n).step_by(3).chain((0..n).step_by(3)).collect();

        pool::set_global_threads(4);
        let mut stats = KernelStats::default();
        let (lr, rr) = join_rows_partitioned(&lcol, &rcol, false, Some(&sel), &mut stats);
        let mut expected: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for &l in &sel {
            let k = lkeys[l];
            if (0..50).contains(&k) {
                expected.0.push(l);
                expected.1.push(k as usize);
            }
        }
        assert_eq!((lr, rr), expected);
    }

    #[test]
    fn partitioned_aggregate_matches_direct_computation() {
        let _guard = pool::test_guard();
        let n = PARALLEL_MIN_ROWS + 777;
        let keys = pseudo(n, 3, 37);
        let vals = pseudo(n, 5, 1000);
        let input = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("v", DataType::Int64, false),
            ]),
            vec![Array::from_i64(keys.clone()), Array::from_i64(vals.clone())],
        )
        .unwrap();
        let aggs = vec![
            ("sum".to_string(), "v".to_string(), "s".to_string()),
            ("count".to_string(), "*".to_string(), "n".to_string()),
        ];

        let mut by_key: std::collections::BTreeMap<String, (i64, i64, i64)> =
            std::collections::BTreeMap::new();
        for (k, v) in keys.iter().zip(&vals) {
            let e = by_key.entry(k.to_string()).or_insert((*k, 0, 0));
            e.1 += v;
            e.2 += 1;
        }

        for threads in [1, 4] {
            pool::set_global_threads(threads);
            let mut stats = KernelStats::default();
            let out = aggregate_partitioned(&[0], &aggs, &input, &mut stats).unwrap();
            assert_eq!(out.num_rows(), by_key.len());
            assert_eq!(stats.groups, by_key.len() as u64);
            assert_eq!(stats.rehashes, 0);
            for (i, (_, &(k, s, c))) in by_key.iter().enumerate() {
                assert_eq!(out.column(0).value_at(i), Value::I64(k), "row {i} key");
                assert_eq!(out.column(1).value_at(i), Value::I64(s), "row {i} sum");
                assert_eq!(out.column(2).value_at(i), Value::I64(c), "row {i} count");
            }
        }
    }

    #[test]
    fn sort_permutation_matches_serial_kernel() {
        let _guard = pool::test_guard();
        let n = PARALLEL_MIN_ROWS * 2 + 321;
        let vals = pseudo(n, 13, 500);
        let col = Array::from_i64(vals);
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let serial: Vec<usize> = {
                let idx = compute::sort_to_indices(&col, order);
                let a = idx.as_i64().unwrap();
                (0..a.len()).map(|i| a.get(i).unwrap() as usize).collect()
            };
            for threads in [1, 4] {
                pool::set_global_threads(threads);
                assert_eq!(sort_permutation(&col, order), serial);
            }
        }
    }

    #[test]
    fn take_batch_matches_take_indices() {
        let _guard = pool::test_guard();
        let n = PARALLEL_MIN_ROWS + 50;
        let a = pseudo(n, 17, 1_000_000);
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("a", DataType::Int64, false),
                Field::new("b", DataType::Int64, false),
            ]),
            vec![Array::from_i64(a.clone()), Array::from_i64(a)],
        )
        .unwrap();
        let idx: Vec<usize> = (0..n).rev().collect();
        pool::set_global_threads(4);
        let par = take_batch(&batch, &idx).unwrap();
        let ser = compute::take_indices(&batch, &idx).unwrap();
        assert_eq!(par, ser);
        assert!(take_batch(&batch, &[n]).is_err(), "bounds still checked");
    }
}

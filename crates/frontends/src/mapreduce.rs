//! MapReduce frontend.
//!
//! The classic map -> shuffle -> reduce pattern expressed on FlowGraph:
//! a source feeds a map vertex, a keyed edge shuffles to the reduce
//! vertex, and the reduction lands in a sink.

use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// A declared MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub struct MapReduceJob {
    /// Input dataset name.
    pub input: String,
    /// Input rows.
    pub input_rows: u64,
    /// Input bytes.
    pub input_bytes: u64,
    /// Shuffle key.
    pub key: String,
    /// Fraction of input surviving the map phase, `(0, 1]`.
    pub map_selectivity: f64,
    /// Fraction of shuffled data surviving the reduce, `(0, 1]`.
    pub reduce_factor: f64,
}

impl MapReduceJob {
    /// A job over `input` keyed by `key` with neutral size factors.
    pub fn new(input: &str, rows: u64, bytes: u64, key: &str) -> Self {
        MapReduceJob {
            input: input.to_string(),
            input_rows: rows,
            input_bytes: bytes,
            key: key.to_string(),
            map_selectivity: 1.0,
            reduce_factor: 0.05,
        }
    }

    /// Sets the map-phase selectivity.
    pub fn map_selectivity(mut self, s: f64) -> Self {
        assert!(s > 0.0 && s <= 1.0, "selectivity must be in (0, 1]");
        self.map_selectivity = s;
        self
    }

    /// Sets the reduce-phase output factor.
    pub fn reduce_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "reduce factor must be in (0, 1]");
        self.reduce_factor = f;
        self
    }

    /// Builds the FlowGraph, returning `(graph, sink)`.
    pub fn to_flowgraph(&self) -> Result<(FlowGraph, VertexId), GraphError> {
        let mut g = FlowGraph::new();
        let src = g.add_source(&self.input, self.input_rows, self.input_bytes);
        let map_rows = ((self.input_rows as f64) * self.map_selectivity).max(1.0) as u64;
        let map_bytes = ((self.input_bytes as f64) * self.map_selectivity).max(1.0) as u64;
        // A map is a per-row transform: the fusable tensor.map op name
        // would be wrong here (frames), so use rel.project + rel.filter
        // semantics rolled into a filter-like op.
        let map = g.add_ir_op("rel.filter", map_rows, map_bytes);
        let red_bytes = ((map_bytes as f64) * self.reduce_factor).max(64.0) as u64;
        let red = g.add_ir_op("rel.aggregate", map_rows, red_bytes);
        let sink = g.add_sink(&format!("{}-result", self.input));
        g.connect(src, map)?;
        g.connect_keyed(map, red, &self.key)?;
        g.connect(red, sink)?;
        g.validate()?;
        Ok((g, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_flowgraph::EdgeKind;

    #[test]
    fn builds_map_shuffle_reduce() {
        let (g, sink) = MapReduceJob::new("logs", 1 << 20, 128 << 20, "word")
            .to_flowgraph()
            .unwrap();
        assert_eq!(g.len(), 4);
        let names: Vec<&str> = g.vertices().iter().map(|v| v.body.name()).collect();
        assert_eq!(
            names,
            vec!["logs", "rel.filter", "rel.aggregate", "logs-result"]
        );
        // The shuffle edge is keyed on the word.
        let keyed = g
            .edges()
            .iter()
            .find(|e| matches!(e.kind, EdgeKind::Keyed(_)))
            .unwrap();
        assert_eq!(keyed.kind, EdgeKind::Keyed("word".into()));
        assert_eq!(g.outputs_of(g.inputs_of(sink)[0]), vec![sink]);
    }

    #[test]
    fn selectivities_shrink_data() {
        let (g, _) = MapReduceJob::new("logs", 1000, 1 << 20, "k")
            .map_selectivity(0.1)
            .reduce_factor(0.01)
            .to_flowgraph()
            .unwrap();
        let map = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.filter")
            .unwrap();
        assert_eq!(map.rows_hint, 100);
        let red = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.aggregate")
            .unwrap();
        assert!(red.output_bytes_hint < map.output_bytes_hint);
    }

    #[test]
    #[should_panic(expected = "selectivity must be")]
    fn bad_selectivity_panics() {
        let _ = MapReduceJob::new("x", 1, 1, "k").map_selectivity(0.0);
    }
}

//! # skadi-runtime — the stateful serverless runtime
//!
//! This crate executes physical graphs with a distributed task model, as
//! §2.3 of the paper describes: per-node raylets plus a centralized
//! scheduler (control plane), futures resolved over the object store and
//! caching layer (data plane), lineage- or replication-based fault
//! tolerance, and the two hardware generations:
//!
//! - **Gen-1**: raylets offloaded to the DPU of each physically
//!   disaggregated device; all control traffic transits the DPU;
//!   pull-based future resolution.
//! - **Gen-2**: device-resident raylets, push-based resolution, and
//!   spilling to disaggregated memory.
//!
//! The same machinery also runs the *comparison* deployments of the
//! paper's Figure 1 and Table 1: serverful clusters (per-system silos,
//! cross-system data through durable storage) and stateless serverless
//! (every intermediate bounced through durable storage, cold starts),
//! so all measurements share one simulator.
//!
//! Modules:
//!
//! - [`task`]: task specs, IDs, lifecycle states.
//! - [`config`]: [`RuntimeConfig`] — generation, resolution protocol,
//!   placement policy, deployment model, fault-tolerance mode.
//! - [`placement`]: pluggable placement policies (data-centric,
//!   load-only, round-robin, power-of-k load-aware, work-stealing).
//! - [`scheduler`]: gang scheduling and the device autoscaler.
//! - [`lineage`]: the lineage log and recovery planning.
//! - [`cluster`]: the event-driven cluster simulation ([`Cluster`]).
//! - [`job`]: physical-graph-to-job conversion and [`JobStats`].
//! - [`failure`]: failure injection plans.
//! - [`chaos`]: seeded chaos-schedule fault harness (random jobs +
//!   random survivable failure schedules + invariant checks).

pub mod chaos;
pub mod cluster;
pub mod config;
pub mod error;
pub mod executor;
pub mod failure;
pub mod job;
pub mod lineage;
pub mod placement;
pub mod scheduler;
pub mod task;

pub use chaos::{run_chaos, run_chaos_with, ChaosVerdict};
pub use cluster::{Cluster, PerJobStats};
pub use config::{AutoscaleConfig, Deployment, FtMode, Generation, RuntimeConfig};
pub use error::RuntimeError;
pub use executor::TaskExecutor;
pub use failure::{FailurePlan, Slowdown};
pub use job::{job_from_physical, Job, JobStats};
pub use placement::{NodeFacts, PlacementPolicy, PlacementStrategy, Placer};
pub use task::{ActorId, TaskId, TaskSpec, TaskState};

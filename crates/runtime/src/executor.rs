//! The data-plane executor hook.
//!
//! The cluster simulates *when* and *where* tasks run; with a
//! [`TaskExecutor`] installed ([`Cluster::set_executor`]), a task's
//! simulated completion also runs its real computation: the executor is
//! handed the actual payload bytes its producers stored and returns the
//! task's output bytes, which the cluster then stores under the same
//! pricing it applies to estimated sizes — measured, not estimated,
//! output sizes feed storage, transfer, pass-by-value inlining, and
//! caching decisions.
//!
//! The trait is bytes-level on purpose: the runtime crate knows nothing
//! about record batches. The SQL data plane implements it by decoding
//! IPC frames, running the shard's operator descriptor, and encoding the
//! result (see the `skadi` crate's graph executor).
//!
//! Determinism contract: an executor must be a pure function of
//! `(task, inputs)`. The cluster drops a task's payload when lineage
//! resets it, and replays the executor on re-execution — identical
//! inputs must reproduce identical bytes, or recovery would change the
//! job's answer.
//!
//! [`Cluster::set_executor`]: crate::cluster::Cluster::set_executor

use crate::task::TaskId;

/// One ready task and its staged inputs: `(task, [(producer, payload)])`
/// with producers sorted by task ID.
pub type ReadyTask<'a> = (TaskId, Vec<(TaskId, &'a [u8])>);

/// Executes a task's real computation from its inputs' payload bytes.
pub trait TaskExecutor {
    /// Runs task `t`. `inputs` holds one entry per producer task (each
    /// producer's full stored payload), sorted by producer task ID; the
    /// executor is responsible for any per-consumer partitioning. The
    /// returned bytes become the task's stored payload, and their length
    /// its measured output size.
    fn execute(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<Vec<u8>, String>;

    /// Runs a batch of tasks that all completed at the same simulated
    /// instant. `tasks` is sorted by task ID and results return in the
    /// same order. The default delegates to [`TaskExecutor::execute`]
    /// one task at a time; a parallel executor may overlap the batch on
    /// real threads — each result must still be the same pure function
    /// of that task's `(task, inputs)`, so batching can never change
    /// output bytes, only wall-clock time.
    fn execute_ready(&mut self, tasks: &[ReadyTask<'_>]) -> Vec<Result<Vec<u8>, String>> {
        tasks
            .iter()
            .map(|(t, inputs)| self.execute(*t, inputs))
            .collect()
    }
}

impl<F> TaskExecutor for F
where
    F: FnMut(TaskId, &[(TaskId, &[u8])]) -> Result<Vec<u8>, String>,
{
    fn execute(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<Vec<u8>, String> {
        self(t, inputs)
    }
}

//! The data-plane executor hook.
//!
//! The cluster simulates *when* and *where* tasks run; with a
//! [`TaskExecutor`] installed ([`Cluster::set_executor`]), a task's
//! simulated completion also runs its real computation: the executor is
//! handed the actual payload bytes its producers stored and returns the
//! task's output bytes, which the cluster then stores under the same
//! pricing it applies to estimated sizes — measured, not estimated,
//! output sizes feed storage, transfer, pass-by-value inlining, and
//! caching decisions.
//!
//! The trait is bytes-level on purpose: the runtime crate knows nothing
//! about record batches. The SQL data plane implements it by decoding
//! IPC frames, running the shard's operator descriptor, and encoding the
//! result (see the `skadi` crate's graph executor).
//!
//! Determinism contract: an executor must be a pure function of
//! `(task, inputs)`. The cluster drops a task's payload when lineage
//! resets it, and replays the executor on re-execution — identical
//! inputs must reproduce identical bytes, or recovery would change the
//! job's answer.
//!
//! [`Cluster::set_executor`]: crate::cluster::Cluster::set_executor

use crate::task::TaskId;

/// Executes a task's real computation from its inputs' payload bytes.
pub trait TaskExecutor {
    /// Runs task `t`. `inputs` holds one entry per producer task (each
    /// producer's full stored payload), sorted by producer task ID; the
    /// executor is responsible for any per-consumer partitioning. The
    /// returned bytes become the task's stored payload, and their length
    /// its measured output size.
    fn execute(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<Vec<u8>, String>;
}

impl<F> TaskExecutor for F
where
    F: FnMut(TaskId, &[(TaskId, &[u8])]) -> Result<Vec<u8>, String>,
{
    fn execute(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<Vec<u8>, String> {
        self(t, inputs)
    }
}

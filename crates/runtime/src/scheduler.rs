//! Task placement, gang scheduling, and device autoscaling.
//!
//! §2.3: the control plane "embraces data-centric scheduling for higher
//! utilization" (citing Whiz); "if necessary, it could also integrate
//! gang-scheduling to support SPMD-style sub-graph" (citing Pathways);
//! and §1 notes that "the auto-scaling of DSAs is almost non-existent" in
//! today's serverless — so Skadi provides one.

use std::collections::HashMap;

use skadi_dcsim::time::{SimDuration, SimTime};

use crate::config::AutoscaleConfig;
use crate::task::{GangId, TaskId};

// Placement moved to its own module (`crate::placement`) when the
// policy set grew; re-exported here so existing paths keep working.
pub use crate::placement::{NodeFacts, PlacementPolicy, PlacementStrategy, Placer};

/// A gang member reported ready for a gang nobody declared. Releasing
/// it anyway would treat the lone member as "the whole gang" (declared
/// size defaults to zero) — a scheduling bug, not a recoverable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndeclaredGang(pub GangId);

impl std::fmt::Display for UndeclaredGang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gang {:?} was never declared", self.0)
    }
}

/// Tracks gang membership so gang-labeled tasks release together.
#[derive(Debug, Clone, Default)]
pub struct GangTracker {
    sizes: HashMap<GangId, usize>,
    waiting: HashMap<GangId, Vec<TaskId>>,
    released: std::collections::HashSet<GangId>,
}

impl GangTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        GangTracker::default()
    }

    /// Declares that `gang` has `size` members (called at job submit).
    pub fn declare(&mut self, gang: GangId, size: usize) {
        *self.sizes.entry(gang).or_insert(0) += size;
    }

    /// Records that a gang member became ready. Returns the tasks to
    /// release: the whole gang when this was the last member (they start
    /// together), just this task if the gang already launched once (a
    /// failure re-execution must not wait for peers that will never
    /// re-gather), `None` otherwise. An undeclared gang is an error.
    pub fn member_ready(
        &mut self,
        gang: GangId,
        task: TaskId,
    ) -> Result<Option<Vec<TaskId>>, UndeclaredGang> {
        if self.released.contains(&gang) {
            return Ok(Some(vec![task]));
        }
        let Some(size) = self.sizes.get(&gang).copied() else {
            return Err(UndeclaredGang(gang));
        };
        let waiting = self.waiting.entry(gang).or_default();
        if !waiting.contains(&task) {
            waiting.push(task);
        }
        if waiting.len() >= size {
            let mut all = self.waiting.remove(&gang).unwrap_or_default();
            all.sort();
            self.released.insert(gang);
            Ok(Some(all))
        } else {
            Ok(None)
        }
    }

    /// Members currently waiting in a gang.
    pub fn waiting_in(&self, gang: GangId) -> usize {
        self.waiting.get(&gang).map_or(0, Vec::len)
    }

    /// True once the gang has launched together at least once.
    pub fn has_released(&self, gang: GangId) -> bool {
        self.released.contains(&gang)
    }

    /// Re-arms a gang from scratch (members gather and release together
    /// again). Used when an entire gang is re-submitted; the re-submission
    /// re-declares its members, so the size is forgotten too — `declare`
    /// accumulates, and a stale size would inflate on re-declaration
    /// until the gang can never fill.
    pub fn reset(&mut self, gang: GangId) {
        self.sizes.remove(&gang);
        self.waiting.remove(&gang);
        self.released.remove(&gang);
    }

    /// Marks a gang as already launched without replaying its gather.
    /// Used when a newly elected scheduler rebuilds gang state: members
    /// observed `Dispatched`/`Running`/`Finished` prove the collective
    /// launch happened, so later lone re-executions must release solo.
    pub fn mark_released(&mut self, gang: GangId) {
        self.waiting.remove(&gang);
        self.released.insert(gang);
    }

    /// Forgets a single waiting member (its task was reset by failure
    /// recovery and will report ready again). Unlike [`reset`], peers
    /// already gathered keep waiting and the release latch is untouched.
    ///
    /// [`reset`]: GangTracker::reset
    pub fn remove_waiting(&mut self, gang: GangId, task: TaskId) {
        if let Some(w) = self.waiting.get_mut(&gang) {
            w.retain(|t| *t != task);
            if w.is_empty() {
                self.waiting.remove(&gang);
            }
        }
    }
}

/// One autoscaler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Provision this many more devices (usable after the provision
    /// delay).
    Up(u32),
    /// Retire this many idle devices.
    Down(u32),
}

/// Scales the warm accelerator-device pool with queue depth.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    warm: u32,
    /// Device-microseconds of warm capacity accumulated (the cost the
    /// experiments report).
    warm_device_us: f64,
    last_eval: SimTime,
}

impl Autoscaler {
    /// Creates an autoscaler starting at the minimum pool size.
    pub fn new(cfg: AutoscaleConfig) -> Self {
        Autoscaler {
            warm: cfg.min_devices,
            cfg,
            warm_device_us: 0.0,
            last_eval: SimTime::ZERO,
        }
    }

    /// Devices currently warm.
    pub fn warm(&self) -> u32 {
        self.warm
    }

    /// Accumulated warm device-time in microseconds.
    pub fn warm_device_us(&self) -> f64 {
        self.warm_device_us
    }

    /// The evaluation interval.
    pub fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    /// The provision delay for newly added devices.
    pub fn provision_delay(&self) -> SimDuration {
        self.cfg.provision_delay
    }

    /// Records that a warm device crashed: the pool shrinks immediately
    /// (the device no longer accrues cost and no longer counts toward
    /// capacity), so the next [`evaluate`] sees the real queue pressure
    /// and can provision a replacement.
    ///
    /// [`evaluate`]: Autoscaler::evaluate
    pub fn device_lost(&mut self, now: SimTime) {
        // Settle cost at the old pool size up to the crash instant.
        let dt = now.saturating_since(self.last_eval);
        self.warm_device_us += self.warm as f64 * dt.as_micros_f64();
        self.last_eval = now;
        self.warm = self.warm.saturating_sub(1);
    }

    /// Rebuilds the autoscaler on a newly elected scheduler node: cost
    /// accrued so far is settled at the old pool size, then the pool is
    /// reset to what the surviving raylets actually report (`warm`
    /// provisioned devices). The cost ledger survives — it models the
    /// bill, not scheduler-resident soft state.
    pub fn resync(&mut self, warm: u32, now: SimTime) {
        let dt = now.saturating_since(self.last_eval);
        self.warm_device_us += self.warm as f64 * dt.as_micros_f64();
        self.last_eval = now;
        self.warm = warm.clamp(self.cfg.min_devices, self.cfg.max_devices);
    }

    /// Re-evaluates at `now` given the accelerator queue depth and the
    /// number of currently busy devices.
    pub fn evaluate(&mut self, now: SimTime, queue: u32, busy: u32) -> ScaleDecision {
        // Accrue cost for the elapsed window at the current pool size.
        let dt = now.saturating_since(self.last_eval);
        self.warm_device_us += self.warm as f64 * dt.as_micros_f64();
        self.last_eval = now;

        let per_device = queue as f64 / self.warm.max(1) as f64;
        if per_device > self.cfg.scale_up_queue && self.warm < self.cfg.max_devices {
            let want = ((queue as f64 / self.cfg.scale_up_queue).ceil() as u32)
                .clamp(self.warm + 1, self.cfg.max_devices);
            let add = want - self.warm;
            self.warm = want;
            ScaleDecision::Up(add)
        } else if queue == 0 && busy < self.warm && self.warm > self.cfg.min_devices {
            let idle = self.warm - busy;
            let drop = idle.min(self.warm - self.cfg.min_devices);
            if drop > 0 {
                self.warm -= drop;
                ScaleDecision::Down(drop)
            } else {
                ScaleDecision::Hold
            }
        } else {
            ScaleDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gang_releases_when_complete() {
        let mut g = GangTracker::new();
        let gang = GangId(1);
        g.declare(gang, 3);
        assert!(g.member_ready(gang, TaskId(5)).unwrap().is_none());
        assert!(g.member_ready(gang, TaskId(3)).unwrap().is_none());
        assert_eq!(g.waiting_in(gang), 2);
        let all = g.member_ready(gang, TaskId(8)).unwrap().unwrap();
        assert_eq!(all, vec![TaskId(3), TaskId(5), TaskId(8)]);
        assert_eq!(g.waiting_in(gang), 0);
    }

    #[test]
    fn gang_reset_rearms() {
        let mut g = GangTracker::new();
        let gang = GangId(2);
        g.declare(gang, 2);
        g.member_ready(gang, TaskId(0)).unwrap();
        g.reset(gang);
        // A reset gang is undeclared until the re-submission declares it.
        g.declare(gang, 2);
        assert!(g.member_ready(gang, TaskId(0)).unwrap().is_none());
        assert!(g.member_ready(gang, TaskId(1)).unwrap().is_some());
    }

    #[test]
    fn gang_resubmission_redeclares_from_zero() {
        // Regression: `declare` accumulates (one call per member at job
        // submit) but `reset` used to keep the old size, so a re-declared
        // gang doubled its threshold and could never fill again.
        let mut g = GangTracker::new();
        let gang = GangId(7);
        g.declare(gang, 1);
        g.declare(gang, 1);
        g.member_ready(gang, TaskId(0)).unwrap();
        g.member_ready(gang, TaskId(1)).unwrap().expect("released");
        g.reset(gang);
        g.declare(gang, 1);
        g.declare(gang, 1);
        assert!(g.member_ready(gang, TaskId(0)).unwrap().is_none());
        let all = g
            .member_ready(gang, TaskId(1))
            .unwrap()
            .expect("re-declared gang of 2 releases at 2 members");
        assert_eq!(all, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn undeclared_gang_is_an_error() {
        // Regression: an undeclared gang's size defaulted to 0, so the
        // first member to report was released alone as "the whole gang".
        let mut g = GangTracker::new();
        assert_eq!(
            g.member_ready(GangId(9), TaskId(0)),
            Err(UndeclaredGang(GangId(9)))
        );
        assert_eq!(g.waiting_in(GangId(9)), 0);
    }

    #[test]
    fn gang_member_ready_dedups() {
        let mut g = GangTracker::new();
        let gang = GangId(3);
        g.declare(gang, 2);
        // The same member reporting twice must not fill the gang.
        assert!(g.member_ready(gang, TaskId(0)).unwrap().is_none());
        assert!(g.member_ready(gang, TaskId(0)).unwrap().is_none());
        assert_eq!(g.waiting_in(gang), 1);
        assert!(g.member_ready(gang, TaskId(1)).unwrap().is_some());
    }

    #[test]
    fn gang_released_members_restart_solo() {
        // Regression: after a gang launched, a single member reset by
        // failure recovery used to wait forever for peers that will never
        // re-gather.
        let mut g = GangTracker::new();
        let gang = GangId(4);
        g.declare(gang, 2);
        g.member_ready(gang, TaskId(0)).unwrap();
        let all = g.member_ready(gang, TaskId(1)).unwrap().unwrap();
        assert_eq!(all.len(), 2);
        assert!(g.has_released(gang));
        // One member re-runs after a node failure: it releases alone.
        assert_eq!(g.member_ready(gang, TaskId(1)), Ok(Some(vec![TaskId(1)])));
    }

    #[test]
    fn gang_mark_released_skips_the_gather() {
        // A newly elected scheduler infers launched gangs from member
        // states; re-reported members then release solo.
        let mut g = GangTracker::new();
        let gang = GangId(6);
        g.declare(gang, 3);
        g.mark_released(gang);
        assert!(g.has_released(gang));
        assert_eq!(g.member_ready(gang, TaskId(2)), Ok(Some(vec![TaskId(2)])));
    }

    #[test]
    fn gang_remove_waiting_keeps_peers() {
        let mut g = GangTracker::new();
        let gang = GangId(5);
        g.declare(gang, 3);
        g.member_ready(gang, TaskId(0)).unwrap();
        g.member_ready(gang, TaskId(1)).unwrap();
        // Member 1 is reset by recovery; member 0 keeps waiting.
        g.remove_waiting(gang, TaskId(1));
        assert_eq!(g.waiting_in(gang), 1);
        assert!(g.member_ready(gang, TaskId(1)).unwrap().is_none());
        assert!(g.member_ready(gang, TaskId(2)).unwrap().is_some());
    }

    #[test]
    fn autoscaler_sheds_lost_devices() {
        let cfg = AutoscaleConfig {
            min_devices: 1,
            max_devices: 8,
            scale_up_queue: 2.0,
            interval: SimDuration::from_millis(10),
            provision_delay: SimDuration::from_millis(50),
        };
        let mut a = Autoscaler::new(cfg);
        a.evaluate(SimTime::from_millis(10), 100, 1);
        let before = a.warm();
        assert!(before > 1);
        a.device_lost(SimTime::from_millis(15));
        assert_eq!(a.warm(), before - 1);
        // With the pool shrunk, sustained queue pressure provisions a
        // replacement instead of holding.
        match a.evaluate(SimTime::from_millis(20), 100, a.warm()) {
            ScaleDecision::Up(n) => assert!(n >= 1),
            other => panic!("expected Up after device loss, got {other:?}"),
        }
    }

    #[test]
    fn autoscaler_scales_up_under_pressure() {
        let mut a = Autoscaler::new(AutoscaleConfig {
            min_devices: 1,
            max_devices: 8,
            scale_up_queue: 2.0,
            interval: SimDuration::from_millis(10),
            provision_delay: SimDuration::from_millis(50),
        });
        match a.evaluate(SimTime::from_millis(10), 10, 1) {
            ScaleDecision::Up(n) => assert!(n >= 1),
            other => panic!("expected Up, got {other:?}"),
        }
        assert!(a.warm() > 1);
    }

    #[test]
    fn autoscaler_respects_max_and_min() {
        let cfg = AutoscaleConfig {
            min_devices: 2,
            max_devices: 4,
            scale_up_queue: 1.0,
            interval: SimDuration::from_millis(10),
            provision_delay: SimDuration::from_millis(50),
        };
        let mut a = Autoscaler::new(cfg);
        a.evaluate(SimTime::from_millis(10), 100, 2);
        assert_eq!(a.warm(), 4);
        // Queue drains: scale back down, but never below min.
        a.evaluate(SimTime::from_millis(20), 0, 0);
        assert_eq!(a.warm(), 2);
        assert!(matches!(
            a.evaluate(SimTime::from_millis(30), 0, 0),
            ScaleDecision::Hold
        ));
    }

    #[test]
    fn autoscaler_resync_keeps_the_bill() {
        let cfg = AutoscaleConfig {
            min_devices: 1,
            max_devices: 8,
            scale_up_queue: 2.0,
            interval: SimDuration::from_millis(10),
            provision_delay: SimDuration::from_millis(50),
        };
        let mut a = Autoscaler::new(cfg);
        a.evaluate(SimTime::from_millis(10), 100, 1);
        let before_warm = a.warm();
        assert!(before_warm > 1);
        // A failover rebuilds the pool from what raylets report (here: 2
        // provisioned devices); accrued cost is settled, not discarded.
        a.resync(2, SimTime::from_millis(20));
        assert_eq!(a.warm(), 2);
        let billed = a.warm_device_us();
        assert!(billed >= before_warm as f64 * 10_000.0 - 1.0);
        // Bounds still hold.
        a.resync(0, SimTime::from_millis(21));
        assert_eq!(a.warm(), cfg.min_devices);
        a.resync(99, SimTime::from_millis(22));
        assert_eq!(a.warm(), cfg.max_devices);
    }

    #[test]
    fn autoscaler_accrues_cost() {
        let mut a = Autoscaler::new(AutoscaleConfig::default());
        a.evaluate(SimTime::from_millis(10), 0, 0);
        let c1 = a.warm_device_us();
        a.evaluate(SimTime::from_millis(20), 0, 0);
        assert!(a.warm_device_us() > c1);
        // 1 device x 10 ms = 10_000 device-us per window.
        assert!((a.warm_device_us() - 20_000.0).abs() < 1.0);
    }
}

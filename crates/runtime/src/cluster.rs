//! The event-driven cluster: control plane + data plane on the simulated
//! data center.
//!
//! [`Cluster::run`] executes a [`Job`] under a [`RuntimeConfig`] on a
//! [`Topology`], pricing every control message, future resolution, data
//! transfer, spill, cold start, and re-execution, and returns
//! [`JobStats`].
//!
//! ## Execution model
//!
//! Tasks move through `Blocked -> Ready -> Dispatched -> Running ->
//! Finished`. The centralized scheduler (initially resident on the first
//! server, like Ray's head node) learns of readiness via control
//! messages, places tasks with the configured policy, and dispatches
//! them to the target node's raylet. At the raylet, each input edge is resolved with
//! the configured protocol (pull or push, routed per Gen-1 or Gen-2);
//! the task starts when its inputs have arrived and an execution slot is
//! free, and finishes after its backend-specific compute time. Outputs
//! land in the caching layer (or durable storage, per deployment), which
//! may trigger spills to disaggregated memory.
//!
//! ## Failure handling
//!
//! Injected node failures abort resident tasks and drop the node's
//! cached objects. Losses are detected lazily when a consumer tries to
//! resolve a missing input (plus eagerly for job outputs), and repaired
//! per the configured [`FtMode`]: lineage re-execution, replication
//! (loss masked by surviving copies), or erasure coding (loss masked
//! while at least `k` shards survive).
//!
//! The control plane itself is re-electable: when the scheduler's node
//! dies, readiness notifications park until a surviving server wins a
//! deterministic election (after `RuntimeConfig::election_delay`) and
//! reconstructs placement, gang, autoscaler, and ownership state by
//! querying every surviving raylet — each query a priced round trip, so
//! failover cost shows up in traces and stats. Control messages always
//! follow the *currently elected* scheduler. When capacity is lost
//! permanently (no recovery scheduled, nothing procurable), affected
//! tasks surface clean `TaskAbandoned`/`Stalled` errors instead of
//! hanging or panicking.

use std::collections::{HashMap, HashSet};

use skadi_dcsim::engine::EventQueue;
use skadi_dcsim::network::{LinkParams, Network};
use skadi_dcsim::resources::NodeResources;
use skadi_dcsim::rng::DetRng;
use skadi_dcsim::span::{Category, SpanId, Tracer};
use skadi_dcsim::time::{SimDuration, SimTime};
use skadi_dcsim::topology::{AccelKind, NodeClass, NodeId, NodeKind, Topology};
use skadi_dcsim::trace::Metrics;
use skadi_ir::Backend;
use skadi_ownership::resolve::{resolve_traced, ResolveScenario, ResolveSpanCtx};
use skadi_ownership::table::{DeviceHandle, DeviceSlot, OwnershipTable};
use skadi_store::ec::EcConfig;
use skadi_store::object::{ObjectId, ObjectIdGen};
use skadi_store::placement::{CachingLayer, SpillEvent};
use skadi_store::policy::EvictionPolicy;
use skadi_store::spill::{SpillPolicy, SpillTarget};

use crate::config::{Deployment, FtMode, RuntimeConfig};
use crate::error::RuntimeError;
use crate::executor::{ReadyTask, TaskExecutor};
use crate::failure::FailurePlan;
use crate::job::{Job, JobStats};
use crate::lineage::LineageLog;
use crate::scheduler::{
    Autoscaler, GangTracker, NodeFacts, PlacementPolicy, Placer, ScaleDecision,
};
use crate::task::{ActorId, TaskId, TaskRecord, TaskState};

/// Simulation events. Task events carry the task's epoch so events from
/// a superseded attempt are dropped on delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The scheduler learned the task is ready.
    Ready(TaskId, u32),
    /// The dispatch reached the target raylet.
    Arrive(TaskId, u32),
    /// Inputs are local; try to claim a slot and start.
    TryStart(TaskId, u32),
    /// The task's compute completed.
    Finish(TaskId, u32),
    /// A node dies.
    Fail(NodeId),
    /// A node rejoins (empty).
    Recover(NodeId),
    /// Autoscaler tick.
    Autoscale,
    /// Scheduler election fires (the failover delay elapsed).
    Elect,
}

/// Work-stealing bound: how many times one task attempt may be pulled
/// to a different node before it simply waits for a slot.
const MAX_STEALS_PER_ATTEMPT: u32 = 3;

/// Serialized size of one state row in a failover re-report.
const ROW_REPORT_BYTES: u64 = 48;

/// Rows per message in a batched failover re-report.
const ROWS_PER_REPORT_MSG: u64 = 128;

/// Per-object erasure-coding placement.
#[derive(Debug, Clone)]
struct EcPlacement {
    shard_nodes: Vec<NodeId>,
    size: u64,
    config: EcConfig,
}

/// Completion statistics for one job of a multi-job run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerJobStats {
    /// The job's name.
    pub name: String,
    /// When the job was submitted.
    pub arrival: SimTime,
    /// Submission-to-last-task-finish time.
    pub completion: SimDuration,
}

/// Inputs staged for one dispatched task: the producing task and its
/// shared (refcounted, never copied) payload bytes.
type StagedInputs = Vec<(TaskId, std::rc::Rc<Vec<u8>>)>;

/// The simulated cluster.
pub struct Cluster {
    topo: Topology,
    cfg: RuntimeConfig,
    net: Network,
    res: NodeResources,
    cache: CachingLayer,
    own: OwnershipTable,
    idgen: ObjectIdGen,
    _rng: DetRng,

    tasks: HashMap<TaskId, TaskRecord>,
    consumers: HashMap<TaskId, Vec<TaskId>>,
    epochs: HashMap<TaskId, u32>,
    object_of: HashMap<TaskId, ObjectId>,
    value_ready: HashMap<TaskId, SimTime>,
    durable_ready: HashMap<TaskId, SimTime>,
    ec_placements: HashMap<TaskId, EcPlacement>,

    placer: Placer,
    gangs: GangTracker,
    lineage: LineageLog,
    metrics: Metrics,
    tracer: Tracer,
    job_root: SpanId,
    task_span: HashMap<TaskId, SpanId>,
    input_ready_at: HashMap<TaskId, SimTime>,
    failed_nodes: HashSet<NodeId>,
    node_load: HashMap<NodeId, u32>,
    /// Tasks not yet terminal (`Finished`/`Failed`). `job_done()` runs
    /// after every event, so at 10k nodes it must be an O(1) counter
    /// check, not a scan of the task table. Cross-checked against the
    /// table by `check_invariants`.
    unfinished: usize,
    /// Alive nodes indexed by backend class, kept sorted. Placement at
    /// scale reads these instead of filtering the full node set per
    /// decision; maintained on failure and recovery.
    alive_servers: Vec<NodeId>,
    alive_gpus: Vec<NodeId>,
    alive_fpgas: Vec<NodeId>,
    /// Steal count per task attempt (work-stealing policy); bounded so
    /// a dispatch cannot ping-pong between loaded nodes, cleared when
    /// the attempt resets.
    steals: HashMap<TaskId, u32>,
    scheduler_node: NodeId,
    /// False between the scheduler node's death and the election of a
    /// successor; readiness notifications park while the control plane
    /// is down.
    scheduler_alive: bool,
    system_pools: HashMap<String, Vec<NodeId>>,

    autoscaler: Option<Autoscaler>,
    device_available_at: HashMap<NodeId, SimTime>,

    /// The failure schedule of the run in progress (straggler windows are
    /// consulted at every task start).
    active_plan: FailurePlan,
    /// A fatal condition raised inside an event handler (e.g. a task
    /// exhausting its retry budget); surfaced as the run's error.
    fatal: Option<RuntimeError>,

    /// The installed data-plane executor, if any. `None` keeps the
    /// classic estimate-only behavior.
    executor: Option<Box<dyn TaskExecutor>>,
    /// Real payload bytes of finished tasks, keyed by task ID (the
    /// modeled object-store contents; see [`PayloadStore`]). Entries are
    /// dropped when lineage resets the producer, so a re-execution
    /// recomputes — deterministically — rather than reading stale bytes.
    payloads: skadi_store::payload::PayloadStore,
    /// Inputs staged (shared, not copied) for a dispatched task when its
    /// availability check passed; consumed when the task finishes.
    staged_inputs: HashMap<TaskId, StagedInputs>,
    /// Results computed ahead of their `Finish` delivery by a batched
    /// `execute_ready` call (every task completing at one simulated
    /// instant executes together). Consumed when each task's own finish
    /// commits; invalidated if the task resets first.
    exec_results: HashMap<TaskId, Result<Vec<u8>, String>>,
    /// Measured output sizes (real encoded bytes) per executed task.
    measured_bytes: std::collections::BTreeMap<TaskId, u64>,

    /// Where each actor lives (pinned at first placement).
    actor_node: HashMap<ActorId, NodeId>,
    /// Until when each actor is busy executing a method.
    actor_busy_until: HashMap<ActorId, SimTime>,

    busy_us_by_node: HashMap<NodeId, f64>,
    durable_trips: u64,
    retries: u64,
    abandoned: u64,
    finished: u64,
    stall_total: SimDuration,
    compute_total: SimDuration,
    serverless_task_cost: f64,
}

impl Cluster {
    /// Builds a cluster over `topo` with the given configuration and
    /// default link parameters.
    pub fn new(topo: &Topology, cfg: RuntimeConfig) -> Self {
        Cluster::with_links(topo, cfg, LinkParams::default())
    }

    /// Builds a cluster with explicit link parameters.
    pub fn with_links(topo: &Topology, cfg: RuntimeConfig, links: LinkParams) -> Self {
        let spill_policy = SpillPolicy {
            // Gen-2 extends the caching layer to disaggregated memory;
            // Gen-1 and the baselines spill straight to durable storage.
            use_disagg_memory: matches!(cfg.generation, crate::config::Generation::Gen2)
                && cfg.deployment == Deployment::DistributedRuntime,
            allow_drop_for_lineage: false,
        };
        let scheduler_node = topo
            .servers()
            .first()
            .copied()
            .unwrap_or(skadi_dcsim::topology::NodeId(0));
        let seed = cfg.seed;
        let placement = cfg.placement;
        let autoscaler = cfg.autoscale.map(Autoscaler::new);
        let mut alive_servers = topo.servers();
        alive_servers.sort();
        let mut alive_gpus = topo.accel_devices(Some(AccelKind::Gpu));
        alive_gpus.sort();
        let mut alive_fpgas = topo.accel_devices(Some(AccelKind::Fpga));
        alive_fpgas.sort();
        Cluster {
            net: Network::new(topo, links),
            res: NodeResources::new(topo),
            cache: CachingLayer::new(topo, EvictionPolicy::Lru, spill_policy),
            own: OwnershipTable::new(),
            idgen: ObjectIdGen::new(),
            _rng: DetRng::seed(seed),
            tasks: HashMap::new(),
            consumers: HashMap::new(),
            epochs: HashMap::new(),
            object_of: HashMap::new(),
            value_ready: HashMap::new(),
            durable_ready: HashMap::new(),
            ec_placements: HashMap::new(),
            placer: Placer::new(placement),
            gangs: GangTracker::new(),
            lineage: LineageLog::new(),
            metrics: Metrics::new(),
            tracer: Tracer::new(cfg.tracing),
            job_root: SpanId::NONE,
            task_span: HashMap::new(),
            input_ready_at: HashMap::new(),
            failed_nodes: HashSet::new(),
            node_load: HashMap::new(),
            unfinished: 0,
            alive_servers,
            alive_gpus,
            alive_fpgas,
            steals: HashMap::new(),
            scheduler_node,
            scheduler_alive: true,
            system_pools: HashMap::new(),
            autoscaler,
            device_available_at: HashMap::new(),
            active_plan: FailurePlan::none(),
            fatal: None,
            executor: None,
            payloads: skadi_store::payload::PayloadStore::new(),
            staged_inputs: HashMap::new(),
            exec_results: HashMap::new(),
            measured_bytes: std::collections::BTreeMap::new(),
            actor_node: HashMap::new(),
            actor_busy_until: HashMap::new(),
            busy_us_by_node: HashMap::new(),
            durable_trips: 0,
            retries: 0,
            abandoned: 0,
            finished: 0,
            stall_total: SimDuration::ZERO,
            compute_total: SimDuration::ZERO,
            serverless_task_cost: 0.0,
            topo: topo.clone(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Installs a data-plane executor: every subsequent task completion
    /// also runs the task's real computation on its producers' stored
    /// payload bytes, and measured output sizes replace the specs'
    /// estimates in storage, transfer, and inlining decisions.
    pub fn set_executor(&mut self, exec: Box<dyn TaskExecutor>) {
        self.executor = Some(exec);
    }

    /// Removes the installed executor (estimate-only runs again).
    pub fn clear_executor(&mut self) {
        self.executor = None;
    }

    /// A finished task's stored payload bytes from the last run (only
    /// present when an executor was installed).
    pub fn task_payload(&self, t: TaskId) -> Option<&[u8]> {
        self.payloads.bytes(t.0)
    }

    /// A task's measured output size from the last run, if it executed
    /// through the data plane.
    pub fn measured_output_bytes(&self, t: TaskId) -> Option<u64> {
        self.measured_bytes.get(&t).copied()
    }

    /// When a task started executing in the last run (experiment hook,
    /// e.g. for measuring gang start skew).
    pub fn task_started_at(&self, t: TaskId) -> Option<SimTime> {
        self.tasks.get(&t).and_then(|r| r.started_at)
    }

    /// When a task finished in the last run.
    pub fn task_finished_at(&self, t: TaskId) -> Option<SimTime> {
        self.tasks.get(&t).and_then(|r| r.finished_at)
    }

    /// Runs a job to completion (no failures).
    pub fn run(&mut self, job: &Job) -> Result<JobStats, RuntimeError> {
        self.run_with_failures(job, &FailurePlan::none())
    }

    /// Runs several jobs sharing this cluster, each submitted at its own
    /// arrival time — the consolidation scenario the paper's utilization
    /// argument is about. Returns per-job completion times plus combined
    /// stats.
    pub fn run_jobs(
        &mut self,
        jobs: &[(Job, SimTime)],
        failures: &FailurePlan,
    ) -> Result<(Vec<PerJobStats>, JobStats), RuntimeError> {
        // Renumber every job into one combined ID space, remembering each
        // job's arrival and member tasks.
        let mut combined: Vec<crate::task::TaskSpec> = Vec::new();
        let mut membership: Vec<(String, SimTime, Vec<TaskId>)> = Vec::new();
        let mut releases: HashMap<TaskId, SimTime> = HashMap::new();
        let mut offset = 0u64;
        for (job, arrival) in jobs {
            let mut members = Vec::new();
            for spec in job.tasks.values() {
                let mut s = spec.clone();
                s.id = TaskId(s.id.0 + offset);
                s.inputs = s
                    .inputs
                    .iter()
                    .map(|(t, b)| (TaskId(t.0 + offset), *b))
                    .collect();
                if s.inputs.is_empty() {
                    releases.insert(s.id, *arrival);
                }
                members.push(s.id);
                combined.push(s);
            }
            membership.push((job.name.clone(), *arrival, members));
            offset += job.tasks.keys().map(|t| t.0 + 1).max().unwrap_or(0);
        }
        let combined = Job::new("combined", combined)?;
        let mut stats = self.run_released(&combined, failures, &releases)?;
        let per_job: Vec<PerJobStats> = membership
            .into_iter()
            .map(|(name, arrival, members)| {
                let done = members
                    .iter()
                    .filter_map(|t| self.tasks.get(t).and_then(|r| r.finished_at))
                    .max()
                    .unwrap_or(arrival);
                PerJobStats {
                    name,
                    arrival,
                    completion: done.saturating_since(arrival),
                }
            })
            .collect();
        // Each job's submission-to-completion latency feeds the run's
        // `query_latency` histogram, so consolidation and chaos scenarios
        // record a latency *distribution* (p50/p99), not just a makespan.
        for j in &per_job {
            stats.metrics.observe("query_latency", j.completion);
        }
        Ok((per_job, stats))
    }

    /// Runs a job under a failure schedule. The job's makespan is
    /// recorded into the `query_latency` histogram of the returned stats.
    pub fn run_with_failures(
        &mut self,
        job: &Job,
        failures: &FailurePlan,
    ) -> Result<JobStats, RuntimeError> {
        let mut stats = self.run_released(job, failures, &HashMap::new())?;
        stats.metrics.observe("query_latency", stats.makespan);
        Ok(stats)
    }

    fn run_released(
        &mut self,
        job: &Job,
        failures: &FailurePlan,
        releases: &HashMap<TaskId, SimTime>,
    ) -> Result<JobStats, RuntimeError> {
        let mut queue: EventQueue<Event> = EventQueue::new();
        self.init_job(job, &mut queue, releases)?;
        self.active_plan = failures.clone();
        for f in failures.failures() {
            queue.schedule_at(f.at, Event::Fail(f.node));
            if let Some(r) = f.recovers_at {
                queue.schedule_at(r, Event::Recover(f.node));
            }
        }
        if let Some(a) = &self.autoscaler {
            queue.schedule_after(a.interval(), Event::Autoscale);
        }

        let budget: u64 = 1_000_000 + job.len() as u64 * 10_000;
        let mut processed: u64 = 0;
        while let Some((now, ev)) = queue.pop() {
            processed += 1;
            if processed > budget {
                return Err(RuntimeError::Livelock { events: processed });
            }
            self.handle(now, ev, &mut queue);
            if let Some(err) = self.fatal.take() {
                return Err(err);
            }
            // A drained queue with unfinished tasks (e.g. permanent loss
            // of every server leaves the cluster headless) surfaces as a
            // clean `Stalled` below; break before the invariant checker
            // reports the same condition as a violation.
            if queue.is_empty() && !self.job_done() {
                break;
            }
            if self.cfg.debug_invariants {
                if let Err(msg) = self.check_invariants(&queue) {
                    return Err(RuntimeError::InvariantViolation(format!(
                        "after {ev:?} at {now}: {msg}"
                    )));
                }
            }
            // Stop pumping pure-timer events once the job is done.
            if self.job_done() && !queue.is_empty() {
                let only_timers = {
                    // Drain remaining failure/autoscale ticks cheaply.
                    true
                };
                if only_timers {
                    break;
                }
            }
        }
        // The queue drained (or only timers remained): every task must be
        // terminal, otherwise the run would silently report partial
        // results while tasks sit stranded.
        if !self.job_done() {
            let finished = self
                .tasks
                .values()
                .filter(|t| t.state == TaskState::Finished)
                .count() as u64;
            let stuck = self.tasks.len() as u64
                - finished
                - self
                    .tasks
                    .values()
                    .filter(|t| t.state == TaskState::Failed)
                    .count() as u64;
            return Err(RuntimeError::Stalled { finished, stuck });
        }

        let makespan = self
            .tasks
            .values()
            .filter_map(|t| t.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO);

        self.finished = self
            .tasks
            .values()
            .filter(|t| t.state == TaskState::Finished)
            .count() as u64;
        // Utilization: busy slot-time over available slot-time.
        let total_slots: f64 = self
            .topo
            .nodes()
            .iter()
            .map(|n| self.res.total_slots(n.id) as f64)
            .sum();
        let busy_us: f64 = self.busy_us_by_node.values().sum();
        let utilization = if makespan.is_zero() || total_slots == 0.0 {
            0.0
        } else {
            (busy_us / (total_slots * makespan.as_micros_f64())).clamp(0.0, 1.0)
        };
        // Fold the caching layer's tier counters into the job's sink and
        // seal the trace: the job root covers every recorded span.
        self.metrics.merge(&self.cache.take_metrics());
        self.tracer.close(self.job_root, self.tracer.latest_end());
        self.job_root = SpanId::NONE;
        let trace = std::mem::replace(&mut self.tracer, Tracer::new(self.cfg.tracing)).finish();
        Ok(JobStats {
            makespan,
            finished: self.finished,
            retries: self.retries,
            abandoned: self.abandoned,
            net: *self.net.stats(),
            durable_trips: self.durable_trips,
            stall_total: self.stall_total,
            compute_total: self.compute_total,
            cost_units: self.cost_units(makespan),
            utilization,
            spills: self.cache.spill_stats().0,
            spill_bytes: self.cache.spill_stats().1,
            metrics: std::mem::take(&mut self.metrics),
            trace,
            measured_output_bytes: self.measured_bytes.clone(),
        })
    }

    fn init_job(
        &mut self,
        job: &Job,
        queue: &mut EventQueue<Event>,
        releases: &HashMap<TaskId, SimTime>,
    ) -> Result<(), RuntimeError> {
        self.tasks.clear();
        self.consumers.clear();
        self.epochs.clear();
        self.task_span.clear();
        self.input_ready_at.clear();
        // Output bookkeeping and scheduling latches are per-run state; a
        // second run on the same cluster must not see the previous job's
        // objects, gang progress, or actor pins.
        self.object_of.clear();
        self.value_ready.clear();
        self.durable_ready.clear();
        self.ec_placements.clear();
        self.payloads.clear();
        self.staged_inputs.clear();
        self.exec_results.clear();
        self.measured_bytes.clear();
        self.gangs = GangTracker::new();
        self.actor_node.clear();
        self.actor_busy_until.clear();
        self.fatal = None;
        self.active_plan = FailurePlan::none();
        // If the previous run left the elected scheduler on a node that
        // is still down, re-seat it on a surviving server before any
        // control message is priced against a corpse.
        self.scheduler_alive = true;
        if self.failed_nodes.contains(&self.scheduler_node) {
            match self
                .topo
                .servers()
                .into_iter()
                .find(|n| !self.failed_nodes.contains(n))
            {
                Some(w) => self.scheduler_node = w,
                None => self.scheduler_alive = false,
            }
        }
        self.tracer = Tracer::new(self.cfg.tracing);
        self.job_root = self
            .tracer
            .open("job", "job", Category::Job, None, SimTime::ZERO);
        self.tracer.attr(self.job_root, "name", &job.name);
        self.build_system_pools(job);
        for spec in job.tasks.values() {
            self.lineage.record(spec.clone());
            for dep in spec.inputs.keys() {
                self.consumers.entry(*dep).or_default().push(spec.id);
            }
            if let Some(g) = spec.gang {
                if self.cfg.gang_scheduling {
                    self.gangs.declare(g, 1);
                }
            }
            self.epochs.insert(spec.id, 0);
            self.tasks.insert(spec.id, TaskRecord::new(spec.clone()));
        }
        // Every task starts non-terminal (Ready or Blocked).
        self.unfinished = self.tasks.len();
        self.steals.clear();
        for c in self.consumers.values_mut() {
            c.sort();
        }
        // Kick off source tasks: the driver tells the scheduler.
        let mut ready: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|t| t.state == TaskState::Ready)
            .map(|t| t.spec.id)
            .collect();
        // HashMap iteration order is nondeterministic; root-task order
        // decides event FIFO ties, so sort.
        ready.sort();
        if ready.is_empty() && !job.is_empty() {
            return Err(RuntimeError::Internal("no root tasks".to_string()));
        }
        for t in ready {
            let at = releases.get(&t).copied().unwrap_or(SimTime::ZERO);
            queue.schedule_at(at, Event::Ready(t, 0));
        }
        Ok(())
    }

    /// Serverful deployments split nodes into per-system silos.
    fn build_system_pools(&mut self, job: &Job) {
        self.system_pools.clear();
        if self.cfg.deployment != Deployment::Serverful {
            return;
        }
        let mut systems: Vec<String> = job
            .tasks
            .values()
            .map(|t| t.system.clone())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        systems.sort();
        if systems.is_empty() {
            return;
        }
        let servers = self.topo.servers();
        let devices = self.topo.accel_devices(None);
        for (i, node) in servers.iter().chain(devices.iter()).enumerate() {
            let sys = &systems[i % systems.len()];
            self.system_pools
                .entry(sys.clone())
                .or_default()
                .push(*node);
        }
    }

    fn job_done(&self) -> bool {
        self.unfinished == 0
    }

    /// Adjusts the `unfinished` counter for a task state transition.
    /// Every site that writes `TaskRecord::state` must route the change
    /// through here (checked by `check_invariants`).
    fn note_transition(&mut self, from: TaskState, to: TaskState) {
        let terminal = |s: TaskState| matches!(s, TaskState::Finished | TaskState::Failed);
        match (terminal(from), terminal(to)) {
            (false, true) => self.unfinished -= 1,
            (true, false) => self.unfinished += 1,
            _ => {}
        }
    }

    /// Maintains the sorted alive-by-class indexes on node failure and
    /// recovery. Blades and durable storage are never placement targets,
    /// so only servers and accelerators are indexed.
    fn index_node_alive(&mut self, node: NodeId, alive: bool) {
        let list = match self.topo.node(node).kind {
            NodeKind::Server(_) => &mut self.alive_servers,
            NodeKind::AccelDevice(AccelKind::Gpu, _) => &mut self.alive_gpus,
            NodeKind::AccelDevice(AccelKind::Fpga, _) => &mut self.alive_fpgas,
            _ => return,
        };
        match (list.binary_search(&node), alive) {
            (Err(i), true) => list.insert(i, node),
            (Ok(i), false) => {
                list.remove(i);
            }
            _ => {}
        }
    }

    fn epoch(&self, t: TaskId) -> u32 {
        self.epochs.get(&t).copied().unwrap_or(0)
    }

    // ---- tracing ---------------------------------------------------------

    /// The task's umbrella span, opened on first use. Carries the `task`
    /// and `deps` attributes the critical-path walker keys on.
    fn ensure_task_span(&mut self, now: SimTime, t: TaskId) -> SpanId {
        if !self.tracer.enabled() {
            return SpanId::NONE;
        }
        if let Some(&s) = self.task_span.get(&t) {
            return s;
        }
        let spec = &self.tasks[&t].spec;
        let name = spec.op.clone();
        let task = format!("t{}", t.0);
        let deps: Vec<String> = spec.inputs.keys().map(|p| format!("t{}", p.0)).collect();
        let deps = deps.join(",");
        let backend = format!("{:?}", spec.backend);
        let attempt = self.epoch(t).to_string();
        let s = self.tracer.span(
            &name,
            "tasks",
            Category::Task,
            Some(self.job_root),
            now,
            now,
            &[
                ("task", &task),
                ("deps", &deps),
                ("backend", &backend),
                ("attempt", &attempt),
            ],
        );
        self.task_span.insert(t, s);
        s
    }

    /// Device-pool utilization sample: busy accel devices over all accel
    /// devices, recorded into a 1 ms-bucketed gauge at task start/finish
    /// edges (the only instants it can change).
    fn record_device_gauge(&mut self, now: SimTime) {
        let devices = self.topo.accel_devices(None);
        if devices.is_empty() {
            return;
        }
        let busy = devices
            .iter()
            .filter(|d| self.node_load.get(d).copied().unwrap_or(0) > 0)
            .count();
        self.metrics.gauge_record(
            "device.util",
            SimDuration::from_millis(1),
            now,
            busy as f64 / devices.len() as f64,
        );
    }

    fn handle(&mut self, now: SimTime, ev: Event, queue: &mut EventQueue<Event>) {
        match ev {
            Event::Ready(t, e) if e == self.epoch(t) => self.on_ready(now, t, queue),
            Event::Arrive(t, e) if e == self.epoch(t) => self.on_arrive(now, t, queue),
            Event::TryStart(t, e) if e == self.epoch(t) => self.on_try_start(now, t, queue),
            Event::Finish(t, e) if e == self.epoch(t) => self.on_finish(now, t, queue),
            Event::Fail(n) => self.on_fail(now, n, queue),
            Event::Recover(n) => {
                self.failed_nodes.remove(&n);
                self.index_node_alive(n, true);
            }
            Event::Autoscale => self.on_autoscale(now, queue),
            Event::Elect => self.on_elect(now, queue),
            // Stale task event from a superseded attempt.
            _ => {}
        }
    }

    // ---- scheduling -----------------------------------------------------

    fn eligible_nodes(&self, t: TaskId) -> (Vec<NodeId>, bool) {
        let spec = &self.tasks[&t].spec;
        // An already-placed actor's methods must run on its node.
        if let Some(actor) = spec.actor {
            if let Some(node) = self.actor_node.get(&actor) {
                if !self.failed_nodes.contains(node) {
                    return (vec![*node], false);
                }
            }
        }
        let alive = |n: &NodeId| !self.failed_nodes.contains(n);
        let warm = |n: &NodeId| match self.device_available_at.get(n) {
            Some(_) => true, // Provision time is respected at dispatch.
            None => self.autoscaler.is_none(),
        };
        let primary: Vec<NodeId> = if self.cfg.deployment == Deployment::Serverful {
            // Serverful silos are small, fixed pools; filter in place.
            let pool = self
                .system_pools
                .get(&spec.system)
                .cloned()
                .unwrap_or_default();
            let mut p: Vec<NodeId> = pool
                .iter()
                .copied()
                .filter(alive)
                .filter(|n| match (spec.backend, self.topo.node(*n).kind) {
                    (Backend::Cpu, NodeKind::Server(_)) => true,
                    (Backend::Gpu, NodeKind::AccelDevice(AccelKind::Gpu, _)) => warm(n),
                    (Backend::Fpga, NodeKind::AccelDevice(AccelKind::Fpga, _)) => warm(n),
                    _ => false,
                })
                .collect();
            p.sort();
            p
        } else {
            // At scale, read the maintained alive-by-class index instead
            // of filtering every node in the topology per decision. The
            // lists are already sorted.
            match spec.backend {
                Backend::Cpu => self.alive_servers.clone(),
                Backend::Gpu => self.alive_gpus.iter().copied().filter(warm).collect(),
                Backend::Fpga => self.alive_fpgas.iter().copied().filter(warm).collect(),
            }
        };
        if !primary.is_empty() {
            return (primary, false);
        }
        // With an autoscaler, cold devices are procurable: accel tasks
        // wait for the pool to warm instead of degrading to CPU.
        if spec.backend != Backend::Cpu && self.autoscaler.is_some() {
            let procurable = match spec.backend {
                Backend::Gpu => !self.topo.accel_devices(Some(AccelKind::Gpu)).is_empty(),
                Backend::Fpga => !self.topo.accel_devices(Some(AccelKind::Fpga)).is_empty(),
                Backend::Cpu => false,
            };
            if procurable {
                return (Vec::new(), false);
            }
        }
        // CPU fallback: accel task orchestrated from a plain server.
        if spec.backend != Backend::Cpu && self.cfg.cpu_fallback_slowdown.is_some() {
            if self.cfg.deployment == Deployment::Serverful {
                let pool = self
                    .system_pools
                    .get(&spec.system)
                    .cloned()
                    .unwrap_or_default();
                let mut servers: Vec<NodeId> = pool
                    .iter()
                    .copied()
                    .filter(alive)
                    .filter(|n| self.topo.node(*n).kind.class() == NodeClass::Server)
                    .collect();
                servers.sort();
                return (servers, true);
            }
            return (self.alive_servers.clone(), true);
        }
        (Vec::new(), false)
    }

    fn on_ready(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        {
            let rec = self.tasks.get_mut(&t).expect("known task");
            if rec.state != TaskState::Ready && rec.state != TaskState::Blocked {
                return;
            }
            rec.state = TaskState::Ready;
            rec.ready_at = Some(now);
        }
        self.ensure_task_span(now, t);
        // Control plane down: the notification is parked (the task stays
        // `Ready`) and re-driven once a new scheduler is elected and has
        // reconstructed its state.
        if !self.scheduler_alive {
            return;
        }
        // Gang gating: hold members until the whole gang is ready.
        let gang = self.tasks[&t].spec.gang;
        if self.cfg.gang_scheduling {
            if let Some(g) = gang {
                match self.gangs.member_ready(g, t) {
                    Ok(Some(members)) => {
                        for m in members {
                            self.place(now, m, queue);
                        }
                        return;
                    }
                    Ok(None) => return,
                    Err(undeclared) => {
                        if self.fatal.is_none() {
                            self.fatal = Some(RuntimeError::UndeclaredGang(undeclared.0));
                        }
                        return;
                    }
                }
            }
        }
        self.place(now, t, queue);
    }

    fn place(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        let (eligible, fallback) = self.eligible_nodes(t);
        if eligible.is_empty() {
            self.no_eligible_node(now, t, queue);
            return;
        }
        // Gather placement facts. The locality map is inverted once per
        // decision — O(inputs x replicas) — so the facts closure is an
        // O(1) lookup per candidate instead of re-walking every input's
        // location list for every node the policy inspects.
        let inputs: Vec<(TaskId, u64)> = self.tasks[&t]
            .spec
            .inputs
            .iter()
            .map(|(p, b)| (*p, *b))
            .collect();
        let mut local_bytes: HashMap<NodeId, u64> = HashMap::new();
        for (p, b) in &inputs {
            if let Some(o) = self.object_of.get(p) {
                for n in self.cache.locations(*o) {
                    *local_bytes.entry(*n).or_insert(0) += *b;
                }
            }
        }
        let node_load = &self.node_load;
        let res = &self.res;
        let placed = self.placer.place(&eligible, |n| NodeFacts {
            local_input_bytes: local_bytes.get(&n).copied().unwrap_or(0),
            load: node_load.get(&n).copied().unwrap_or(0),
            free_slots: res.free_slots(n),
        });
        let Some(node) = placed else {
            // Unreachable with a non-empty eligible set today, but a
            // placement policy declining to choose must degrade like an
            // empty set — never panic mid-simulation.
            self.no_eligible_node(now, t, queue);
            return;
        };

        {
            let rec = self.tasks.get_mut(&t).expect("known");
            rec.state = TaskState::Dispatched;
            rec.node = Some(node);
        }
        if let Some(actor) = self.tasks[&t].spec.actor {
            self.actor_node.entry(actor).or_insert(node);
        }
        *self.node_load.entry(node).or_insert(0) += 1;
        if fallback {
            self.metrics.bump("cpu_fallback");
        }
        // Dispatch: scheduler raylet -> target raylet control message.
        let route = self.cfg.generation.route_policy();
        let depart = now + route.endpoint_overhead(&self.net, self.scheduler_node);
        let arrive = self.net.control(depart, self.scheduler_node, node)
            + route.endpoint_overhead(&self.net, node);
        // Respect autoscaler provision delays.
        let arrive = match self.device_available_at.get(&node) {
            Some(at) => arrive.max(*at),
            None => arrive,
        };
        if self.tracer.enabled() {
            let parent = self.ensure_task_span(now, t);
            let chosen = format!("node{}", node.0);
            let candidates = eligible.len().to_string();
            let considered: Vec<String> = eligible
                .iter()
                .take(8)
                .map(|n| format!("node{}", n.0))
                .collect();
            let considered = considered.join(",");
            let policy = format!("{:?}", self.cfg.placement);
            self.tracer.span(
                "place",
                "scheduler",
                Category::Placement,
                Some(parent),
                now,
                now,
                &[
                    ("chosen", &chosen),
                    ("candidates", &candidates),
                    ("considered", &considered),
                    ("policy", &policy),
                    ("fallback", if fallback { "true" } else { "false" }),
                ],
            );
            self.tracer.span(
                "dispatch",
                "net",
                Category::Dispatch,
                Some(parent),
                now,
                arrive,
                &[("to", &chosen)],
            );
            self.tracer.cover(parent, arrive);
        }
        let e = self.epoch(t);
        queue.schedule_at(arrive, Event::Arrive(t, e));
    }

    /// No node can currently run `t`. Park it when capacity is due back
    /// (an autoscaler can warm a device, or a candidate node is scheduled
    /// to recover); otherwise the loss is permanent and the task fails
    /// cleanly — under a recovery-capable FT mode that is fatal for the
    /// run, never a silent partial result (and never a panic).
    fn no_eligible_node(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        let spec = &self.tasks[&t].spec;
        let mut candidates: Vec<NodeId> = match spec.backend {
            Backend::Cpu => self.topo.servers(),
            Backend::Gpu => self.topo.accel_devices(Some(AccelKind::Gpu)),
            Backend::Fpga => self.topo.accel_devices(Some(AccelKind::Fpga)),
        };
        let any_alive = candidates.iter().any(|n| !self.failed_nodes.contains(n));
        if any_alive {
            if let Some(scaler) = &self.autoscaler {
                // Wait for the autoscaler to warm a device.
                let interval = scaler.interval();
                let e = self.epoch(t);
                queue.schedule_at(now + interval, Event::Ready(t, e));
                return;
            }
        }
        // Accel tasks with CPU fallback also come back when a server does.
        if spec.backend != Backend::Cpu && self.cfg.cpu_fallback_slowdown.is_some() {
            candidates.extend(self.topo.servers());
        }
        if let Some(at) = self.active_plan.next_recovery_of(&candidates, now) {
            // Every candidate is down but one is scheduled to rejoin:
            // retry right after it does (same-instant FIFO delivers the
            // earlier-scheduled `Recover` before this `Ready`).
            self.metrics.bump("placement_waits");
            let e = self.epoch(t);
            queue.schedule_at(at, Event::Ready(t, e));
            return;
        }
        // Permanent loss of every candidate.
        self.abandoned += 1;
        let prev = {
            let rec = self.tasks.get_mut(&t).expect("known");
            std::mem::replace(&mut rec.state, TaskState::Failed)
        };
        self.note_transition(prev, TaskState::Failed);
        if self.cfg.ft == FtMode::None {
            self.abandon_consumers(t);
            return;
        }
        if self.fatal.is_none() {
            self.fatal = Some(RuntimeError::TaskAbandoned(t));
        }
    }

    // ---- input resolution ------------------------------------------------

    /// True if the producer's output must bounce through durable storage
    /// on its way to this consumer.
    fn via_durable(&self, producer: TaskId, consumer: TaskId) -> bool {
        match self.cfg.deployment {
            Deployment::StatelessServerless => true,
            Deployment::Serverful => {
                self.tasks[&producer].spec.system != self.tasks[&consumer].spec.system
            }
            Deployment::DistributedRuntime => false,
        }
    }

    /// True if the producer's output is still obtainable.
    fn input_available(&self, producer: TaskId, consumer: TaskId) -> bool {
        if self.via_durable(producer, consumer) {
            return self.durable_ready.contains_key(&producer);
        }
        if let Some(p) = self.ec_placements.get(&producer) {
            return p.shard_nodes.len() >= p.config.data;
        }
        self.object_of
            .get(&producer)
            .map(|o| self.cache.contains(*o))
            .unwrap_or(false)
    }

    fn on_arrive(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        let rec = &self.tasks[&t];
        if rec.state != TaskState::Dispatched {
            return;
        }
        let node = rec.node.expect("dispatched task has a node");
        // Input sizes: the producer's measured payload when the data
        // plane executed it, the spec's estimate otherwise.
        let inputs: Vec<(TaskId, u64)> = rec
            .spec
            .inputs
            .iter()
            .map(|(p, b)| (*p, *b))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(p, b)| (p, self.payloads.size(p.0).unwrap_or(b)))
            .collect();

        // Detect lost inputs before fetching.
        let missing: Vec<TaskId> = inputs
            .iter()
            .map(|(p, _)| *p)
            .filter(|p| !self.input_available(*p, t))
            .collect();
        if !missing.is_empty() {
            self.recover_missing(now, t, &missing, queue);
            return;
        }

        // Stage the real input payloads now, while availability is
        // guaranteed: a producer reset between arrival and start must not
        // leave the running task without bytes. Staging shares buffers.
        if self.executor.is_some() {
            let staged: Vec<(TaskId, std::rc::Rc<Vec<u8>>)> = inputs
                .iter()
                .filter_map(|(p, _)| self.payloads.get(p.0).map(|rc| (*p, rc)))
                .collect();
            if staged.len() != inputs.len() && self.fatal.is_none() {
                self.fatal = Some(RuntimeError::Internal(format!(
                    "data plane: task t{} arrived with available inputs but missing payloads",
                    t.0
                )));
                return;
            }
            self.staged_inputs.insert(t, staged);
        }

        let route = self.cfg.generation.route_policy();
        let umbrella = self.task_span.get(&t).copied().unwrap_or(SpanId::NONE);
        let comp = format!("node{}", node.0);
        let mut available = now;
        for (p, bytes) in inputs {
            let input = format!("t{}", p.0);
            let bytes_s = bytes.to_string();
            let t_in = if self.via_durable(p, t) {
                // Durable read: first-byte latency + stream.
                let write_done = self.durable_ready[&p];
                let durable = self
                    .topo
                    .durable_storage()
                    .expect("durable deployments need durable storage");
                let tr = self.net.transfer(now.max(write_done), durable, node, bytes);
                self.durable_trips += 1;
                self.metrics.bump("durable_reads");
                self.tracer.span(
                    "durable.read",
                    "net",
                    Category::Data,
                    Some(umbrella),
                    now.max(write_done),
                    tr.arrival,
                    &[("input", &input), ("bytes", &bytes_s)],
                );
                self.tracer.cover(umbrella, tr.arrival);
                tr.arrival
            } else if bytes <= self.cfg.pass_by_value_max && !self.ec_placements.contains_key(&p) {
                // Pass-by-value: the bytes rode inline in the dispatch
                // message; the input is available the moment the task
                // arrives at the raylet.
                self.metrics.bump("inlined_values");
                now
            } else if let Some(ec) = self.ec_placements.get(&p) {
                // Fetch k shards in parallel from surviving holders.
                let k = ec.config.data;
                let shard_bytes = (ec.size / k as u64).max(1);
                let holders: Vec<NodeId> = ec.shard_nodes.iter().take(k).copied().collect();
                let ready = self.value_ready.get(&p).copied().unwrap_or(now);
                let mut last = now;
                for h in holders {
                    let tr = self.net.transfer(now.max(ready), h, node, shard_bytes);
                    last = last.max(tr.arrival);
                }
                // Decode at ~10 GiB/s.
                let done = last
                    + SimDuration::from_secs_f64(ec.size as f64 / (10.0 * (1u64 << 30) as f64));
                let shards = k.to_string();
                self.tracer.span(
                    "ec.fetch",
                    "net",
                    Category::Data,
                    Some(umbrella),
                    now,
                    done,
                    &[("input", &input), ("bytes", &bytes_s), ("shards", &shards)],
                );
                self.tracer.cover(umbrella, done);
                done
            } else {
                // The caching layer tells us where the best copy is.
                let obj = self.object_of[&p];
                let loc = self
                    .cache
                    .get(obj, node, now)
                    .expect("availability checked above");
                self.tracer.span(
                    "tier.get",
                    "store",
                    Category::TierAccess,
                    Some(umbrella),
                    now,
                    now + loc.tier.access_latency(),
                    &[
                        ("input", &input),
                        ("tier", loc.tier.label()),
                        ("local", if loc.local { "true" } else { "false" }),
                    ],
                );
                self.tracer.cover(umbrella, now + loc.tier.access_latency());
                let producer_node = loc.node;
                // The owner row must exist for any live object; rows the
                // dead scheduler hosted were rehomed to the elected one.
                // Fabricating an owner would silently misprice the
                // resolution, so under `debug_invariants` it is an error.
                let owner = match self.own.owner_of(obj) {
                    Ok(o) => o,
                    Err(_) => {
                        if self.cfg.debug_invariants && self.fatal.is_none() {
                            self.fatal = Some(RuntimeError::InvariantViolation(format!(
                                "object {obj} of input t{} has no owner row",
                                p.0
                            )));
                        }
                        self.scheduler_node
                    }
                };
                let scenario = ResolveScenario {
                    owner,
                    producer: producer_node,
                    consumer: node,
                    bytes,
                    value_ready: self.value_ready.get(&p).copied().unwrap_or(now),
                    consumer_ready: now,
                };
                let ctx = ResolveSpanCtx {
                    parent: umbrella,
                    root: self.job_root,
                    component: &comp,
                    input: &input,
                };
                let out = resolve_traced(
                    self.cfg.resolution,
                    &mut self.net,
                    &scenario,
                    &route,
                    &mut self.tracer,
                    &ctx,
                );
                self.tracer.cover(umbrella, out.input_available);
                self.stall_total += out.stall;
                self.metrics.observe("stall", out.stall);
                // The fetched bytes now also live in the consumer's local
                // store (plasma semantics): later consumers read the
                // nearest copy instead of re-crossing the fabric.
                if !loc.local && self.cfg.cache_fetched_copies {
                    let size = self
                        .payloads
                        .size(p.0)
                        .unwrap_or(self.tasks[&p].spec.output_bytes)
                        .max(1);
                    if let Ok(report) = self.cache.put(obj, size, node, now) {
                        let _ = self.own.add_location(obj, node);
                        // A fetched copy can displace colder objects; those
                        // moves must be priced and the ownership table kept
                        // in step, same as producer-side spills.
                        let spilled = report.spilled;
                        self.sync_spills(now, &spilled);
                    }
                }
                out.input_available
            };
            available = available.max(t_in);
        }

        // Serverless cold start.
        if self.cfg.deployment == Deployment::StatelessServerless {
            let warm = available + self.cfg.cold_start;
            self.tracer.span(
                "coldstart",
                &comp,
                Category::ColdStart,
                Some(umbrella),
                available,
                warm,
                &[],
            );
            self.tracer.cover(umbrella, warm);
            available = warm;
            self.metrics.bump("cold_starts");
        }

        self.input_ready_at.insert(t, available);
        let e = self.epoch(t);
        queue.schedule_at(available, Event::TryStart(t, e));
    }

    fn recover_missing(
        &mut self,
        now: SimTime,
        consumer: TaskId,
        missing: &[TaskId],
        queue: &mut EventQueue<Event>,
    ) {
        if self.cfg.ft == FtMode::None {
            self.abandoned += 1;
            let (node, prev) = {
                let rec = self.tasks.get_mut(&consumer).expect("known");
                let node = rec.node;
                let prev = std::mem::replace(&mut rec.state, TaskState::Failed);
                (node, prev)
            };
            self.note_transition(prev, TaskState::Failed);
            if let Some(node) = node {
                if let Some(l) = self.node_load.get_mut(&node) {
                    *l = l.saturating_sub(1);
                }
            }
            self.abandon_consumers(consumer);
            return;
        }
        self.metrics.bump("lineage_recoveries");
        if self.tracer.enabled() {
            let task = format!("t{}", consumer.0);
            let lost = missing.len().to_string();
            self.tracer.span(
                "recovery",
                "own",
                Category::Recovery,
                Some(self.job_root),
                now,
                now,
                &[("task", &task), ("missing", &lost)],
            );
        }
        let _ = missing; // Re-derived inside reset_task.
                         // Reset the consumer: it re-blocks on the missing producers, and
                         // reset_task re-drives those producers transitively (the same
                         // closure the lineage log's recovery_plan computes).
        self.reset_task(consumer, queue, now);
    }

    /// Resets a task to run again: bumps its epoch, recomputes pending
    /// inputs from current availability, and re-enters the readiness
    /// machinery.
    fn reset_task(&mut self, t: TaskId, queue: &mut EventQueue<Event>, now: SimTime) {
        let e = self.epochs.entry(t).or_insert(0);
        *e += 1;
        let epoch = *e;
        // Seal the aborted attempt's span; the retry opens a fresh one.
        if let Some(s) = self.task_span.remove(&t) {
            self.tracer.attr(s, "aborted", "true");
            self.tracer.close(s, now);
        }
        self.input_ready_at.remove(&t);
        // Drop stale output bookkeeping. The ownership row goes with the
        // cached copies: the re-run registers the object afresh, and a
        // stale row would otherwise keep advertising holders that no
        // longer exist.
        if let Some(obj) = self.object_of.remove(&t) {
            let _ = self.cache.delete(obj);
            self.own.remove(obj);
        }
        self.value_ready.remove(&t);
        self.durable_ready.remove(&t);
        self.ec_placements.remove(&t);
        // The payload goes with the availability bookkeeping: the re-run
        // recomputes it (deterministically) from its own re-fetched
        // inputs instead of reading stale bytes.
        self.payloads.remove(t.0);
        self.measured_bytes.remove(&t);
        self.staged_inputs.remove(&t);
        // A pre-executed result from a same-instant batch is stale once
        // the attempt resets: the retry re-stages inputs and re-executes.
        self.exec_results.remove(&t);
        // The fresh attempt gets a fresh steal budget.
        self.steals.remove(&t);

        let (pending, node, state) = {
            let rec = self.tasks.get_mut(&t).expect("known task");
            let prev_node = rec.node.take();
            let prev_state = rec.state;
            rec.started_at = None;
            rec.finished_at = None;
            rec.attempts += 1;
            (0usize, prev_node, prev_state)
        };
        let _ = pending;
        if state == TaskState::Dispatched || state == TaskState::Running {
            if let Some(n) = node {
                if let Some(l) = self.node_load.get_mut(&n) {
                    *l = l.saturating_sub(1);
                }
                if state == TaskState::Running {
                    let _ = self.res.release_slot(n);
                }
            }
        }
        if let Some(g) = self.tasks[&t].spec.gang {
            if self.cfg.gang_scheduling {
                // Forget only this member's readiness. Wiping the whole
                // gang here would discard peers already gathered — after
                // the gang's first collective launch a lone re-executed
                // member could then never reach the release threshold.
                self.gangs.remove_waiting(g, t);
            }
        }
        // Retry budget: a task that keeps getting reset (e.g. its node
        // dies every attempt) must eventually surface a clean error
        // instead of looping until the event budget trips.
        if self.tasks[&t].attempts > self.cfg.max_attempts {
            let prev = {
                let rec = self.tasks.get_mut(&t).expect("known task");
                std::mem::replace(&mut rec.state, TaskState::Failed)
            };
            self.note_transition(prev, TaskState::Failed);
            self.abandoned += 1;
            if self.fatal.is_none() {
                self.fatal = Some(RuntimeError::TaskAbandoned(t));
            }
            return;
        }
        let missing: Vec<TaskId> = {
            let inputs: Vec<TaskId> = self.tasks[&t].spec.inputs.keys().copied().collect();
            inputs
                .into_iter()
                .filter(|p| !self.input_available(*p, t))
                .collect()
        };
        {
            let to = if missing.is_empty() {
                TaskState::Ready
            } else {
                TaskState::Blocked
            };
            let prev = {
                let rec = self.tasks.get_mut(&t).expect("known task");
                rec.pending_inputs = missing.len();
                std::mem::replace(&mut rec.state, to)
            };
            self.note_transition(prev, to);
            if to == TaskState::Ready {
                queue.schedule_at(now, Event::Ready(t, epoch));
            }
        }
        // Re-create missing inputs: a Blocked task is only woken by its
        // producers finishing, so the producers must be re-driven here
        // (transitively, via their own resets).
        for p in missing {
            let state = self.tasks[&p].state;
            if state == TaskState::Finished || state == TaskState::Failed {
                self.retries += 1;
                self.reset_task(p, queue, now);
            }
        }
    }

    // ---- execution -------------------------------------------------------

    fn on_try_start(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        let rec = &self.tasks[&t];
        if rec.state != TaskState::Dispatched {
            return;
        }
        let node = rec.node.expect("dispatched");
        if self.failed_nodes.contains(&node) {
            // The node died while we were waiting; re-place.
            self.retries += 1;
            self.reset_task(t, queue, now);
            return;
        }
        let slowdown = if rec.spec.backend != Backend::Cpu
            && self.topo.node(node).kind.class() == NodeClass::Server
        {
            self.cfg.cpu_fallback_slowdown.unwrap_or(1.0)
        } else {
            1.0
        };
        // Straggler injection: compute started inside a slowdown window
        // runs the whole task at the degraded rate.
        let straggle = self.active_plan.slowdown_factor(node, now);
        let dur = SimDuration::from_secs_f64(rec.spec.compute_us * slowdown * straggle / 1e6);
        // Actor methods execute one at a time, in readiness order.
        if let Some(actor) = rec.spec.actor {
            let busy_until = self
                .actor_busy_until
                .get(&actor)
                .copied()
                .unwrap_or(SimTime::ZERO);
            if busy_until > now {
                let e = self.epoch(t);
                queue.schedule_at(busy_until, Event::TryStart(t, e));
                return;
            }
        }
        if self.res.try_claim_slot(node, now + dur) {
            let rec = self.tasks.get_mut(&t).expect("known");
            rec.state = TaskState::Running;
            rec.started_at = Some(now);
            if let Some(actor) = rec.spec.actor {
                self.actor_busy_until.insert(actor, now + dur);
            }
            self.compute_total += dur;
            self.metrics.observe("task.run", dur);
            if let Some(r) = rec.ready_at {
                self.metrics.observe("task.wait", now.saturating_since(r));
            }
            if self.tracer.enabled() {
                let umbrella = self.task_span.get(&t).copied().unwrap_or(SpanId::NONE);
                let comp = format!("node{}", node.0);
                let inputs_ready = self.input_ready_at.get(&t).copied().unwrap_or(now).min(now);
                self.tracer.span(
                    "wait",
                    &comp,
                    Category::Wait,
                    Some(umbrella),
                    inputs_ready,
                    now,
                    &[],
                );
                self.tracer.span(
                    "run",
                    &comp,
                    Category::Run,
                    Some(umbrella),
                    now,
                    now + dur,
                    &[],
                );
                self.tracer.cover(umbrella, now + dur);
            }
            self.record_device_gauge(now);
            let e = self.epoch(t);
            queue.schedule_at(now + dur, Event::Finish(t, e));
        } else {
            // Work stealing: instead of parking behind the busy node's
            // queue, an idle eligible peer pulls the dispatch. Actor
            // methods stay pinned, and the steal budget bounds
            // ping-ponging between nodes that fill up concurrently.
            if self.cfg.placement == PlacementPolicy::WorkStealing
                && self.tasks[&t].spec.actor.is_none()
                && self.steals.get(&t).copied().unwrap_or(0) < MAX_STEALS_PER_ATTEMPT
            {
                if let Some(thief) = self.find_thief(t, node) {
                    *self.steals.entry(t).or_insert(0) += 1;
                    self.metrics.bump("task_steals");
                    self.tasks.get_mut(&t).expect("known").node = Some(thief);
                    if let Some(l) = self.node_load.get_mut(&node) {
                        *l = l.saturating_sub(1);
                    }
                    *self.node_load.entry(thief).or_insert(0) += 1;
                    // Inputs staged on the loser are stale; the thief
                    // re-resolves them on arrival (and pays for it).
                    self.staged_inputs.remove(&t);
                    // One control message: the thief pulls the dispatch
                    // record from the loaded raylet, then the normal
                    // arrival path stages inputs on the new node.
                    let arrive = self.net.control(now, node, thief);
                    let arrive = match self.device_available_at.get(&thief) {
                        Some(at) => arrive.max(*at),
                        None => arrive,
                    };
                    if self.tracer.enabled() {
                        let umbrella = self.task_span.get(&t).copied().unwrap_or(SpanId::NONE);
                        let from = format!("node{}", node.0);
                        let to = format!("node{}", thief.0);
                        self.tracer.span(
                            "steal",
                            "scheduler",
                            Category::Dispatch,
                            Some(umbrella),
                            now,
                            arrive,
                            &[("from", &from), ("to", &to)],
                        );
                        self.tracer.cover(umbrella, arrive);
                    }
                    let e = self.epoch(t);
                    queue.schedule_at(arrive, Event::Arrive(t, e));
                    return;
                }
            }
            let retry = self.res.earliest_slot(node, now);
            let e = self.epoch(t);
            // Guard against pathological same-instant retries.
            let retry = retry.max(now + SimDuration::from_nanos(100));
            queue.schedule_at(retry, Event::TryStart(t, e));
        }
    }

    /// An idle eligible peer that can pull `t` off `loser`'s queue: a
    /// free execution slot and nothing queued, lowest ID for
    /// determinism. `None` when the whole eligible set is saturated.
    fn find_thief(&self, t: TaskId, loser: NodeId) -> Option<NodeId> {
        let (eligible, _) = self.eligible_nodes(t);
        eligible.into_iter().filter(|n| *n != loser).find(|n| {
            self.res.free_slots(*n) > 0 && self.node_load.get(n).copied().unwrap_or(0) == 0
        })
    }

    fn on_finish(&mut self, now: SimTime, t: TaskId, queue: &mut EventQueue<Event>) {
        let (node, out_bytes, backend) = {
            let rec = self.tasks.get_mut(&t).expect("known");
            if rec.state != TaskState::Running {
                return;
            }
            rec.state = TaskState::Finished;
            rec.finished_at = Some(now);
            (
                rec.node.expect("running"),
                rec.spec.output_bytes,
                rec.spec.backend,
            )
        };
        self.note_transition(TaskState::Running, TaskState::Finished);
        let _ = self.res.release_slot(node);
        if let Some(l) = self.node_load.get_mut(&node) {
            *l = l.saturating_sub(1);
        }
        if let Some(start) = self.tasks[&t].started_at {
            *self.busy_us_by_node.entry(node).or_insert(0.0) +=
                now.saturating_since(start).as_micros_f64();
        }
        self.metrics.bump("task_completions");
        if self.cfg.deployment == Deployment::StatelessServerless
            || self.cfg.deployment == Deployment::DistributedRuntime
        {
            // Pay-per-use cost accrues per task-second.
            let dur = self.tasks[&t]
                .started_at()
                .map(|s| now.saturating_since(s))
                .unwrap_or(SimDuration::ZERO);
            self.serverless_task_cost += dur.as_secs_f64() * node_rate(&self.topo, node) + 0.0001;
        }

        // Data plane: the simulated completion also runs the shard's real
        // computation on the staged input payloads. The measured encoded
        // size replaces the spec's estimate everywhere downstream —
        // storage, replication/EC sizing, transfer pricing, pass-by-value
        // inlining, and fetched-copy caching.
        let mut out_bytes = out_bytes;
        if self.executor.is_some() {
            // Batched execution: the first finish at a simulated instant
            // also executes every other task finishing at that same
            // instant (their `Finish` events are still pending in the
            // queue), in one `execute_ready` call sorted by task ID. A
            // parallel executor overlaps them on real threads; results
            // for the peers wait in `exec_results` until their own finish
            // commits them — in the exact order the serial path would
            // have, so pricing and every downstream byte are unchanged.
            let result = match self.exec_results.remove(&t) {
                Some(r) => r,
                None => {
                    let mut batch: Vec<TaskId> = vec![t];
                    for ev in queue.pending_at(now) {
                        if let Event::Finish(t2, ep) = *ev {
                            if t2 != t
                                && ep == self.epoch(t2)
                                && self
                                    .tasks
                                    .get(&t2)
                                    .is_some_and(|r| r.state == TaskState::Running)
                                && self.staged_inputs.contains_key(&t2)
                                && !self.exec_results.contains_key(&t2)
                            {
                                batch.push(t2);
                            }
                        }
                    }
                    batch.sort_unstable();
                    batch.dedup();
                    let staged: Vec<(TaskId, StagedInputs)> = batch
                        .iter()
                        .map(|&b| (b, self.staged_inputs.remove(&b).unwrap_or_default()))
                        .collect();
                    let tasks: Vec<ReadyTask<'_>> = staged
                        .iter()
                        .map(|(b, s)| (*b, s.iter().map(|(p, by)| (*p, by.as_slice())).collect()))
                        .collect();
                    let results = match self.executor.as_mut() {
                        Some(exec) => exec.execute_ready(&tasks),
                        None => unreachable!("gated on executor.is_some()"),
                    };
                    let mut own = Err(format!("data plane returned no result for t{}", t.0));
                    for (b, r) in batch.into_iter().zip(results) {
                        if b == t {
                            own = r;
                        } else {
                            self.exec_results.insert(b, r);
                        }
                    }
                    own
                }
            };
            match result {
                Ok(bytes) => {
                    out_bytes = (bytes.len() as u64).max(1);
                    self.measured_bytes.insert(t, bytes.len() as u64);
                    self.payloads.put(t.0, bytes);
                }
                Err(msg) => {
                    if self.fatal.is_none() {
                        self.fatal = Some(RuntimeError::Internal(format!(
                            "data plane: task t{}: {msg}",
                            t.0
                        )));
                    }
                    return;
                }
            }
        }

        self.record_device_gauge(now);
        self.store_output(now, t, node, out_bytes, backend);

        // Notify the scheduler (owner) and wake consumers. With the
        // control plane down the message is lost on the wire; the
        // completion is re-learned during election-time reconstruction,
        // so consumers park at `now` and wait for the new scheduler.
        let notify = if self.scheduler_alive {
            self.net.control(now, node, self.scheduler_node)
        } else {
            now
        };
        if self.tracer.enabled() && self.scheduler_alive {
            let umbrella = self.task_span.get(&t).copied().unwrap_or(SpanId::NONE);
            self.tracer.span(
                "notify",
                "net",
                Category::Control,
                Some(umbrella),
                now,
                notify,
                &[],
            );
            self.tracer.cover(umbrella, notify);
        }
        let consumers: Vec<TaskId> = self.consumers.get(&t).cloned().unwrap_or_default();
        for c in consumers {
            let rec = self.tasks.get_mut(&c).expect("known consumer");
            if rec.state == TaskState::Blocked && rec.pending_inputs > 0 {
                rec.pending_inputs -= 1;
                if rec.pending_inputs == 0 {
                    let e = self.epoch(c);
                    queue.schedule_at(notify, Event::Ready(c, e));
                }
            }
        }
    }

    /// Stores a finished task's output per the deployment and FT mode,
    /// setting `value_ready` (and `durable_ready` when applicable).
    fn store_output(
        &mut self,
        now: SimTime,
        t: TaskId,
        node: NodeId,
        bytes: u64,
        backend: Backend,
    ) {
        // Durable write when any consumer (or the deployment) needs it.
        let needs_durable = match self.cfg.deployment {
            Deployment::StatelessServerless => true,
            Deployment::Serverful => self
                .consumers
                .get(&t)
                .map(|cs| cs.iter().any(|c| self.via_durable(t, *c)))
                .unwrap_or(false),
            Deployment::DistributedRuntime => false,
        };
        if needs_durable {
            let durable = self
                .topo
                .durable_storage()
                .expect("durable deployments need durable storage");
            let tr = self.net.transfer(now, node, durable, bytes);
            self.durable_trips += 1;
            self.metrics.bump("durable_writes");
            if self.tracer.enabled() {
                let task = format!("t{}", t.0);
                let bytes_s = bytes.to_string();
                self.tracer.span(
                    "durable.write",
                    "net",
                    Category::Data,
                    Some(self.job_root),
                    now,
                    tr.arrival,
                    &[("task", &task), ("bytes", &bytes_s)],
                );
            }
            self.durable_ready.insert(t, tr.arrival);
        }
        if self.cfg.deployment == Deployment::StatelessServerless {
            // Stateless functions keep nothing locally.
            self.value_ready.insert(t, now);
            return;
        }

        match self.cfg.ft {
            FtMode::ErasureCoding(config) => {
                // Distribute k+m shards over servers and blades.
                let mut holders: Vec<NodeId> = self
                    .topo
                    .servers()
                    .into_iter()
                    .chain(self.topo.memory_blades())
                    .filter(|n| !self.failed_nodes.contains(n))
                    .collect();
                holders.sort();
                let total = config.total();
                if holders.is_empty() {
                    // Every server and blade is down (e.g. correlated rack
                    // loss): the only write target left is durable storage.
                    // Without the guard the shard loop below would divide
                    // by zero picking holders.
                    if let Some(d) = self.topo.durable_storage() {
                        let tr = self.net.transfer(now, node, d, bytes);
                        self.durable_trips += 1;
                        self.ec_placements.insert(
                            t,
                            EcPlacement {
                                shard_nodes: vec![d; total],
                                size: bytes,
                                config,
                            },
                        );
                        self.value_ready.insert(t, tr.arrival);
                    }
                    // No durable either: leave no placement; consumers
                    // will drive recovery until the retry budget errors.
                    return;
                }
                let shard = (bytes / config.data as u64).max(1);
                let mut nodes = Vec::with_capacity(total);
                let mut last = now;
                for i in 0..total {
                    let h = holders[i % holders.len()];
                    let tr = self.net.transfer(now, node, h, shard);
                    last = last.max(tr.arrival);
                    nodes.push(h);
                }
                self.metrics.add("ec_bytes", shard * total as u64);
                if self.tracer.enabled() {
                    let task = format!("t{}", t.0);
                    let shards = total.to_string();
                    let bytes_s = (shard * total as u64).to_string();
                    self.tracer.span(
                        "ec.write",
                        "store",
                        Category::EcWrite,
                        Some(self.job_root),
                        now,
                        last,
                        &[("task", &task), ("shards", &shards), ("bytes", &bytes_s)],
                    );
                }
                self.ec_placements.insert(
                    t,
                    EcPlacement {
                        shard_nodes: nodes,
                        size: bytes,
                        config,
                    },
                );
                self.value_ready.insert(t, last);
            }
            _ => {
                let obj = self.idgen.next();
                self.object_of.insert(t, obj);
                let _ = self.own.register(obj, self.scheduler_node);
                let device = match self.topo.node(node).kind {
                    NodeKind::AccelDevice(..) => Some(DeviceSlot {
                        device: node,
                        handle: DeviceHandle(node.0),
                    }),
                    _ => None,
                };
                let put = self.cache.put(obj, bytes.max(1), node, now);
                match put {
                    Ok(report) => {
                        let tier = report.tier;
                        let _ = self.own.mark_ready(obj, bytes, node, device);
                        self.sync_spills(now, &report.spilled);
                        self.value_ready.insert(t, now + tier.access_latency());
                    }
                    Err(_) => {
                        // Cannot fit anywhere in memory: durable backstop.
                        if let Some(d) = self.topo.durable_storage() {
                            let tr = self.net.transfer(now, node, d, bytes);
                            // Only record the durable location if the bytes
                            // actually landed — the ownership table must
                            // never advertise holders the stores disown.
                            if let Ok(report) = self.cache.put(obj, bytes.max(1), d, now) {
                                let _ = self.own.mark_ready(obj, bytes, d, None);
                                self.sync_spills(now, &report.spilled);
                            }
                            self.durable_trips += 1;
                            self.value_ready.insert(t, tr.arrival);
                        }
                    }
                }
                // Replication: copy to rack-diverse holders, off the
                // critical path (priced, but value_ready unchanged).
                if let FtMode::Replication(n) = self.cfg.ft {
                    if n > 1 {
                        let candidates: Vec<NodeId> = self
                            .topo
                            .servers()
                            .into_iter()
                            .chain(self.topo.memory_blades())
                            .filter(|x| !self.failed_nodes.contains(x))
                            .collect();
                        if let Ok(rep) =
                            self.cache
                                .replicate(obj, (n - 1) as usize, &candidates, now)
                        {
                            self.sync_spills(now, &rep.spilled);
                            for dest in rep.added {
                                let tr = self.net.transfer(now, node, dest, bytes);
                                let _ = self.own.add_location(obj, dest);
                                self.metrics.add("replica_bytes", bytes);
                                if self.tracer.enabled() {
                                    let task = format!("t{}", t.0);
                                    let to = format!("node{}", dest.0);
                                    let bytes_s = bytes.to_string();
                                    self.tracer.span(
                                        "replicate",
                                        "store",
                                        Category::Replicate,
                                        Some(self.job_root),
                                        now,
                                        tr.arrival,
                                        &[("task", &task), ("to", &to), ("bytes", &bytes_s)],
                                    );
                                }
                            }
                        }
                    }
                }
                let _ = backend;
            }
        }
    }

    // ---- failures ----------------------------------------------------------

    fn on_fail(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<Event>) {
        if self.failed_nodes.contains(&node) {
            return;
        }
        self.failed_nodes.insert(node);
        self.index_node_alive(node, false);
        self.metrics.bump("node_failures");

        // Control-plane death: park scheduling and hold an election once
        // the failover delay elapses. A surviving server wins and
        // reconstructs the dead scheduler's state (see `on_elect`).
        if node == self.scheduler_node && self.scheduler_alive {
            self.scheduler_alive = false;
            self.metrics.bump("scheduler_failures");
            queue.schedule_at(now + self.cfg.election_delay, Event::Elect);
        }

        // A crashed accelerator leaves the warm pool immediately:
        // otherwise the autoscaler keeps counting it as provisioned
        // capacity and never scales up a replacement. On recovery the
        // device is cold again and re-enters through normal provisioning.
        if self.device_available_at.remove(&node).is_some() {
            if let Some(s) = self.autoscaler.as_mut() {
                s.device_lost(now);
            }
            self.metrics.bump("devices_lost");
        }

        // Actors living on the node restart elsewhere (their pin clears;
        // the next method placement re-pins).
        let dead_actors: Vec<ActorId> = self
            .actor_node
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(a, _)| *a)
            .collect();
        for a in dead_actors {
            self.actor_node.remove(&a);
            self.actor_busy_until.remove(&a);
        }

        // Objects on the node: replicas mask losses inside the cache.
        let lost_objects = self.cache.fail_node(node);
        let (_unavail, _orphans) = self.own.fail_node(node);

        // EC shards on the node.
        for p in self.ec_placements.values_mut() {
            p.shard_nodes.retain(|n| *n != node);
        }

        // Abort resident tasks.
        let mut resident: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|r| {
                r.node == Some(node)
                    && matches!(r.state, TaskState::Dispatched | TaskState::Running)
            })
            .map(|r| r.spec.id)
            .collect();
        resident.sort();
        for t in resident {
            // A recursive reset may already have re-driven this task.
            if !matches!(
                self.tasks[&t].state,
                TaskState::Dispatched | TaskState::Running
            ) {
                continue;
            }
            if self.cfg.ft == FtMode::None {
                self.abandoned += 1;
                let was_running = self.tasks[&t].state == TaskState::Running;
                let prev = {
                    let rec = self.tasks.get_mut(&t).expect("known");
                    std::mem::replace(&mut rec.state, TaskState::Failed)
                };
                self.note_transition(prev, TaskState::Failed);
                if was_running {
                    // The aborted task's compute slot must come back: a
                    // node that later rejoins "empty-handed" would
                    // otherwise still report the dead task's claim.
                    let _ = self.res.release_slot(node);
                }
                if let Some(l) = self.node_load.get_mut(&node) {
                    *l = l.saturating_sub(1);
                }
                self.abandon_consumers(t);
            } else {
                self.retries += 1;
                self.reset_task(t, queue, now);
            }
        }

        // Eagerly re-create lost *job outputs* (no consumers to trigger
        // lazy recovery).
        if self.cfg.ft != FtMode::None {
            let mut lost_tasks: Vec<TaskId> = self
                .object_of
                .iter()
                .filter(|(_, o)| lost_objects.contains(o))
                .map(|(t, _)| *t)
                .collect();
            lost_tasks.sort();
            for t in lost_tasks {
                let no_consumers = self.consumers.get(&t).map(Vec::is_empty).unwrap_or(true);
                if no_consumers && self.tasks[&t].state == TaskState::Finished {
                    self.retries += 1;
                    self.reset_task(t, queue, now);
                }
            }
        }
    }

    /// Holds the scheduler election: the lowest-numbered surviving
    /// server wins, reconstructs control-plane state by querying every
    /// surviving raylet (placement facts, gang membership, task
    /// completions, and the ownership rows the dead node hosted — each
    /// query a priced round trip), then re-drives every parked readiness
    /// notification once reconstruction completes.
    fn on_elect(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.scheduler_alive {
            // Stale: a previous election already installed a leader (or
            // the same node failed and recovered between schedulings).
            return;
        }
        // Winner choice: by default the lowest-numbered surviving server.
        // With `rack_aware_election`, prefer a candidate in the
        // least-impacted rack (fewest failed nodes) — a rack already
        // absorbing failures is a bad home for the control plane — with
        // the node ID as the deterministic tie-break.
        let winner = if self.cfg.rack_aware_election {
            let mut failed_per_rack: HashMap<u16, u32> = HashMap::new();
            for n in &self.failed_nodes {
                *failed_per_rack.entry(self.topo.rack_of(*n).0).or_insert(0) += 1;
            }
            self.topo
                .servers()
                .into_iter()
                .filter(|n| !self.failed_nodes.contains(n))
                .min_by_key(|n| {
                    let rack = self.topo.rack_of(*n).0;
                    (failed_per_rack.get(&rack).copied().unwrap_or(0), *n)
                })
        } else {
            self.topo
                .servers()
                .into_iter()
                .find(|n| !self.failed_nodes.contains(n))
        };
        let Some(winner) = winner else {
            // No server survives. If one is scheduled to rejoin, hold the
            // election then; otherwise the cluster stays headless and the
            // run ends in a clean `Stalled`/`TaskAbandoned`.
            if let Some(at) = self.active_plan.next_recovery_of(&self.topo.servers(), now) {
                queue.schedule_at(at, Event::Elect);
            }
            return;
        };
        let old = self.scheduler_node;
        self.scheduler_node = winner;
        self.scheduler_alive = true;
        self.metrics.bump("elections");

        // Reconstruction cost: one query per surviving peer raylet,
        // answered by a state re-report *sized by what the peer actually
        // holds* — the ownership rows listing it as a holder plus its
        // cached objects and bytes — rather than a flat round trip. An
        // empty node answers with a single message; a node holding
        // gigabytes of shuffle state streams a batched report. The new
        // scheduler is fully up once the last report lands.
        let mut peers: Vec<NodeId> = self
            .topo
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|n| *n != winner && !self.failed_nodes.contains(n))
            .collect();
        peers.sort();
        let n_peers = peers.len();
        let mut done = now;
        let mut reconstruct_msgs: u64 = 0;
        for p in peers {
            let query = self.net.control(now, winner, p);
            let store = self.cache.store(p);
            let rows = self.own.rows_located_on(p) as u64 + store.len() as u64;
            // Serialized report: ~48 bytes per row, plus a per-MiB
            // digest of the cached payload bytes.
            let report_bytes = (rows * ROW_REPORT_BYTES + store.used() / (1 << 20)).max(1);
            let response = self.net.transfer(query, p, winner, report_bytes).arrival;
            // One query, then one message per report batch.
            reconstruct_msgs += 1 + 1 + rows / ROWS_PER_REPORT_MSG;
            done = done.max(response);
        }
        self.metrics
            .add("failover_reconstruct_msgs", reconstruct_msgs);

        // Ownership rows the dead node hosted re-register under the
        // winner (their holders re-report them during reconstruction).
        let rehomed = self.own.rehome_owner(old, winner);
        self.metrics
            .add("failover_rehomed_rows", rehomed.len() as u64);

        // Placement state survives the failover: the strategy cursor is
        // tiny scheduler metadata the peers replicate, so the rotation
        // resumes where the dead scheduler stopped instead of re-placing
        // from the start (double-placing under round-robin).
        self.placer.rebuild_for_failover();
        // The autoscaler resumes from what the surviving raylets report
        // as the provisioned pool; the cost ledger carries over.
        let provisioned = self.device_available_at.len() as u32;
        if let Some(s) = self.autoscaler.as_mut() {
            s.resync(provisioned, now);
        }
        // Gang membership: re-declare from the specs; gangs with members
        // already dispatched provably launched, so their release latch is
        // restored and lone re-executions will not wait for peers.
        if self.cfg.gang_scheduling {
            let mut rebuilt = GangTracker::new();
            let mut launched: Vec<crate::task::GangId> = Vec::new();
            for r in self.tasks.values() {
                if let Some(g) = r.spec.gang {
                    rebuilt.declare(g, 1);
                    if matches!(
                        r.state,
                        TaskState::Dispatched | TaskState::Running | TaskState::Finished
                    ) {
                        launched.push(g);
                    }
                }
            }
            launched.sort();
            launched.dedup();
            for g in launched {
                rebuilt.mark_released(g);
            }
            self.gangs = rebuilt;
        }

        if self.tracer.enabled() {
            let w = format!("node{}", winner.0);
            let rows = rehomed.len().to_string();
            let peers_s = n_peers.to_string();
            self.tracer.span(
                "elect",
                "scheduler",
                Category::Election,
                Some(self.job_root),
                now,
                done,
                &[("winner", &w), ("rehomed_rows", &rows), ("peers", &peers_s)],
            );
        }

        // Re-drive every parked readiness notification at reconstruction
        // completion (gang gating dedups members already gathered).
        let mut parked: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|r| r.state == TaskState::Ready)
            .map(|r| r.spec.id)
            .collect();
        parked.sort();
        for t in parked {
            let e = self.epoch(t);
            queue.schedule_at(done, Event::Ready(t, e));
        }
    }

    fn on_autoscale(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.autoscaler.is_none() {
            return;
        }
        // The autoscaler is scheduler-resident: ticks elapse without
        // decisions while the control plane is down (the elected
        // scheduler resyncs the pool when it takes over).
        if !self.scheduler_alive {
            let interval = self.autoscaler.as_ref().expect("present").interval();
            if !self.job_done() {
                queue.schedule_at(now + interval, Event::Autoscale);
            }
            return;
        }
        let Some(scaler) = self.autoscaler.as_mut() else {
            return;
        };
        // Queue depth: accel-backend tasks not yet running.
        let queue_depth = self
            .tasks
            .values()
            .filter(|r| {
                r.spec.backend != Backend::Cpu
                    && matches!(r.state, TaskState::Ready | TaskState::Dispatched)
            })
            .count() as u32;
        let busy: u32 = self
            .device_available_at
            .keys()
            .map(|n| self.node_load.get(n).copied().unwrap_or(0))
            .sum();
        let decision = scaler.evaluate(now, queue_depth, busy);
        let delay = scaler.provision_delay();
        match decision {
            ScaleDecision::Up(n) => {
                let mut cold: Vec<NodeId> = self
                    .topo
                    .accel_devices(None)
                    .into_iter()
                    .filter(|d| {
                        // Dead devices cannot be provisioned; they become
                        // candidates again once they recover.
                        !self.device_available_at.contains_key(d) && !self.failed_nodes.contains(d)
                    })
                    .collect();
                cold.sort();
                for d in cold.into_iter().take(n as usize) {
                    self.device_available_at.insert(d, now + delay);
                    self.metrics.bump("devices_provisioned");
                    if self.tracer.enabled() {
                        let dev = format!("node{}", d.0);
                        self.tracer.span(
                            "provision",
                            "autoscaler",
                            Category::Autoscale,
                            Some(self.job_root),
                            now,
                            now + delay,
                            &[("device", &dev)],
                        );
                    }
                }
            }
            ScaleDecision::Down(n) => {
                let mut idle: Vec<NodeId> = self
                    .device_available_at
                    .keys()
                    .copied()
                    .filter(|d| self.node_load.get(d).copied().unwrap_or(0) == 0)
                    .collect();
                idle.sort();
                for d in idle.into_iter().take(n as usize) {
                    self.device_available_at.remove(&d);
                    self.metrics.bump("devices_retired");
                    if self.tracer.enabled() {
                        let dev = format!("node{}", d.0);
                        self.tracer.span(
                            "retire",
                            "autoscaler",
                            Category::Autoscale,
                            Some(self.job_root),
                            now,
                            now,
                            &[("device", &dev)],
                        );
                    }
                }
            }
            ScaleDecision::Hold => {}
        }
        if !self.job_done() {
            let interval = self.autoscaler.as_ref().expect("present").interval();
            queue.schedule_at(now + interval, Event::Autoscale);
        }
    }

    // ---- bookkeeping helpers -----------------------------------------------

    /// Prices, traces, and ownership-syncs the spills induced by a cache
    /// insertion. Every path that puts bytes into the caching layer must
    /// route its report through here, or the ownership table and the
    /// spill trace drift from what the stores actually hold.
    fn sync_spills(&mut self, now: SimTime, spilled: &[SpillEvent]) {
        for s in spilled {
            match s.to {
                SpillTarget::Node(dest) | SpillTarget::Durable(dest) => {
                    let tr = self.net.transfer(now, s.from, dest, s.bytes);
                    if matches!(s.to, SpillTarget::Durable(_)) {
                        self.durable_trips += 1;
                    }
                    // Add before remove: dropping the old location first
                    // could transiently fail the value while the new copy
                    // already exists.
                    let _ = self.own.add_location(s.id, dest);
                    let _ = self.own.remove_location(s.id, s.from);
                    if self.tracer.enabled() {
                        let from = format!("node{}", s.from.0);
                        let to = format!("node{}", dest.0);
                        let bytes_s = s.bytes.to_string();
                        self.tracer.span(
                            "spill",
                            "store",
                            Category::Spill,
                            Some(self.job_root),
                            now,
                            tr.arrival,
                            &[("from", &from), ("to", &to), ("bytes", &bytes_s)],
                        );
                    }
                }
                SpillTarget::Drop => {
                    let _ = self.own.remove_location(s.id, s.from);
                }
            }
        }
    }

    /// `FtMode::None`: a failed task's transitive consumers can never
    /// run; fail them now so the job terminates cleanly instead of
    /// stranding `Blocked` tasks after the event queue drains.
    fn abandon_consumers(&mut self, root: TaskId) {
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            let consumers: Vec<TaskId> = self.consumers.get(&t).cloned().unwrap_or_default();
            for c in consumers {
                let abandoned = {
                    let rec = self.tasks.get_mut(&c).expect("known consumer");
                    if rec.state == TaskState::Blocked {
                        rec.state = TaskState::Failed;
                        true
                    } else {
                        false
                    }
                };
                if abandoned {
                    self.note_transition(TaskState::Blocked, TaskState::Failed);
                    self.abandoned += 1;
                    stack.push(c);
                }
            }
        }
    }

    /// Per-task outcome digest of the last run: `(task, finished, output
    /// bytes)`, sorted. Two runs of the same job are output-equivalent
    /// iff their manifests are equal — the chaos harness compares a
    /// failure-injected run against the failure-free baseline with this.
    pub fn output_manifest(&self) -> Vec<(TaskId, bool, u64)> {
        let mut v: Vec<(TaskId, bool, u64)> = self
            .tasks
            .values()
            .map(|r| {
                (
                    r.spec.id,
                    r.state == TaskState::Finished,
                    r.spec.output_bytes,
                )
            })
            .collect();
        v.sort();
        v
    }

    /// The debug invariant checker (`RuntimeConfig::debug_invariants`):
    /// runs after every event and cross-checks the cluster's redundant
    /// bookkeeping. Any `Err` means a recovery-path bug, not a user
    /// error.
    fn check_invariants(&self, queue: &EventQueue<Event>) -> Result<(), String> {
        // No task may sit Dispatched/Running on a failed node, and the
        // per-node load/slot counters must match the task table.
        let mut expect_load: HashMap<NodeId, u32> = HashMap::new();
        let mut expect_running: HashMap<NodeId, u32> = HashMap::new();
        for r in self.tasks.values() {
            let resident = matches!(r.state, TaskState::Dispatched | TaskState::Running);
            if !resident {
                continue;
            }
            let n = match r.node {
                Some(n) => n,
                None => {
                    return Err(format!(
                        "task {} is {:?} without a node",
                        r.spec.id, r.state
                    ))
                }
            };
            if self.failed_nodes.contains(&n) {
                return Err(format!(
                    "task {} is {:?} on failed node {}",
                    r.spec.id, r.state, n.0
                ));
            }
            *expect_load.entry(n).or_insert(0) += 1;
            if r.state == TaskState::Running {
                *expect_running.entry(n).or_insert(0) += 1;
            }
        }
        let mut nodes: Vec<NodeId> = self
            .node_load
            .keys()
            .chain(expect_load.keys())
            .copied()
            .collect();
        nodes.sort();
        nodes.dedup();
        for n in nodes {
            let have = self.node_load.get(&n).copied().unwrap_or(0);
            let want = expect_load.get(&n).copied().unwrap_or(0);
            if have != want {
                return Err(format!(
                    "node {} records load {have} but {want} resident tasks",
                    n.0
                ));
            }
            let claimed = self
                .res
                .total_slots(n)
                .saturating_sub(self.res.free_slots(n));
            let running = expect_running.get(&n).copied().unwrap_or(0);
            if claimed != running {
                return Err(format!(
                    "node {} has {claimed} claimed slots but {running} running tasks",
                    n.0
                ));
            }
        }
        // The ownership table and the caching layer must agree on who
        // holds each live object.
        let mut objs: Vec<(TaskId, ObjectId)> =
            self.object_of.iter().map(|(t, o)| (*t, *o)).collect();
        objs.sort();
        for (t, obj) in objs {
            let mut cached: Vec<NodeId> = self.cache.locations(obj).to_vec();
            cached.sort();
            let mut owned: Vec<NodeId> = self
                .own
                .get(obj)
                .map(|e| e.locations.clone())
                .unwrap_or_default();
            owned.sort();
            if cached != owned {
                return Err(format!(
                    "object {} of task {} held by {cached:?} per cache but {owned:?} per ownership",
                    obj, t
                ));
            }
        }
        // A crashed device must not linger in the provisioned pool.
        for n in &self.failed_nodes {
            if self.device_available_at.contains_key(n) {
                return Err(format!("failed device {} still provisioned", n.0));
            }
        }
        // A live control plane must sit on a live node; ownership rows
        // must be homed on the current scheduler (rows created during an
        // interregnum keep the dead scheduler as owner until the election
        // rehomes them, but `scheduler_node` only advances atomically
        // with that rehoming, so the identity holds at every event).
        if self.scheduler_alive && self.failed_nodes.contains(&self.scheduler_node) {
            return Err(format!(
                "scheduler marked alive on failed node {}",
                self.scheduler_node.0
            ));
        }
        for (t, obj) in self.object_of.iter() {
            if let Ok(e) = self.own.get(*obj) {
                if e.owner != self.scheduler_node {
                    return Err(format!(
                        "object {} of task {} owned by node {} but scheduler is node {}",
                        obj, t, e.owner.0, self.scheduler_node.0
                    ));
                }
            }
        }
        // The O(1) `unfinished` counter must agree with a recount of the
        // task table (every state write routes through note_transition).
        let recount = self
            .tasks
            .values()
            .filter(|r| !matches!(r.state, TaskState::Finished | TaskState::Failed))
            .count();
        if recount != self.unfinished {
            return Err(format!(
                "unfinished counter {} but {recount} non-terminal tasks",
                self.unfinished
            ));
        }
        // The alive-by-class indexes must agree with a rebuild from the
        // topology minus the failed set.
        for (label, have, want) in [
            ("servers", &self.alive_servers, self.topo.servers()),
            (
                "gpus",
                &self.alive_gpus,
                self.topo.accel_devices(Some(AccelKind::Gpu)),
            ),
            (
                "fpgas",
                &self.alive_fpgas,
                self.topo.accel_devices(Some(AccelKind::Fpga)),
            ),
        ] {
            let mut want: Vec<NodeId> = want
                .into_iter()
                .filter(|n| !self.failed_nodes.contains(n))
                .collect();
            want.sort();
            if *have != want {
                return Err(format!(
                    "alive-{label} index {have:?} but topology minus failures gives {want:?}"
                ));
            }
        }
        // Progress: an empty queue with non-terminal tasks is a stall.
        if queue.is_empty() && !self.job_done() {
            return Err("event queue empty while tasks are unfinished".to_string());
        }
        Ok(())
    }

    // ---- cost --------------------------------------------------------------

    fn cost_units(&self, makespan: SimDuration) -> f64 {
        match self.cfg.deployment {
            Deployment::Serverful => {
                // Reservation: every node in every system pool is paid for
                // the whole job.
                let nodes: HashSet<NodeId> =
                    self.system_pools.values().flatten().copied().collect();
                nodes
                    .iter()
                    .map(|n| node_rate(&self.topo, *n) * makespan.as_secs_f64())
                    .sum()
            }
            _ => {
                let mut cost = self.serverless_task_cost;
                cost += self.durable_trips as f64 * 0.0005;
                if let Some(s) = &self.autoscaler {
                    cost += s.warm_device_us() / 1e6 * 3.0;
                }
                cost
            }
        }
    }
}

/// Abstract cost rate of a node, units per second.
fn node_rate(topo: &Topology, node: NodeId) -> f64 {
    match topo.node(node).kind {
        NodeKind::Server(_) => 1.0,
        NodeKind::AccelDevice(AccelKind::Gpu, _) => 3.0,
        NodeKind::AccelDevice(AccelKind::Fpga, _) => 2.0,
        NodeKind::MemoryBlade(_) => 0.3,
        NodeKind::DurableStorage(_) => 0.0,
    }
}

impl TaskRecord {
    fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{GangId, TaskSpec};
    use skadi_dcsim::topology::presets;

    fn chain_job(n: u64, compute_us: f64, bytes: u64) -> Job {
        let mut tasks = vec![TaskSpec::new(0, compute_us, bytes)];
        for i in 1..n {
            tasks.push(TaskSpec::new(i, compute_us, bytes).after(TaskId(i - 1), bytes));
        }
        Job::new("chain", tasks).unwrap()
    }

    fn fanout_job(width: u64, compute_us: f64, bytes: u64) -> Job {
        let mut tasks = vec![TaskSpec::new(0, compute_us, bytes)];
        for i in 1..=width {
            tasks.push(TaskSpec::new(i, compute_us, bytes).after(TaskId(0), bytes));
        }
        let mut sink = TaskSpec::new(width + 1, compute_us, bytes);
        for i in 1..=width {
            sink = sink.after(TaskId(i), bytes);
        }
        tasks.push(sink);
        Job::new("fanout", tasks).unwrap()
    }

    #[test]
    fn chain_completes_with_monotone_makespan() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let short = c.run(&chain_job(5, 100.0, 1 << 10)).unwrap();
        assert_eq!(short.finished, 5);
        assert_eq!(short.abandoned, 0);
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let long = c.run(&chain_job(20, 100.0, 1 << 10)).unwrap();
        assert!(long.makespan > short.makespan);
    }

    #[test]
    fn fanout_parallelizes() {
        let topo = presets::small_disagg_cluster();
        // 16 independent 1ms tasks across 8 servers x 16 slots: the
        // makespan should be far below the serial sum.
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&fanout_job(16, 1000.0, 1 << 10)).unwrap();
        assert_eq!(stats.finished, 18);
        let serial_us = 18.0 * 1000.0;
        assert!(
            stats.makespan.as_micros() < (serial_us * 0.5) as u64,
            "makespan {} vs serial {serial_us}us",
            stats.makespan
        );
    }

    #[test]
    fn stateless_pays_durable_trips() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(4, 100.0, 1 << 20);
        let mut skadi = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let s = skadi.run(&job).unwrap();
        let mut stateless = Cluster::new(&topo, RuntimeConfig::stateless_serverless());
        let f = stateless.run(&job).unwrap();
        assert_eq!(s.durable_trips, 0);
        assert!(
            f.durable_trips >= 6,
            "writes + reads, got {}",
            f.durable_trips
        );
        assert!(f.makespan > s.makespan * 2);
    }

    #[test]
    fn serverful_bounces_cross_system_edges_only() {
        let topo = presets::small_disagg_cluster();
        let tasks = vec![
            TaskSpec::new(0, 100.0, 1 << 20).in_system("sql"),
            TaskSpec::new(1, 100.0, 1 << 20)
                .after(TaskId(0), 1 << 20)
                .in_system("sql"),
            TaskSpec::new(2, 100.0, 1 << 20)
                .after(TaskId(1), 1 << 20)
                .in_system("ml"),
        ];
        let job = Job::new("mixed", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::serverful());
        let stats = c.run(&job).unwrap();
        // One cross-system edge: one write + one read.
        assert_eq!(stats.durable_trips, 2);
        assert_eq!(stats.finished, 3);
    }

    #[test]
    fn gpu_tasks_land_on_gpu_devices() {
        let topo = presets::small_disagg_cluster();
        let job = Job::new(
            "gpu",
            vec![
                TaskSpec::new(0, 100.0, 1 << 10),
                TaskSpec::new(1, 100.0, 1 << 10)
                    .after(TaskId(0), 1 << 10)
                    .on(Backend::Gpu),
            ],
        )
        .unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.finished, 2);
        assert_eq!(stats.metrics.counter("cpu_fallback"), 0);
    }

    #[test]
    fn gen2_beats_gen1_on_short_device_ops() {
        let topo = presets::device_rack();
        // A chain of short GPU ops: control overhead dominates.
        let mut tasks = vec![TaskSpec::new(0, 10.0, 4 << 10).on(Backend::Gpu)];
        for i in 1..20 {
            tasks.push(
                TaskSpec::new(i, 10.0, 4 << 10)
                    .after(TaskId(i - 1), 4 << 10)
                    .on(Backend::Gpu),
            );
        }
        let job = Job::new("short-ops", tasks).unwrap();
        let mut g1 = Cluster::new(&topo, RuntimeConfig::skadi_gen1());
        let s1 = g1.run(&job).unwrap();
        let mut g2 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let s2 = g2.run(&job).unwrap();
        assert!(
            s2.makespan < s1.makespan,
            "gen2 {} vs gen1 {}",
            s2.makespan,
            s1.makespan
        );
        assert!(s2.stall_total < s1.stall_total);
    }

    #[test]
    fn lineage_recovers_from_node_failure() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 2000.0, 1 << 16);
        // Kill a server mid-job.
        let victim = topo.servers()[0];
        let plan = FailurePlan::none().kill(victim, SimTime::from_millis(3));
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 6, "all tasks should finish eventually");
        assert_eq!(stats.abandoned, 0);
    }

    #[test]
    fn ft_none_abandons_on_failure() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 5000.0, 1 << 16);
        let victim = topo.servers()[0];
        let plan = FailurePlan::none().kill(victim, SimTime::from_millis(6));
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_ft(FtMode::None));
        let stats = c.run_with_failures(&job, &plan).unwrap();
        // The chain ran on the data-local node; killing it aborts the rest.
        assert!(stats.abandoned > 0 || stats.finished == 6);
    }

    #[test]
    fn replication_masks_failures_cheaper_recovery() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(8, 3000.0, 1 << 18);
        let victim = topo.servers()[0];
        let at = SimTime::from_millis(10);

        let mut lineage = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let l = lineage
            .run_with_failures(&job, &FailurePlan::none().kill(victim, at))
            .unwrap();
        let mut repl = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_ft(FtMode::Replication(2)),
        );
        let r = repl
            .run_with_failures(&job, &FailurePlan::none().kill(victim, at))
            .unwrap();
        assert_eq!(l.finished, 8);
        assert_eq!(r.finished, 8);
        // Replication re-runs at most the task that was executing; lineage
        // may recompute ancestors too.
        assert!(
            r.retries <= l.retries,
            "repl {} vs lineage {}",
            r.retries,
            l.retries
        );
    }

    #[test]
    fn erasure_coding_survives_single_failure() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 3000.0, 1 << 18);
        let victim = topo.servers()[1];
        let plan = FailurePlan::none().kill(victim, SimTime::from_millis(8));
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_ft(FtMode::ErasureCoding(EcConfig::RS_4_2)),
        );
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 6);
        assert!(stats.metrics.counter("ec_bytes") > 0);
    }

    #[test]
    fn gang_scheduling_starts_members_together() {
        let topo = presets::small_disagg_cluster();
        let gang = GangId(1);
        // Two gang members, one delayed by a long producer.
        let tasks = vec![
            TaskSpec::new(0, 10_000.0, 1 << 10),
            TaskSpec::new(1, 100.0, 1 << 10).in_gang(gang),
            TaskSpec::new(2, 100.0, 1 << 10)
                .after(TaskId(0), 1 << 10)
                .in_gang(gang),
        ];
        let job = Job::new("gang", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_gang(true));
        let _ = c.run(&job).unwrap();
        let t1 = c.tasks[&TaskId(1)].started_at.unwrap();
        let t2 = c.tasks[&TaskId(2)].started_at.unwrap();
        let skew = t1.max(t2).saturating_since(t1.min(t2));
        assert!(
            skew < SimDuration::from_millis(1),
            "gang members started {skew} apart"
        );
    }

    #[test]
    fn data_centric_moves_less_data_than_round_robin() {
        let topo = presets::small_disagg_cluster();
        // Shuffle-free chain with big intermediates: locality matters.
        let job = chain_job(10, 500.0, 32 << 20);
        let mut dc = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let a = dc.run(&job).unwrap();
        let mut rr = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_placement(crate::PlacementPolicy::RoundRobin),
        );
        let b = rr.run(&job).unwrap();
        assert!(
            a.net.network_bytes() < b.net.network_bytes(),
            "data-centric {} vs round-robin {}",
            a.net.network_bytes(),
            b.net.network_bytes()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = presets::small_disagg_cluster();
        let job = fanout_job(8, 700.0, 1 << 16);
        let mut c1 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let a = c1.run(&job).unwrap();
        let mut c2 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let b = c2.run(&job).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.net, b.net);
        assert_eq!(a.cost_units, b.cost_units);
    }

    #[test]
    fn serverful_cost_is_reservation_based() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(3, 100.0, 1 << 10);
        let mut sf = Cluster::new(&topo, RuntimeConfig::serverful());
        let s = sf.run(&job).unwrap();
        // Cost scales with makespan x pool size, not with task time.
        assert!(s.cost_units > 0.0);
        let mut sk = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let k = sk.run(&job).unwrap();
        assert!(k.cost_units < s.cost_units);
    }

    #[test]
    fn autoscaler_provisions_devices_under_load() {
        let topo = presets::device_rack();
        let mut tasks = Vec::new();
        for i in 0..24u64 {
            tasks.push(TaskSpec::new(i, 5_000.0, 1 << 10).on(Backend::Gpu));
        }
        let job = Job::new("burst", tasks).unwrap();
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_autoscale(crate::config::AutoscaleConfig {
                min_devices: 0,
                max_devices: 4,
                scale_up_queue: 1.0,
                interval: SimDuration::from_millis(1),
                provision_delay: SimDuration::from_millis(5),
            }),
        );
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.finished, 24);
        assert!(stats.metrics.counter("devices_provisioned") > 0);
    }

    /// Regression: aborting a Running task on a failed node (FtMode::None)
    /// must hand its compute slot back. Before the fix the slot stayed
    /// claimed forever, so the invariant checker trips right after the
    /// Fail event.
    #[test]
    fn aborted_task_releases_its_compute_slot() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 5000.0, 1 << 16);
        let victim = topo.servers()[0];
        let plan = FailurePlan::none().kill_and_recover(
            victim,
            SimTime::from_millis(6),
            SimTime::from_millis(8),
        );
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2()
                .with_ft(FtMode::None)
                .with_debug_invariants(true),
        );
        let res = c.run_with_failures(&job, &plan);
        assert!(res.is_ok(), "slot accounting broke after abort: {res:?}");
    }

    /// Regression: a crashed accelerator must leave the warm-device pool
    /// (both `device_available_at` and the autoscaler's busy count) so
    /// the autoscaler can provision a replacement. Before the fix the
    /// dead device stayed schedulable and warm.
    #[test]
    fn autoscaler_replaces_crashed_device() {
        let topo = presets::device_rack();
        let mut tasks = Vec::new();
        for i in 0..24u64 {
            tasks.push(TaskSpec::new(i, 5_000.0, 1 << 10).on(Backend::Gpu));
        }
        let job = Job::new("burst", tasks).unwrap();
        let victim = topo.accel_devices(Some(AccelKind::Gpu))[0];
        let plan = FailurePlan::none().kill_and_recover(
            victim,
            SimTime::from_millis(8),
            SimTime::from_millis(30),
        );
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2()
                .with_debug_invariants(true)
                .with_autoscale(crate::config::AutoscaleConfig {
                    min_devices: 0,
                    max_devices: 4,
                    scale_up_queue: 1.0,
                    interval: SimDuration::from_millis(1),
                    provision_delay: SimDuration::from_millis(5),
                }),
        );
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 24);
        assert!(stats.metrics.counter("devices_lost") > 0);
    }

    /// Killing and recovering a node mid-job must leave the output
    /// manifest byte-identical to a failure-free run, under every
    /// masking fault-tolerance mode.
    #[test]
    fn kill_and_recover_preserves_outputs_across_ft_modes() {
        let topo = presets::small_disagg_cluster();
        let job = fanout_job(12, 3000.0, 1 << 14);
        let victim = topo.servers()[1];
        let plan = FailurePlan::none().kill_and_recover(
            victim,
            SimTime::from_millis(2),
            SimTime::from_millis(5),
        );
        for ft in [
            FtMode::Lineage,
            FtMode::Replication(2),
            FtMode::ErasureCoding(EcConfig::RS_4_2),
        ] {
            let cfg = RuntimeConfig::skadi_gen2()
                .with_ft(ft)
                .with_debug_invariants(true);
            let mut calm = Cluster::new(&topo, cfg.clone());
            calm.run(&job).unwrap();
            let mut stormy = Cluster::new(&topo, cfg);
            stormy
                .run_with_failures(&job, &plan)
                .unwrap_or_else(|e| panic!("{ft:?}: chaos run failed: {e}"));
            assert_eq!(
                calm.output_manifest(),
                stormy.output_manifest(),
                "{ft:?}: outputs diverged after kill+recover"
            );
        }
    }

    /// Killing the node hosting the scheduler mid-job must trigger an
    /// election; once a survivor takes over and reconstructs state, the
    /// run must converge to the failure-free manifest.
    #[test]
    fn scheduler_death_elects_new_leader_and_converges() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(8, 500.0, 1 << 12);
        let head = topo.servers()[0];
        let plan = FailurePlan::none().kill_and_recover(
            head,
            SimTime::from_micros(700),
            SimTime::from_micros(2_500),
        );
        for ft in [
            FtMode::Lineage,
            FtMode::Replication(2),
            FtMode::ErasureCoding(EcConfig::RS_4_2),
        ] {
            let cfg = RuntimeConfig::skadi_gen2()
                .with_ft(ft)
                .with_debug_invariants(true);
            let mut calm = Cluster::new(&topo, cfg.clone());
            calm.run(&job).unwrap();
            let mut stormy = Cluster::new(&topo, cfg);
            let stats = stormy
                .run_with_failures(&job, &plan)
                .unwrap_or_else(|e| panic!("{ft:?}: scheduler-kill run failed: {e}"));
            assert!(
                stats.metrics.counter("elections") >= 1,
                "{ft:?}: no election recorded"
            );
            assert!(
                stats.metrics.counter("failover_reconstruct_msgs") > 0,
                "{ft:?}: reconstruction was free"
            );
            assert_eq!(
                calm.output_manifest(),
                stormy.output_manifest(),
                "{ft:?}: outputs diverged after scheduler failover"
            );
        }
    }

    /// Destroying every server and device forever must end in a clean
    /// `TaskAbandoned`/`Stalled`, not a hang and not a silently-partial
    /// `Ok` (which is what the pre-failover runtime returned).
    #[test]
    fn permanent_total_loss_fails_cleanly() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 500.0, 1 << 12);
        let mut plan = FailurePlan::none();
        let mut victims = topo.servers();
        victims.extend(topo.memory_blades());
        victims.extend(topo.accel_devices(None));
        for (i, v) in victims.into_iter().enumerate() {
            // Stagger kills so no two share an instant (saves nothing
            // semantically, but keeps the trace readable when replayed).
            plan = plan.kill(v, SimTime::from_micros(300 + i as u64));
        }
        let cfg = RuntimeConfig::skadi_gen2()
            .with_ft(FtMode::Lineage)
            .with_debug_invariants(true);
        let mut c = Cluster::new(&topo, cfg);
        let err = c
            .run_with_failures(&job, &plan)
            .expect_err("total permanent loss must not report success");
        assert!(
            matches!(
                err,
                RuntimeError::TaskAbandoned(_) | RuntimeError::Stalled { .. }
            ),
            "expected TaskAbandoned/Stalled, got {err:?}"
        );
    }

    /// When every server is down at election time, the cluster stays
    /// headless until one recovers, then elects it and finishes the job.
    #[test]
    fn election_waits_for_server_recovery() {
        let topo = presets::small_disagg_cluster();
        let job = chain_job(6, 500.0, 1 << 12);
        let servers = topo.servers();
        let mut plan = FailurePlan::none();
        for (i, s) in servers.iter().copied().enumerate() {
            if i == 1 {
                // The sole survivor-to-be: down with the rest, back first.
                plan = plan.kill_and_recover(
                    s,
                    SimTime::from_micros(500),
                    SimTime::from_micros(2_000),
                );
            } else {
                plan = plan.kill_and_recover(
                    s,
                    SimTime::from_micros(500),
                    SimTime::from_micros(6_000),
                );
            }
        }
        let cfg = RuntimeConfig::skadi_gen2()
            .with_ft(FtMode::Lineage)
            .with_debug_invariants(true);
        let mut c = Cluster::new(&topo, cfg);
        let stats = c
            .run_with_failures(&job, &plan)
            .expect("job must finish once a server returns");
        assert_eq!(stats.finished, 6);
        assert!(stats.metrics.counter("elections") >= 1);
    }

    /// A live object losing its owner row is a recovery-path bug; under
    /// `debug_invariants` the consumer's resolution must flag it instead
    /// of silently repricing against the scheduler node.
    #[test]
    fn missing_owner_row_is_an_invariant_violation() {
        let topo = presets::small_disagg_cluster();
        let cfg = RuntimeConfig::skadi_gen2().with_debug_invariants(true);
        let mut c = Cluster::new(&topo, cfg);
        let job = chain_job(3, 500.0, 1 << 12);
        let mut queue: EventQueue<Event> = EventQueue::new();
        c.init_job(&job, &mut queue, &HashMap::new()).unwrap();
        let mut dropped = false;
        let mut steps = 0u32;
        while let Some((now, ev)) = queue.pop() {
            steps += 1;
            assert!(steps < 10_000, "white-box pump did not terminate");
            c.handle(now, ev, &mut queue);
            if !dropped && c.tasks[&TaskId(0)].state == TaskState::Finished {
                let obj = c.object_of[&TaskId(0)];
                c.own.remove(obj).expect("finished task must own a row");
                dropped = true;
            }
            if c.fatal.is_some() {
                break;
            }
        }
        assert!(dropped, "producer never finished");
        match c.fatal {
            Some(RuntimeError::InvariantViolation(ref msg)) => {
                assert!(msg.contains("no owner row"), "unexpected message: {msg}");
            }
            ref other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod actor_tests {
    use super::*;
    use crate::task::{ActorId, TaskSpec};
    use skadi_dcsim::topology::presets;

    /// `n` independent method calls on one actor.
    fn actor_job(n: u64, compute_us: f64) -> Job {
        let actor = ActorId(7);
        let tasks = (0..n)
            .map(|i| TaskSpec::new(i, compute_us, 1 << 10).on_actor(actor))
            .collect();
        Job::new("actor-methods", tasks).unwrap()
    }

    #[test]
    fn actor_methods_share_one_node() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let _ = c.run(&actor_job(8, 500.0)).unwrap();
        let nodes: std::collections::HashSet<_> = c.tasks.values().filter_map(|r| r.node).collect();
        assert_eq!(nodes.len(), 1, "actor methods spread across {nodes:?}");
    }

    #[test]
    fn actor_methods_serialize() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&actor_job(8, 1000.0)).unwrap();
        // 8 x 1 ms methods with no dependencies would parallelize freely
        // as plain tasks; on an actor they serialize to >= 8 ms.
        assert!(
            stats.makespan >= SimDuration::from_millis(8),
            "makespan {}",
            stats.makespan
        );
        // No two method executions overlap.
        let mut spans: Vec<(SimTime, SimTime)> = c
            .tasks
            .values()
            .map(|r| (r.started_at.unwrap(), r.finished_at.unwrap()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn plain_tasks_outpace_actor_methods() {
        let topo = presets::small_disagg_cluster();
        let plain = Job::new(
            "plain",
            (0..8).map(|i| TaskSpec::new(i, 1000.0, 1 << 10)).collect(),
        )
        .unwrap();
        let mut c1 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let p = c1.run(&plain).unwrap();
        let mut c2 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let a = c2.run(&actor_job(8, 1000.0)).unwrap();
        assert!(p.makespan < a.makespan);
    }

    #[test]
    fn actor_restarts_elsewhere_after_node_failure() {
        let topo = presets::small_disagg_cluster();
        // Chain of methods so the failure hits mid-sequence.
        let actor = ActorId(1);
        let mut tasks = vec![TaskSpec::new(0, 3000.0, 1 << 12).on_actor(actor)];
        for i in 1..6 {
            tasks.push(
                TaskSpec::new(i, 3000.0, 1 << 12)
                    .after(TaskId(i - 1), 1 << 12)
                    .on_actor(actor),
            );
        }
        let job = Job::new("actor-chain", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        // Find where the actor gets pinned on a dry run, then kill it.
        let _ = c.run(&job).unwrap();
        let pinned = c.tasks[&TaskId(0)].node.unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let plan = FailurePlan::none().kill(pinned, SimTime::from_millis(7));
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 6);
        assert_eq!(stats.abandoned, 0);
        // Methods re-run after the failure live on a different node.
        let last_node = c.tasks[&TaskId(5)].node.unwrap();
        assert_ne!(last_node, pinned);
    }

    /// Killing the actor's node mid-chain and recovering it must leave
    /// the output manifest identical to a failure-free run, per FT mode.
    #[test]
    fn actor_chain_outputs_survive_kill_and_recover() {
        let topo = presets::small_disagg_cluster();
        let actor = ActorId(1);
        let mut tasks = vec![TaskSpec::new(0, 3000.0, 1 << 12).on_actor(actor)];
        for i in 1..6 {
            tasks.push(
                TaskSpec::new(i, 3000.0, 1 << 12)
                    .after(TaskId(i - 1), 1 << 12)
                    .on_actor(actor),
            );
        }
        let job = Job::new("actor-chain", tasks).unwrap();
        for ft in [
            FtMode::Lineage,
            FtMode::Replication(2),
            FtMode::ErasureCoding(EcConfig::RS_4_2),
        ] {
            let cfg = RuntimeConfig::skadi_gen2()
                .with_ft(ft)
                .with_debug_invariants(true);
            let mut calm = Cluster::new(&topo, cfg.clone());
            calm.run(&job).unwrap();
            let pinned = calm.tasks[&TaskId(0)].node.unwrap();
            let mut stormy = Cluster::new(&topo, cfg);
            let plan = FailurePlan::none().kill_and_recover(
                pinned,
                SimTime::from_millis(7),
                SimTime::from_millis(10),
            );
            stormy
                .run_with_failures(&job, &plan)
                .unwrap_or_else(|e| panic!("{ft:?}: actor chaos run failed: {e}"));
            assert_eq!(
                calm.output_manifest(),
                stormy.output_manifest(),
                "{ft:?}: actor outputs diverged after kill+recover"
            );
        }
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::task::TaskSpec;
    use skadi_dcsim::topology::{
        presets, AccelKind, AccelSpec, DurableSpec, MemoryBladeSpec, ServerSpec, TopologyBuilder,
    };

    /// A topology with tiny HBM so device outputs overflow immediately.
    fn tiny_hbm_topo() -> Topology {
        TopologyBuilder::new()
            .rack(|r| {
                r.servers(2, ServerSpec::default());
                r.accel_device(
                    AccelKind::Gpu,
                    AccelSpec {
                        hbm_bytes: 8 << 20,
                        ..AccelSpec::default()
                    },
                );
                r.memory_blade(MemoryBladeSpec {
                    dram_bytes: 1 << 30,
                    ..MemoryBladeSpec::default()
                });
            })
            .durable_storage(DurableSpec::default())
            .build()
    }

    #[test]
    fn hbm_overflow_spills_to_disagg_memory_mid_job() {
        let topo = tiny_hbm_topo();
        // Four 5 MiB GPU outputs into 8 MiB HBM: spills must happen.
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec::new(i, 500.0, 5 << 20).on(Backend::Gpu))
            .collect();
        let job = Job::new("spilly", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.finished, 4);
        assert!(stats.spills > 0, "expected HBM spills");
        assert!(stats.spill_bytes >= 5 << 20);
        // Gen-2 spills to the blade, not to durable storage.
        assert_eq!(stats.durable_trips, 0);
    }

    #[test]
    fn oversized_output_falls_back_to_durable() {
        let topo = tiny_hbm_topo();
        // A 16 MiB output cannot fit 8 MiB HBM at all; with a 1 GiB blade
        // the cascade handles it, so shrink the blade out of the picture
        // by filling it: use an output larger than blade + HBM.
        let job = Job::new(
            "huge",
            vec![TaskSpec::new(0, 500.0, 2 << 30).on(Backend::Gpu)],
        )
        .unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.finished, 1);
        assert!(
            stats.durable_trips > 0,
            "output larger than all memory tiers must land durable"
        );
    }

    #[test]
    fn recovered_node_is_reusable() {
        let topo = presets::server_cluster(1, 2);
        let victim = topo.servers()[1];
        // Two waves of tasks; the node dies during wave 1 and recovers
        // before wave 2.
        let mut tasks = Vec::new();
        for i in 0..8u64 {
            tasks.push(TaskSpec::new(i, 2_000.0, 1 << 10));
        }
        for i in 8..16u64 {
            tasks.push(TaskSpec::new(i, 2_000.0, 1 << 10).after(TaskId(i - 8), 1 << 10));
        }
        let job = Job::new("waves", tasks).unwrap();
        let plan = FailurePlan::none().kill_and_recover(
            victim,
            SimTime::from_millis(1),
            SimTime::from_millis(3),
        );
        // Round-robin placement guarantees the recovered node re-enters
        // the rotation (data-centric would legitimately keep following
        // the survivor's data).
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_placement(crate::PlacementPolicy::RoundRobin),
        );
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 16);
        assert_eq!(stats.abandoned, 0);
        // Wave-2 tasks land on the recovered node again.
        let used_recovered = c
            .tasks
            .values()
            .any(|r| r.node == Some(victim) && r.finished_at > Some(SimTime::from_millis(3)));
        assert!(used_recovered, "recovered node never reused");
    }

    #[test]
    fn serverful_pools_isolate_systems() {
        let topo = presets::small_disagg_cluster();
        let tasks = vec![
            TaskSpec::new(0, 500.0, 1 << 10).in_system("alpha"),
            TaskSpec::new(1, 500.0, 1 << 10).in_system("beta"),
        ];
        let job = Job::new("silos", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::serverful());
        let _ = c.run(&job).unwrap();
        let n0 = c.tasks[&TaskId(0)].node.unwrap();
        let n1 = c.tasks[&TaskId(1)].node.unwrap();
        assert_ne!(n0, n1, "distinct systems must use distinct silo nodes");
    }

    #[test]
    fn utilization_is_sane() {
        let topo = presets::server_cluster(1, 1);
        // One serial chain on a 16-slot server: utilization ~ 1/16.
        let mut tasks = vec![TaskSpec::new(0, 10_000.0, 1 << 10)];
        for i in 1..4u64 {
            tasks.push(TaskSpec::new(i, 10_000.0, 1 << 10).after(TaskId(i - 1), 1 << 10));
        }
        let job = Job::new("serial", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        assert!(stats.utilization > 0.0);
        assert!(
            stats.utilization <= 1.0 / 16.0 + 1e-6,
            "{}",
            stats.utilization
        );
    }

    #[test]
    fn mixed_backends_complete_on_device_rack() {
        let topo = presets::device_rack();
        let tasks = vec![
            TaskSpec::new(0, 500.0, 1 << 16),
            TaskSpec::new(1, 500.0, 1 << 16)
                .after(TaskId(0), 1 << 16)
                .on(Backend::Gpu),
            TaskSpec::new(2, 500.0, 1 << 16)
                .after(TaskId(1), 1 << 16)
                .on(Backend::Fpga),
            TaskSpec::new(3, 500.0, 1 << 16).after(TaskId(2), 1 << 16),
        ];
        let job = Job::new("hetero", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.finished, 4);
        // Tasks landed on the matching device classes.
        let gpu_node = c.tasks[&TaskId(1)].node.unwrap();
        let fpga_node = c.tasks[&TaskId(2)].node.unwrap();
        assert!(matches!(
            c.topo.node(gpu_node).kind,
            NodeKind::AccelDevice(AccelKind::Gpu, _)
        ));
        assert!(matches!(
            c.topo.node(fpga_node).kind,
            NodeKind::AccelDevice(AccelKind::Fpga, _)
        ));
    }
}

#[cfg(test)]
mod pass_by_value_tests {
    use super::*;
    use crate::task::TaskSpec;
    use skadi_dcsim::topology::presets;

    fn tiny_chain(n: u64) -> Job {
        let mut tasks = vec![TaskSpec::new(0, 20.0, 256)];
        for i in 1..n {
            tasks.push(TaskSpec::new(i, 20.0, 256).after(TaskId(i - 1), 256));
        }
        Job::new("tiny-chain", tasks).unwrap()
    }

    #[test]
    fn inlining_removes_resolution_for_small_values() {
        let topo = presets::small_disagg_cluster();
        let mut by_ref = Cluster::new(&topo, RuntimeConfig::skadi_gen1());
        let r = by_ref.run(&tiny_chain(16)).unwrap();
        let mut cfg = RuntimeConfig::skadi_gen1();
        cfg.pass_by_value_max = 1024;
        let mut by_val = Cluster::new(&topo, cfg);
        let v = by_val.run(&tiny_chain(16)).unwrap();
        assert_eq!(v.metrics.counter("inlined_values"), 15);
        assert_eq!(v.stall_total, SimDuration::ZERO);
        assert!(
            v.makespan < r.makespan,
            "by-value {} vs by-reference {}",
            v.makespan,
            r.makespan
        );
    }

    #[test]
    fn large_values_still_go_by_reference() {
        let topo = presets::small_disagg_cluster();
        let mut cfg = RuntimeConfig::skadi_gen1();
        cfg.pass_by_value_max = 1024;
        let job = Job::new(
            "big-edge",
            vec![
                TaskSpec::new(0, 20.0, 1 << 20),
                TaskSpec::new(1, 20.0, 256).after(TaskId(0), 1 << 20),
            ],
        )
        .unwrap();
        let mut c = Cluster::new(&topo, cfg);
        let stats = c.run(&job).unwrap();
        assert_eq!(stats.metrics.counter("inlined_values"), 0);
    }
}

#[cfg(test)]
mod multi_job_tests {
    use super::*;
    use crate::task::TaskSpec;
    use skadi_dcsim::topology::presets;

    fn job(name: &str, n: u64, compute_us: f64) -> Job {
        let tasks = (0..n)
            .map(|i| TaskSpec::new(i, compute_us, 1 << 12))
            .collect();
        Job::new(name, tasks).unwrap()
    }

    #[test]
    fn staggered_jobs_respect_arrivals() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let (per_job, stats) = c
            .run_jobs(
                &[
                    (job("a", 8, 1000.0), SimTime::ZERO),
                    (job("b", 8, 1000.0), SimTime::from_millis(5)),
                ],
                &FailurePlan::none(),
            )
            .unwrap();
        assert_eq!(stats.finished, 16);
        assert_eq!(per_job.len(), 2);
        assert_eq!(per_job[1].arrival, SimTime::from_millis(5));
        // Job b's tasks started only after its arrival.
        // (Its completion is measured from arrival, so it is comparable
        // to job a's.)
        assert!(stats.makespan >= SimDuration::from_millis(5));
        assert!(per_job[0].completion > SimDuration::ZERO);
        assert!(per_job[1].completion > SimDuration::ZERO);
    }

    #[test]
    fn sharing_beats_silos_under_asymmetric_load() {
        // The consolidation argument: a burst can borrow the capacity a
        // siloed neighbor would leave idle.
        let topo = presets::small_disagg_cluster();
        let big = job("big", 256, 2000.0);
        let small = job("small", 32, 2000.0);
        // Shared: both jobs on the full cluster; the small one arrives
        // while the big one is draining.
        let mut shared = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let (per_job, _) = shared
            .run_jobs(
                &[
                    (big.clone(), SimTime::ZERO),
                    (small.clone(), SimTime::from_millis(5)),
                ],
                &FailurePlan::none(),
            )
            .unwrap();
        // Siloed: each job owns half the servers (1 rack each).
        let half = presets::server_cluster(1, 4);
        let mut silo_a = Cluster::new(&half, RuntimeConfig::skadi_gen2());
        let sa = silo_a.run(&big).unwrap();
        let mut silo_b = Cluster::new(&half, RuntimeConfig::skadi_gen2());
        let sb = silo_b.run(&small).unwrap();
        let shared_worst = per_job.iter().map(|p| p.completion).max().unwrap();
        let silo_worst = sa.makespan.max(sb.makespan);
        assert!(
            shared_worst < silo_worst,
            "shared {shared_worst} vs silo {silo_worst}"
        );
    }

    #[test]
    fn multi_job_with_failure_recovers_both() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let plan = FailurePlan::none().kill(topo.servers()[1], SimTime::from_millis(2));
        let (per_job, stats) = c
            .run_jobs(
                &[
                    (job("a", 16, 3000.0), SimTime::ZERO),
                    (job("b", 16, 3000.0), SimTime::from_millis(1)),
                ],
                &plan,
            )
            .unwrap();
        assert_eq!(stats.finished, 32);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(per_job.len(), 2);
    }
}

#[cfg(test)]
mod rack_failure_tests {
    use super::*;
    use crate::task::TaskSpec;
    use skadi_dcsim::topology::presets;

    #[test]
    fn rack_diverse_replication_survives_whole_rack_loss() {
        let topo = presets::small_disagg_cluster();
        let mut tasks = vec![TaskSpec::new(0, 3000.0, 4 << 20)];
        for i in 1..8u64 {
            tasks.push(TaskSpec::new(i, 3000.0, 4 << 20).after(TaskId(i - 1), 4 << 20));
        }
        let job = Job::new("rack-chain", tasks).unwrap();
        let rack = topo.rack_of(topo.servers()[0]);
        let plan = FailurePlan::none().kill_rack(&topo, rack, SimTime::from_millis(8));
        let mut c = Cluster::new(
            &topo,
            RuntimeConfig::skadi_gen2().with_ft(FtMode::Replication(2)),
        );
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 8);
        assert_eq!(stats.abandoned, 0);
        // Replicas are placed rack-diverse, so at most the in-flight task
        // re-runs per loss; lineage would recompute ancestors too.
        let mut lineage = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let l = lineage.run_with_failures(&job, &plan).unwrap();
        assert_eq!(l.finished, 8);
        assert!(stats.retries <= l.retries);
    }

    #[test]
    fn losing_the_durable_rack_is_survivable_for_skadi() {
        // Skadi never touches durable storage, so killing its (synthetic)
        // rack changes nothing.
        let topo = presets::small_disagg_cluster();
        let durable = topo.durable_storage().unwrap();
        let rack = topo.rack_of(durable);
        let job = Job::new(
            "no-durable",
            (0..6).map(|i| TaskSpec::new(i, 1000.0, 1 << 16)).collect(),
        )
        .unwrap();
        let plan = FailurePlan::none().kill_rack(&topo, rack, SimTime::from_micros(10));
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run_with_failures(&job, &plan).unwrap();
        assert_eq!(stats.finished, 6);
        assert_eq!(stats.durable_trips, 0);
    }
}

#[cfg(test)]
mod tracing_tests {
    use super::*;
    use crate::task::TaskSpec;
    use skadi_dcsim::topology::presets;

    fn chain(n: u64, compute_us: f64, bytes: u64) -> Job {
        let mut tasks = vec![TaskSpec::new(0, compute_us, bytes)];
        for i in 1..n {
            tasks.push(TaskSpec::new(i, compute_us, bytes).after(TaskId(i - 1), bytes));
        }
        Job::new("chain", tasks).unwrap()
    }

    fn short_gpu_ops(n: u64) -> Job {
        let mut tasks = vec![TaskSpec::new(0, 10.0, 4 << 10).on(Backend::Gpu)];
        for i in 1..n {
            tasks.push(
                TaskSpec::new(i, 10.0, 4 << 10)
                    .after(TaskId(i - 1), 4 << 10)
                    .on(Backend::Gpu),
            );
        }
        Job::new("short-ops", tasks).unwrap()
    }

    #[test]
    fn untraced_runs_produce_empty_traces() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&chain(5, 100.0, 1 << 10)).unwrap();
        assert!(stats.trace.is_empty());
    }

    #[test]
    fn traced_chain_is_wellformed_and_covers_the_lifecycle() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_tracing(true));
        let stats = c.run(&chain(6, 100.0, 1 << 16)).unwrap();
        let trace = &stats.trace;
        trace.validate().expect("well-formed span tree");
        assert_eq!(trace.count_category(Category::Job), 1);
        assert_eq!(trace.count_category(Category::Task), 6);
        assert_eq!(trace.count_category(Category::Run), 6);
        assert_eq!(trace.count_category(Category::Wait), 6);
        assert_eq!(trace.count_category(Category::Dispatch), 6);
        assert_eq!(trace.count_category(Category::Placement), 6);
        // 5 resolved edges, each a consumer-side round trip.
        assert_eq!(trace.count_category(Category::Resolve), 5);
        assert_eq!(trace.count_category(Category::TierAccess), 5);
        assert!(trace.count_category(Category::Control) > 0);
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        let topo = presets::small_disagg_cluster();
        let job = chain(8, 250.0, 1 << 18);
        let mut plain = Cluster::new(&topo, RuntimeConfig::skadi_gen1());
        let a = plain.run(&job).unwrap();
        let mut traced = Cluster::new(&topo, RuntimeConfig::skadi_gen1().with_tracing(true));
        let b = traced.run(&job).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stall_total, b.stall_total);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn same_seed_traces_are_identical() {
        let topo = presets::small_disagg_cluster();
        let job = chain(6, 100.0, 1 << 16);
        let run = || {
            let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_tracing(true));
            c.run(&job).unwrap().trace
        };
        let (t1, t2) = (run(), run());
        assert_eq!(t1, t2);
        assert_eq!(t1.to_chrome_json(), t2.to_chrome_json());
    }

    #[test]
    fn gen1_spends_more_control_messages_per_short_op_than_gen2() {
        // The paper's observation: on Gen-1 every short-lived device op
        // pays a multi-message pull round trip through the DPU, while
        // Gen-2's push resolution collapses it to one update.
        let topo = presets::device_rack();
        let job = short_gpu_ops(20);
        let trace_of = |cfg: RuntimeConfig| {
            let mut c = Cluster::new(&topo, cfg.with_tracing(true));
            c.run(&job).unwrap().trace
        };
        let g1 = trace_of(RuntimeConfig::skadi_gen1());
        let g2 = trace_of(RuntimeConfig::skadi_gen2());
        g1.validate().unwrap();
        g2.validate().unwrap();
        let ops = 19.0; // resolved edges
        let g1_per_op = g1.count_category(Category::Control) as f64 / ops;
        let g2_per_op = g2.count_category(Category::Control) as f64 / ops;
        assert!(
            g1_per_op > g2_per_op,
            "gen1 {g1_per_op} control spans/op should exceed gen2 {g2_per_op}"
        );
    }

    #[test]
    fn critical_path_summary_names_the_chain() {
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_tracing(true));
        let stats = c.run(&chain(5, 500.0, 1 << 16)).unwrap();
        let path = stats.trace.critical_path();
        assert_eq!(path.len(), 5, "a chain's critical path is every task");
        let summary = stats.trace.critical_path_summary(5);
        assert!(summary.contains("critical path: 5 tasks"));
    }

    #[test]
    fn spills_and_device_utilization_are_recorded() {
        let topo = presets::small_disagg_cluster();
        let gpu_mem = topo
            .accel_devices(None)
            .iter()
            .map(|d| topo.node(*d).kind.memory_bytes())
            .min()
            .unwrap();
        // GPU tasks whose outputs overflow HBM force spills.
        let mut tasks = vec![TaskSpec::new(0, 100.0, gpu_mem / 2).on(Backend::Gpu)];
        for i in 1..4 {
            tasks.push(
                TaskSpec::new(i, 100.0, gpu_mem / 2)
                    .after(TaskId(i - 1), 1 << 10)
                    .on(Backend::Gpu),
            );
        }
        let job = Job::new("hbm-overflow", tasks).unwrap();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_tracing(true));
        let stats = c.run(&job).unwrap();
        assert!(stats.spills > 0, "outputs should overflow HBM");
        assert_eq!(
            stats.trace.count_category(Category::Spill) as u64,
            stats.spills
        );
        // Tier counters from the caching layer are folded into the sink.
        assert!(stats.metrics.counter_across_labels("tier.put") > 0);
        assert!(stats.metrics.counter_across_labels("tier.evict") > 0);
        // The device pool saw busy time.
        let util = stats.metrics.gauge("device.util").expect("gauge recorded");
        assert!(util.overall_mean() > 0.0);
    }
}

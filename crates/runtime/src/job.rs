//! Jobs (validated task DAGs) and run statistics.

use std::collections::{BTreeMap, HashMap};

use skadi_dcsim::network::NetStats;
use skadi_dcsim::span::Trace;
use skadi_dcsim::time::SimDuration;
use skadi_dcsim::trace::Metrics;
use skadi_flowgraph::physical::PhysicalGraph;

use crate::error::RuntimeError;
use crate::task::{TaskId, TaskSpec};

/// A validated set of tasks forming a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job name (reporting).
    pub name: String,
    /// The tasks, keyed by ID.
    pub tasks: BTreeMap<TaskId, TaskSpec>,
}

impl Job {
    /// Builds a job, validating that every dependency exists and the
    /// graph is acyclic.
    pub fn new(name: &str, tasks: Vec<TaskSpec>) -> Result<Job, RuntimeError> {
        let map: BTreeMap<TaskId, TaskSpec> = tasks.into_iter().map(|t| (t.id, t)).collect();
        for t in map.values() {
            for dep in t.inputs.keys() {
                if !map.contains_key(dep) {
                    return Err(RuntimeError::UnknownDependency {
                        task: t.id,
                        dep: *dep,
                    });
                }
            }
        }
        // Kahn's algorithm for cycle detection.
        let mut indeg: HashMap<TaskId, usize> =
            map.values().map(|t| (t.id, t.inputs.len())).collect();
        let mut ready: Vec<TaskId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(t, _)| *t)
            .collect();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            for candidate in map.values() {
                if candidate.inputs.contains_key(&t) {
                    let d = indeg.get_mut(&candidate.id).expect("task indexed");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(candidate.id);
                    }
                }
            }
        }
        if seen != map.len() {
            return Err(RuntimeError::CyclicJob);
        }
        Ok(Job {
            name: name.to_string(),
            tasks: map,
        })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the job has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total bytes carried by all edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.tasks.values().flat_map(|t| t.inputs.values()).sum()
    }

    /// Total compute across all tasks, microseconds.
    pub fn total_compute_us(&self) -> f64 {
        self.tasks.values().map(|t| t.compute_us).sum()
    }
}

/// Converts a physical sharded graph into a job: one task per physical
/// vertex, labeled as belonging to `system`.
pub fn job_from_physical(name: &str, g: &PhysicalGraph, system: &str) -> Result<Job, RuntimeError> {
    let mut tasks = Vec::with_capacity(g.len());
    for v in g.vertices() {
        // Sinks hold the job result but declare no output of their own;
        // size them by their inflow so downstream consumers (pipeline
        // bridges, durable bounces) move the real result.
        let inflow: u64 = g.in_edges(v.id).iter().map(|e| e.bytes).sum();
        let out = match v.kind {
            skadi_flowgraph::physical::PVertexKind::Sink => v.output_bytes.max(inflow),
            _ => v.output_bytes,
        };
        let mut spec = TaskSpec::new(v.id.0 as u64, v.compute_us, out.max(1))
            .on(v.backend)
            .in_system(system)
            .named(&v.op);
        for e in g.in_edges(v.id) {
            spec = spec.after(TaskId(e.from.0 as u64), e.bytes.max(1));
        }
        tasks.push(spec);
    }
    Job::new(name, tasks)
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Wall-clock (virtual) job completion time.
    pub makespan: SimDuration,
    /// Tasks that reached `Finished`.
    pub finished: u64,
    /// Task executions beyond the first attempt (lineage re-runs).
    pub retries: u64,
    /// Tasks abandoned after exhausting retries (0 on success).
    pub abandoned: u64,
    /// Network traffic by hop class.
    pub net: NetStats,
    /// Trips to durable storage (reads + writes).
    pub durable_trips: u64,
    /// Total protocol-induced stall across all input resolutions.
    pub stall_total: SimDuration,
    /// Total busy compute time across all tasks.
    pub compute_total: SimDuration,
    /// Monetary-ish cost in abstract units (deployment-dependent model).
    pub cost_units: f64,
    /// Mean compute-slot utilization over the job's makespan, in [0, 1]
    /// (busy slot-time / total slot-time across compute-capable nodes).
    pub utilization: f64,
    /// Objects spilled by the caching layer.
    pub spills: u64,
    /// Bytes spilled.
    pub spill_bytes: u64,
    /// Full metric sink (histograms: `stall`, `task.wait`, `task.run`,
    /// `query_latency` — one sample per job, so multi-job runs record a
    /// latency distribution with p50/p99; counters: `control_msgs`,
    /// `cold_starts`, ...). Exportable via
    /// [`Metrics::to_prometheus`](skadi_dcsim::trace::Metrics::to_prometheus).
    pub metrics: Metrics,
    /// Causal span trace of the run. Empty unless the config enabled
    /// [`RuntimeConfig::tracing`](crate::config::RuntimeConfig::tracing).
    pub trace: Trace,
    /// Measured output sizes (real encoded bytes) per task, for tasks
    /// executed through the data plane ([`Cluster::set_executor`]);
    /// empty on estimate-only runs.
    ///
    /// [`Cluster::set_executor`]: crate::cluster::Cluster::set_executor
    pub measured_output_bytes: BTreeMap<TaskId, u64>,
}

impl JobStats {
    /// Mean protocol stall per resolved input edge.
    pub fn mean_stall(&self) -> SimDuration {
        match self.metrics.histogram("stall") {
            Some(h) if !h.is_empty() => h.mean(),
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_flowgraph::logical::FlowGraph;
    use skadi_flowgraph::lower::{lower_graph, LowerConfig};
    use skadi_ir::BackendPolicy;

    #[test]
    fn job_validates_dependencies() {
        let err = Job::new("bad", vec![TaskSpec::new(0, 1.0, 1).after(TaskId(9), 10)]).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownDependency { .. }));
    }

    #[test]
    fn job_rejects_cycles() {
        let err = Job::new(
            "cyclic",
            vec![
                TaskSpec::new(0, 1.0, 1).after(TaskId(1), 1),
                TaskSpec::new(1, 1.0, 1).after(TaskId(0), 1),
            ],
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::CyclicJob);
    }

    #[test]
    fn job_aggregates() {
        let job = Job::new(
            "ok",
            vec![
                TaskSpec::new(0, 10.0, 100),
                TaskSpec::new(1, 20.0, 100).after(TaskId(0), 64),
            ],
        )
        .unwrap();
        assert_eq!(job.len(), 2);
        assert_eq!(job.total_edge_bytes(), 64);
        assert!((job.total_compute_us() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn physical_graph_converts() {
        let mut g = FlowGraph::new();
        let src = g.add_source("in", 1 << 20, 8 << 20);
        let filt = g.add_ir_op("rel.filter", 1 << 20, 4 << 20);
        let agg = g.add_ir_op("rel.aggregate", 1 << 20, 1024);
        g.connect(src, filt).unwrap();
        g.connect_keyed(filt, agg, "k").unwrap();
        let phys = lower_graph(&g, &LowerConfig::new(4, BackendPolicy::cost_based())).unwrap();
        let job = job_from_physical("pipeline", &phys, "sql").unwrap();
        assert_eq!(job.len(), phys.len());
        // Shuffle edges: 4 producers x 4 consumers on each agg task.
        let agg_task = job
            .tasks
            .values()
            .find(|t| t.op == "rel.aggregate")
            .unwrap();
        assert_eq!(agg_task.inputs.len(), 4);
        assert!(job.tasks.values().all(|t| t.system == "sql"));
    }
}

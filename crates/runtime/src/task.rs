//! Task specifications and lifecycle.
//!
//! One task executes one physical-graph vertex (one shard of one op). A
//! task produces exactly one output object; edges carry the producer's
//! output to consumers with per-edge byte counts.

use std::collections::BTreeMap;
use std::fmt;

use skadi_dcsim::time::SimTime;
use skadi_ir::Backend;

/// Identifies a task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifies a gang of tasks that must start together (SPMD sub-graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GangId(pub u32);

/// Identifies a stateful actor. All of an actor's method tasks run on the
/// node where the actor was first placed, one at a time, in submission
/// order — Ray's actor semantics (§2.3.1: "stateless tasks or stateful
/// actors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u64);

/// One schedulable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Identity within the job.
    pub id: TaskId,
    /// Op name (diagnostics only).
    pub op: String,
    /// Hardware class the task was lowered for.
    pub backend: Backend,
    /// Compute time on that backend, microseconds.
    pub compute_us: f64,
    /// Producer tasks and the bytes each edge carries.
    pub inputs: BTreeMap<TaskId, u64>,
    /// Output object size in bytes.
    pub output_bytes: u64,
    /// Which data system of an integrated pipeline this task belongs to
    /// (drives the serverful silo model of Fig 1a).
    pub system: String,
    /// Gang membership, if any.
    pub gang: Option<GangId>,
    /// The actor this task is a method call on, if any: pinned to the
    /// actor's node and serialized with its other methods.
    pub actor: Option<ActorId>,
}

impl TaskSpec {
    /// A minimal CPU task, for tests and hand-built jobs.
    pub fn new(id: u64, compute_us: f64, output_bytes: u64) -> Self {
        TaskSpec {
            id: TaskId(id),
            op: format!("op{id}"),
            backend: Backend::Cpu,
            compute_us,
            inputs: BTreeMap::new(),
            output_bytes,
            system: "default".to_string(),
            gang: None,
            actor: None,
        }
    }

    /// Adds a dependency edge carrying `bytes`.
    pub fn after(mut self, dep: TaskId, bytes: u64) -> Self {
        self.inputs.insert(dep, bytes);
        self
    }

    /// Sets the backend.
    pub fn on(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the system label.
    pub fn in_system(mut self, system: &str) -> Self {
        self.system = system.to_string();
        self
    }

    /// Joins a gang.
    pub fn in_gang(mut self, gang: GangId) -> Self {
        self.gang = Some(gang);
        self
    }

    /// Marks this task as a method call on the given actor.
    pub fn on_actor(mut self, actor: ActorId) -> Self {
        self.actor = Some(actor);
        self
    }

    /// Sets the op name.
    pub fn named(mut self, op: &str) -> Self {
        self.op = op.to_string();
        self
    }
}

/// Lifecycle of one task during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for producers to finish.
    Blocked,
    /// All inputs produced; waiting for placement.
    Ready,
    /// Placed on a node, waiting for a slot and for inputs to arrive.
    Dispatched,
    /// Executing.
    Running,
    /// Completed; output object exists.
    Finished,
    /// Aborted by a failure; may be retried via lineage.
    Failed,
}

/// Per-task bookkeeping during a run.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The immutable spec.
    pub spec: TaskSpec,
    /// Current state.
    pub state: TaskState,
    /// Node the task was placed on.
    pub node: Option<skadi_dcsim::topology::NodeId>,
    /// Unfinished producer count.
    pub pending_inputs: usize,
    /// When the task became ready.
    pub ready_at: Option<SimTime>,
    /// When it started executing.
    pub started_at: Option<SimTime>,
    /// When it finished.
    pub finished_at: Option<SimTime>,
    /// How many times the task has been (re)executed.
    pub attempts: u32,
}

impl TaskRecord {
    /// Fresh record for a spec.
    pub fn new(spec: TaskSpec) -> Self {
        let pending = spec.inputs.len();
        TaskRecord {
            spec,
            state: if pending == 0 {
                TaskState::Ready
            } else {
                TaskState::Blocked
            },
            node: None,
            pending_inputs: pending,
            ready_at: None,
            started_at: None,
            finished_at: None,
            attempts: 0,
        }
    }

    /// Queueing delay: dispatch-to-start.
    pub fn wait(&self) -> Option<skadi_dcsim::time::SimDuration> {
        match (self.ready_at, self.started_at) {
            (Some(r), Some(s)) => Some(s.saturating_since(r)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let t = TaskSpec::new(3, 100.0, 1 << 10)
            .after(TaskId(1), 512)
            .after(TaskId(2), 256)
            .on(Backend::Gpu)
            .in_system("ml")
            .named("tensor.matmul");
        assert_eq!(t.id, TaskId(3));
        assert_eq!(t.inputs.len(), 2);
        assert_eq!(t.inputs[&TaskId(1)], 512);
        assert_eq!(t.backend, Backend::Gpu);
        assert_eq!(t.system, "ml");
        assert_eq!(t.op, "tensor.matmul");
    }

    #[test]
    fn record_initial_state_depends_on_inputs() {
        let free = TaskRecord::new(TaskSpec::new(0, 1.0, 1));
        assert_eq!(free.state, TaskState::Ready);
        let blocked = TaskRecord::new(TaskSpec::new(1, 1.0, 1).after(TaskId(0), 10));
        assert_eq!(blocked.state, TaskState::Blocked);
        assert_eq!(blocked.pending_inputs, 1);
    }

    #[test]
    fn wait_requires_both_stamps() {
        let mut r = TaskRecord::new(TaskSpec::new(0, 1.0, 1));
        assert!(r.wait().is_none());
        r.ready_at = Some(SimTime::from_micros(5));
        r.started_at = Some(SimTime::from_micros(9));
        assert_eq!(r.wait().unwrap().as_micros(), 4);
    }
}

//! Lineage tracking and recovery planning.
//!
//! §2.1: "Skadi handles failures in two ways: (1) re-executes the graph
//! using lineage, or (2) uses a reliable caching layer with data
//! replication or EC." This module is mechanism (1): it records how every
//! object was produced and, when objects are lost, computes the minimal
//! transitive set of tasks to re-execute.

use std::collections::{BTreeSet, HashMap};

use crate::task::{TaskId, TaskSpec};

/// The lineage log: object provenance for every task output.
///
/// Task outputs and objects are 1:1 in this runtime, so lineage is keyed
/// by producing task.
#[derive(Debug, Clone, Default)]
pub struct LineageLog {
    /// task -> its spec (inputs define the lineage edges).
    specs: HashMap<TaskId, TaskSpec>,
}

impl LineageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        LineageLog::default()
    }

    /// Records a task spec.
    pub fn record(&mut self, spec: TaskSpec) {
        self.specs.insert(spec.id, spec);
    }

    /// The spec for a task, if recorded.
    pub fn spec(&self, id: TaskId) -> Option<&TaskSpec> {
        self.specs.get(&id)
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Computes the tasks to re-execute when the outputs of `lost` are
    /// gone, given a predicate telling whether a task's output is still
    /// available somewhere.
    ///
    /// The plan is transitively closed: if a lost task's *input* is also
    /// unavailable, its producer joins the plan, and so on. The returned
    /// set is sorted (deterministic) and respects dependency order when
    /// re-submitted (producers sort before consumers because recovery
    /// re-runs through the normal readiness machinery).
    pub fn recovery_plan(
        &self,
        lost: &[TaskId],
        available: impl Fn(TaskId) -> bool,
    ) -> Vec<TaskId> {
        let mut plan: BTreeSet<TaskId> = BTreeSet::new();
        let mut stack: Vec<TaskId> = lost.to_vec();
        while let Some(t) = stack.pop() {
            if plan.contains(&t) {
                continue;
            }
            let Some(spec) = self.specs.get(&t) else {
                continue;
            };
            plan.insert(t);
            for dep in spec.inputs.keys() {
                if !available(*dep) && !plan.contains(dep) {
                    stack.push(*dep);
                }
            }
        }
        plan.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain: 0 -> 1 -> 2 -> 3.
    fn chain() -> LineageLog {
        let mut log = LineageLog::new();
        log.record(TaskSpec::new(0, 1.0, 10));
        log.record(TaskSpec::new(1, 1.0, 10).after(TaskId(0), 10));
        log.record(TaskSpec::new(2, 1.0, 10).after(TaskId(1), 10));
        log.record(TaskSpec::new(3, 1.0, 10).after(TaskId(2), 10));
        log
    }

    #[test]
    fn direct_loss_with_available_inputs() {
        let log = chain();
        // Only task 2's output lost; task 1's output still cached.
        let plan = log.recovery_plan(&[TaskId(2)], |t| t != TaskId(2));
        assert_eq!(plan, vec![TaskId(2)]);
    }

    #[test]
    fn transitive_loss_recomputes_ancestors() {
        let log = chain();
        // Outputs of 1 and 2 both lost: recovering 2 needs 1 first.
        let gone = [TaskId(1), TaskId(2)];
        let plan = log.recovery_plan(&[TaskId(2)], |t| !gone.contains(&t));
        assert_eq!(plan, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn whole_chain_loss() {
        let log = chain();
        let plan = log.recovery_plan(&[TaskId(3)], |_| false);
        assert_eq!(plan, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn diamond_recovers_both_parents() {
        let mut log = LineageLog::new();
        log.record(TaskSpec::new(0, 1.0, 10));
        log.record(TaskSpec::new(1, 1.0, 10).after(TaskId(0), 1));
        log.record(TaskSpec::new(2, 1.0, 10).after(TaskId(0), 1));
        log.record(
            TaskSpec::new(3, 1.0, 10)
                .after(TaskId(1), 1)
                .after(TaskId(2), 1),
        );
        let gone = [TaskId(1), TaskId(2), TaskId(3)];
        let plan = log.recovery_plan(&[TaskId(3)], |t| !gone.contains(&t));
        assert_eq!(plan, vec![TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn unknown_tasks_ignored() {
        let log = chain();
        let plan = log.recovery_plan(&[TaskId(99)], |_| false);
        assert!(plan.is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let log = chain();
        let plan = log.recovery_plan(&[TaskId(2), TaskId(2)], |t| t != TaskId(2));
        assert_eq!(plan, vec![TaskId(2)]);
    }
}

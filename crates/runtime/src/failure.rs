//! Failure injection.
//!
//! Experiments schedule node failures at fixed virtual times (optionally
//! with recovery) so fault-tolerance comparisons are reproducible.

use skadi_dcsim::time::SimTime;
use skadi_dcsim::topology::{NodeId, RackId, Topology};

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node dies.
    pub at: SimTime,
    /// Which node dies.
    pub node: NodeId,
    /// When (if ever) the node rejoins, empty-handed.
    pub recovers_at: Option<SimTime>,
}

/// A compute slowdown window (straggler injection): tasks *started* on
/// `node` while the window is open run `factor` times slower than their
/// nominal duration. Overlapping windows compound multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// The straggling node.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Duration multiplier, > 1.0 for a straggler.
    pub factor: f64,
}

/// A deterministic failure schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailurePlan {
    failures: Vec<Failure>,
    slowdowns: Vec<Slowdown>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Appends a validated failure entry: two down-windows of the same
    /// node must not overlap (a node cannot die while already dead —
    /// such plans used to build silently and confuse recovery
    /// bookkeeping, e.g. a `Recover` event rejoining a node mid-way
    /// through its *other* down-window).
    fn push_failure(&mut self, node: NodeId, at: SimTime, recovers_at: Option<SimTime>) {
        if let Some(r) = recovers_at {
            assert!(r > at, "recovery must follow the failure");
        }
        for f in &self.failures {
            if f.node != node {
                continue;
            }
            // Half-open windows [at, recovers_at), None = forever.
            let old_before_new_ends = recovers_at.is_none_or(|end| f.at < end);
            let new_before_old_ends = f.recovers_at.is_none_or(|end| at < end);
            assert!(
                !(old_before_new_ends && new_before_old_ends),
                "overlapping failure windows for node {}: [{}, {:?}) and [{}, {:?})",
                node.0,
                f.at,
                f.recovers_at,
                at,
                recovers_at,
            );
        }
        self.failures.push(Failure {
            at,
            node,
            recovers_at,
        });
    }

    /// Adds a permanent failure.
    pub fn kill(mut self, node: NodeId, at: SimTime) -> Self {
        self.push_failure(node, at, None);
        self
    }

    /// Adds a failure with later recovery.
    pub fn kill_and_recover(mut self, node: NodeId, at: SimTime, recovers_at: SimTime) -> Self {
        self.push_failure(node, at, Some(recovers_at));
        self
    }

    /// Kills every node of a rack at once (correlated failure: ToR
    /// switch or power domain loss).
    pub fn kill_rack(mut self, topo: &Topology, rack: RackId, at: SimTime) -> Self {
        for node in topo.nodes() {
            if node.rack == rack {
                self.push_failure(node.id, at, None);
            }
        }
        self
    }

    /// Kills every node of a rack at once, all rejoining together at
    /// `recovers_at` (transient correlated failure — the interesting case
    /// is scheduling this *during* another node's recovery window).
    pub fn kill_rack_and_recover(
        mut self,
        topo: &Topology,
        rack: RackId,
        at: SimTime,
        recovers_at: SimTime,
    ) -> Self {
        for node in topo.nodes() {
            if node.rack == rack {
                self.push_failure(node.id, at, Some(recovers_at));
            }
        }
        self
    }

    /// Adds a compute slowdown window on `node` over `[from, until)`.
    pub fn slow(mut self, node: NodeId, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(until > from, "slowdown window must be non-empty");
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.slowdowns.push(Slowdown {
            node,
            from,
            until,
            factor,
        });
        self
    }

    /// All failures, in injection order.
    pub fn failures(&self) -> &[Failure] {
        &self.failures
    }

    /// All slowdown windows, in injection order.
    pub fn slowdowns(&self) -> &[Slowdown] {
        &self.slowdowns
    }

    /// The combined slowdown multiplier for a task starting on `node` at
    /// `at` (1.0 when no window applies).
    pub fn slowdown_factor(&self, node: NodeId, at: SimTime) -> f64 {
        self.slowdowns
            .iter()
            .filter(|s| s.node == node && s.from <= at && at < s.until)
            .map(|s| s.factor)
            .product()
    }

    /// The earliest scheduled recovery strictly after `after` among
    /// `nodes`, or `None` when none of them ever rejoins. Lets the
    /// scheduler park a task that currently has no eligible node until
    /// capacity is due back, instead of abandoning it (or spinning).
    pub fn next_recovery_of(&self, nodes: &[NodeId], after: SimTime) -> Option<SimTime> {
        self.failures
            .iter()
            .filter(|f| nodes.contains(&f.node))
            .filter_map(|f| f.recovers_at)
            .filter(|r| *r > after)
            .min()
    }

    /// True if no failures or slowdowns are planned.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty() && self.slowdowns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_schedules() {
        let plan = FailurePlan::none()
            .kill(NodeId(1), SimTime::from_millis(5))
            .kill_and_recover(NodeId(2), SimTime::from_millis(7), SimTime::from_millis(9));
        assert_eq!(plan.failures().len(), 2);
        assert_eq!(plan.failures()[0].recovers_at, None);
        assert!(plan.failures()[1].recovers_at.is_some());
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn kill_rack_expands_to_members() {
        use skadi_dcsim::topology::presets;
        let topo = presets::small_disagg_cluster();
        let rack = topo.rack_of(topo.servers()[0]);
        let plan = FailurePlan::none().kill_rack(&topo, rack, SimTime::from_millis(1));
        let members = topo.nodes().iter().filter(|n| n.rack == rack).count();
        assert_eq!(plan.failures().len(), members);
        assert!(plan
            .failures()
            .iter()
            .all(|f| f.at == SimTime::from_millis(1)));
    }

    #[test]
    fn slowdown_windows_compound() {
        let plan = FailurePlan::none()
            .slow(
                NodeId(3),
                SimTime::from_millis(1),
                SimTime::from_millis(5),
                2.0,
            )
            .slow(
                NodeId(3),
                SimTime::from_millis(4),
                SimTime::from_millis(8),
                3.0,
            );
        assert!(!plan.is_empty());
        assert_eq!(plan.slowdowns().len(), 2);
        // Outside any window, and on other nodes: no slowdown.
        assert_eq!(plan.slowdown_factor(NodeId(3), SimTime::ZERO), 1.0);
        assert_eq!(
            plan.slowdown_factor(NodeId(4), SimTime::from_millis(2)),
            1.0
        );
        // Single window.
        assert_eq!(
            plan.slowdown_factor(NodeId(3), SimTime::from_millis(2)),
            2.0
        );
        // Overlap compounds multiplicatively.
        assert_eq!(
            plan.slowdown_factor(NodeId(3), SimTime::from_millis(4)),
            6.0
        );
        // `until` is exclusive.
        assert_eq!(
            plan.slowdown_factor(NodeId(3), SimTime::from_millis(8)),
            1.0
        );
    }

    #[test]
    fn kill_rack_and_recover_rejoins_members() {
        use skadi_dcsim::topology::presets;
        let topo = presets::small_disagg_cluster();
        let rack = topo.rack_of(topo.servers()[0]);
        let plan = FailurePlan::none().kill_rack_and_recover(
            &topo,
            rack,
            SimTime::from_millis(1),
            SimTime::from_millis(4),
        );
        let members = topo.nodes().iter().filter(|n| n.rack == rack).count();
        assert_eq!(plan.failures().len(), members);
        assert!(plan
            .failures()
            .iter()
            .all(|f| f.recovers_at == Some(SimTime::from_millis(4))));
    }

    #[test]
    #[should_panic(expected = "recovery must follow")]
    fn recovery_before_failure_rejected() {
        let _ = FailurePlan::none().kill_and_recover(
            NodeId(0),
            SimTime::from_millis(9),
            SimTime::from_millis(7),
        );
    }

    #[test]
    #[should_panic(expected = "overlapping failure windows")]
    fn duplicate_kill_rejected() {
        // Two permanent kills of the same node: both windows run forever.
        let _ = FailurePlan::none()
            .kill(NodeId(3), SimTime::from_millis(2))
            .kill(NodeId(3), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "overlapping failure windows")]
    fn kill_then_interleaved_recover_rejected() {
        // A permanent kill at 2 ms overlaps a kill/recover cycle at 4-6 ms.
        let _ = FailurePlan::none()
            .kill(NodeId(7), SimTime::from_millis(2))
            .kill_and_recover(NodeId(7), SimTime::from_millis(4), SimTime::from_millis(6));
    }

    #[test]
    fn back_to_back_windows_allowed() {
        // Half-open windows: a node may die again the instant it rejoins,
        // and different nodes never conflict.
        let plan = FailurePlan::none()
            .kill_and_recover(NodeId(1), SimTime::from_millis(1), SimTime::from_millis(3))
            .kill_and_recover(NodeId(1), SimTime::from_millis(3), SimTime::from_millis(5))
            .kill(NodeId(2), SimTime::from_millis(2));
        assert_eq!(plan.failures().len(), 3);
    }

    #[test]
    fn next_recovery_skips_permanent_and_foreign_nodes() {
        let plan = FailurePlan::none()
            .kill(NodeId(1), SimTime::from_millis(1))
            .kill_and_recover(NodeId(2), SimTime::from_millis(1), SimTime::from_millis(4))
            .kill_and_recover(NodeId(3), SimTime::from_millis(1), SimTime::from_millis(8));
        let watch = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            plan.next_recovery_of(&watch, SimTime::from_millis(2)),
            Some(SimTime::from_millis(4))
        );
        // Strictly after: a recovery at exactly `after` does not count.
        assert_eq!(
            plan.next_recovery_of(&watch, SimTime::from_millis(4)),
            Some(SimTime::from_millis(8))
        );
        // Node 1 never recovers; watching only it yields nothing.
        assert_eq!(
            plan.next_recovery_of(&[NodeId(1)], SimTime::from_millis(0)),
            None
        );
        assert_eq!(
            plan.next_recovery_of(&[NodeId(9)], SimTime::from_millis(0)),
            None
        );
    }
}

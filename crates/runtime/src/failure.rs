//! Failure injection.
//!
//! Experiments schedule node failures at fixed virtual times (optionally
//! with recovery) so fault-tolerance comparisons are reproducible.

use skadi_dcsim::time::SimTime;
use skadi_dcsim::topology::{NodeId, RackId, Topology};

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node dies.
    pub at: SimTime,
    /// Which node dies.
    pub node: NodeId,
    /// When (if ever) the node rejoins, empty-handed.
    pub recovers_at: Option<SimTime>,
}

/// A deterministic failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    failures: Vec<Failure>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a permanent failure.
    pub fn kill(mut self, node: NodeId, at: SimTime) -> Self {
        self.failures.push(Failure {
            at,
            node,
            recovers_at: None,
        });
        self
    }

    /// Adds a failure with later recovery.
    pub fn kill_and_recover(mut self, node: NodeId, at: SimTime, recovers_at: SimTime) -> Self {
        assert!(recovers_at > at, "recovery must follow the failure");
        self.failures.push(Failure {
            at,
            node,
            recovers_at: Some(recovers_at),
        });
        self
    }

    /// Kills every node of a rack at once (correlated failure: ToR
    /// switch or power domain loss).
    pub fn kill_rack(mut self, topo: &Topology, rack: RackId, at: SimTime) -> Self {
        for node in topo.nodes() {
            if node.rack == rack {
                self.failures.push(Failure {
                    at,
                    node: node.id,
                    recovers_at: None,
                });
            }
        }
        self
    }

    /// All failures, in injection order.
    pub fn failures(&self) -> &[Failure] {
        &self.failures
    }

    /// True if no failures are planned.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_schedules() {
        let plan = FailurePlan::none()
            .kill(NodeId(1), SimTime::from_millis(5))
            .kill_and_recover(NodeId(2), SimTime::from_millis(7), SimTime::from_millis(9));
        assert_eq!(plan.failures().len(), 2);
        assert_eq!(plan.failures()[0].recovers_at, None);
        assert!(plan.failures()[1].recovers_at.is_some());
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn kill_rack_expands_to_members() {
        use skadi_dcsim::topology::presets;
        let topo = presets::small_disagg_cluster();
        let rack = topo.rack_of(topo.servers()[0]);
        let plan = FailurePlan::none().kill_rack(&topo, rack, SimTime::from_millis(1));
        let members = topo.nodes().iter().filter(|n| n.rack == rack).count();
        assert_eq!(plan.failures().len(), members);
        assert!(plan
            .failures()
            .iter()
            .all(|f| f.at == SimTime::from_millis(1)));
    }

    #[test]
    #[should_panic(expected = "recovery must follow")]
    fn recovery_before_failure_rejected() {
        let _ = FailurePlan::none().kill_and_recover(
            NodeId(0),
            SimTime::from_millis(9),
            SimTime::from_millis(7),
        );
    }
}

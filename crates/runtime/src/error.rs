//! Error type for the runtime.

use std::fmt;

use crate::task::{GangId, TaskId};

/// Errors from job construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A task references an unknown dependency.
    UnknownDependency {
        /// The dependent task.
        task: TaskId,
        /// The missing producer.
        dep: TaskId,
    },
    /// The job's dependency graph has a cycle.
    CyclicJob,
    /// No node in the topology can run a task (e.g. a GPU task in a
    /// server-only cluster with CPU fallback disabled).
    NoEligibleNode(TaskId),
    /// The simulation reached its event budget without draining — almost
    /// always a livelock bug.
    Livelock {
        /// Events processed before giving up.
        events: u64,
    },
    /// A task failed more times than the retry budget allows.
    TaskAbandoned(TaskId),
    /// The event queue drained while tasks were still pending — the job
    /// neither finished nor failed cleanly. Previously this surfaced as
    /// silently-partial [`crate::job::JobStats`]; now it is an error.
    Stalled {
        /// Tasks that reached `Finished`.
        finished: u64,
        /// Tasks stuck in a non-terminal state.
        stuck: u64,
    },
    /// A gang member reported ready for a gang that was never declared —
    /// releasing it alone as "the whole gang" would silently break the
    /// start-together guarantee, so it is a hard error.
    UndeclaredGang(GangId),
    /// The debug invariant checker found inconsistent cluster state
    /// (enabled via `RuntimeConfig::debug_invariants`).
    InvariantViolation(String),
    /// Job state is internally inconsistent.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            RuntimeError::CyclicJob => f.write_str("job dependency graph is cyclic"),
            RuntimeError::NoEligibleNode(t) => {
                write!(f, "no node can run task {t}")
            }
            RuntimeError::Livelock { events } => {
                write!(f, "simulation did not drain after {events} events")
            }
            RuntimeError::TaskAbandoned(t) => write!(f, "task {t} exceeded its retry budget"),
            RuntimeError::Stalled { finished, stuck } => {
                write!(
                    f,
                    "event queue drained with {stuck} tasks pending ({finished} finished)"
                )
            }
            RuntimeError::UndeclaredGang(g) => {
                write!(f, "gang {:?} was never declared", g)
            }
            RuntimeError::InvariantViolation(msg) => {
                write!(f, "cluster invariant violated: {msg}")
            }
            RuntimeError::Internal(msg) => write!(f, "internal runtime error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

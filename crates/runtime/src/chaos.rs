//! Chaos-schedule fault harness.
//!
//! Property-style fault testing for the runtime: generate a seeded random
//! job (mixed plain tasks, a gang, an actor chain), a seeded random
//! failure schedule (kill/recover cycles, correlated rack loss, straggler
//! windows), run the job under the schedule with the debug invariant
//! checker on, and assert that the run either completes with *exactly*
//! the outputs of a failure-free run or fails with a clean error — never
//! a hang, never silent loss.
//!
//! The harness keeps one *safe harbor* node (the first server, which
//! hosts the centralized scheduler in the model) out of every kill set so
//! schedules remain survivable by construction; everything else is fair
//! game. All injected kills recover, so with a generous retry budget a
//! correct runtime must converge to the failure-free manifest.
//!
//! Used by `tests/chaos.rs` (the ≥200-schedule property driver) and the
//! `skadi-cli chaos --seed N` replay subcommand.

use skadi_dcsim::rng::DetRng;
use skadi_dcsim::time::SimTime;
use skadi_dcsim::topology::{NodeId, Topology};

use crate::cluster::Cluster;
use crate::config::{FtMode, RuntimeConfig};
use crate::error::RuntimeError;
use crate::failure::FailurePlan;
use crate::job::{Job, JobStats};
use crate::task::{ActorId, GangId, TaskId, TaskSpec};

/// Outcome of one chaos run, compared against its failure-free twin.
#[derive(Debug, Clone)]
pub struct ChaosVerdict {
    /// The schedule that was injected.
    pub plan: FailurePlan,
    /// Stats from the chaos run.
    pub stats: JobStats,
    /// `(task, finished, output_bytes)` manifest of the failure-free run.
    pub baseline: Vec<(TaskId, bool, u64)>,
    /// Manifest of the chaos run.
    pub chaotic: Vec<(TaskId, bool, u64)>,
}

impl ChaosVerdict {
    /// True when the chaos run produced byte-for-byte the same outputs
    /// as the failure-free run.
    pub fn equivalent(&self) -> bool {
        self.baseline == self.chaotic
    }
}

/// The topology every chaos run uses: two racks of servers + devices,
/// one memory blade, durable storage.
pub fn chaos_topology() -> Topology {
    skadi_dcsim::topology::presets::small_disagg_cluster()
}

/// Runtime config for chaos runs: invariant checking on, gang scheduling
/// on, and a retry budget generous enough that any survivable schedule
/// must converge rather than abandon tasks.
pub fn chaos_config(ft: FtMode) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::skadi_gen1()
        .with_ft(ft)
        .with_gang(true)
        .with_debug_invariants(true);
    cfg.max_attempts = 50;
    cfg
}

/// Generates a seeded random job of up to ~30 CPU tasks: a few sources,
/// a fan-out middle layer, one gang (2-4 members), one actor method
/// chain (3-5 calls), and a sink depending on every leaf.
pub fn chaos_job(seed: u64) -> Job {
    let mut rng = DetRng::seed(seed ^ 0x6a6f_625f); // "job_"
    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut next_id = 0u64;

    // Sources: independent roots.
    let n_sources = rng.range(2, 5);
    for _ in 0..n_sources {
        let spec = TaskSpec::new(
            next_id,
            rng.range(500, 3_000) as f64,
            rng.range(1, 64) << 10,
        )
        .named("chaos.source");
        tasks.push(spec);
        next_id += 1;
    }

    // Fan-out layer: each task reads 1-2 earlier tasks.
    let n_mid = rng.range(4, 11);
    for _ in 0..n_mid {
        let mut spec = TaskSpec::new(
            next_id,
            rng.range(800, 5_000) as f64,
            rng.range(1, 32) << 10,
        )
        .named("chaos.map");
        let deps = rng.range(1, 3) as usize;
        for _ in 0..deps {
            let dep = TaskId(rng.below(next_id));
            spec = spec.after(dep, rng.range(1, 16) << 10);
        }
        tasks.push(spec);
        next_id += 1;
    }

    // One gang: members start together, each reading one earlier task.
    let gang_size = rng.range(2, 5);
    let gang_first = next_id;
    for _ in 0..gang_size {
        let dep = TaskId(rng.below(gang_first));
        let spec = TaskSpec::new(
            next_id,
            rng.range(1_000, 4_000) as f64,
            rng.range(1, 16) << 10,
        )
        .named("chaos.gang")
        .in_gang(GangId(1))
        .after(dep, rng.range(1, 8) << 10);
        tasks.push(spec);
        next_id += 1;
    }

    // One actor chain: serialized methods, each feeding the next.
    let chain = rng.range(3, 6);
    let mut prev: Option<TaskId> = None;
    for _ in 0..chain {
        let mut spec = TaskSpec::new(next_id, rng.range(600, 2_500) as f64, rng.range(1, 8) << 10)
            .named("chaos.actor")
            .on_actor(ActorId(1));
        match prev {
            Some(p) => spec = spec.after(p, rng.range(1, 8) << 10),
            None => {
                let dep = TaskId(rng.below(gang_first));
                spec = spec.after(dep, rng.range(1, 8) << 10);
            }
        }
        prev = Some(TaskId(next_id));
        tasks.push(spec);
        next_id += 1;
    }

    // Sink: depends on every task nothing else consumes.
    let consumed: std::collections::BTreeSet<TaskId> = tasks
        .iter()
        .flat_map(|t| t.inputs.keys().copied())
        .collect();
    let mut sink =
        TaskSpec::new(next_id, rng.range(500, 2_000) as f64, 1 << 10).named("chaos.sink");
    for t in &tasks {
        if !consumed.contains(&t.id) {
            sink = sink.after(t.id, rng.range(1, 8) << 10);
        }
    }
    tasks.push(sink);

    Job::new(&format!("chaos-{seed}"), tasks).expect("generator builds acyclic jobs")
}

/// Generates a seeded random failure schedule against `topo`.
///
/// The first server is a safe harbor and is never killed (and its rack is
/// never the target of correlated rack loss). 1-3 victims each suffer 1-2
/// kill/recover cycles; with some probability a whole non-safe rack dies
/// mid-recovery and rejoins; 0-2 straggler windows slow random nodes.
/// Every kill recovers, so the schedule is survivable by construction.
pub fn chaos_plan(topo: &Topology, seed: u64) -> FailurePlan {
    let mut rng = DetRng::seed(seed ^ 0x706c_616e); // "plan"
    let servers = topo.servers();
    let safe = servers[0];
    let safe_rack = topo.rack_of(safe);
    let mut pool: Vec<NodeId> = servers[1..].to_vec();
    pool.extend(topo.memory_blades());

    let mut plan = FailurePlan::none();

    let n_victims = rng.range(1, 4).min(pool.len() as u64);
    rng.shuffle(&mut pool);
    // Injection times target the first few milliseconds: chaos jobs
    // finish in ~1-4 ms of virtual time, so kills must land while tasks
    // are actually in flight to exercise recovery (not after the job).
    for victim in pool.iter().take(n_victims as usize).copied() {
        let cycles = rng.range(1, 3);
        let mut t = rng.range(200, 6_000);
        for _ in 0..cycles {
            let down = rng.range(500, 3_000);
            plan = plan.kill_and_recover(
                victim,
                SimTime::from_micros(t),
                SimTime::from_micros(t + down),
            );
            // Next cycle strikes again after the node has been back a while.
            t += down + rng.range(1_000, 5_000);
        }
    }

    // Correlated rack loss mid-recovery, avoiding the safe rack.
    if rng.chance(0.3) {
        let racks: Vec<u16> = (0..topo.rack_count())
            .filter(|r| skadi_dcsim::topology::RackId(*r) != safe_rack)
            .collect();
        if !racks.is_empty() {
            let rack = skadi_dcsim::topology::RackId(*rng.pick(&racks));
            let at = rng.range(1_000, 6_000);
            let down = rng.range(1_000, 3_000);
            plan = plan.kill_rack_and_recover(
                topo,
                rack,
                SimTime::from_micros(at),
                SimTime::from_micros(at + down),
            );
        }
    }

    // Straggler windows: slow, not dead.
    let n_slow = rng.below(3);
    let all: Vec<NodeId> = servers.into_iter().chain(topo.memory_blades()).collect();
    for _ in 0..n_slow {
        let node = *rng.pick(&all);
        let from = rng.range(0, 6_000);
        let len = rng.range(1_000, 8_000);
        let factor = 1.5 + rng.unit() * 4.5;
        plan = plan.slow(
            node,
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            factor,
        );
    }

    plan
}

/// Runs seed `seed` under `ft`: failure-free baseline first, then the
/// chaos schedule on a fresh cluster, with invariant checking on in both.
///
/// Returns `Err` when either run errors (livelock, stall, invariant
/// violation, abandoned task) — the property driver treats any `Err` on a
/// survivable schedule as a bug.
pub fn run_chaos(seed: u64, ft: FtMode) -> Result<ChaosVerdict, RuntimeError> {
    run_chaos_with(seed, ft, false)
}

/// [`run_chaos`] with optional span tracing (used by `skadi-cli chaos`).
pub fn run_chaos_with(seed: u64, ft: FtMode, tracing: bool) -> Result<ChaosVerdict, RuntimeError> {
    let topo = chaos_topology();
    let job = chaos_job(seed);
    let cfg = chaos_config(ft).with_tracing(tracing);

    let mut calm = Cluster::new(&topo, cfg.clone());
    calm.run(&job)?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan(&topo, seed);
    let mut stormy = Cluster::new(&topo, cfg);
    let stats = stormy.run_with_failures(&job, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(ChaosVerdict {
        plan,
        stats,
        baseline,
        chaotic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_generator_is_deterministic_and_valid() {
        let a = chaos_job(7);
        let b = chaos_job(7);
        assert_eq!(a, b);
        assert!(a.len() >= 10 && a.len() <= 30, "job size {}", a.len());
        assert!(a.tasks.values().any(|t| t.gang.is_some()));
        assert!(a.tasks.values().any(|t| t.actor.is_some()));
        // Different seed, different job.
        assert_ne!(chaos_job(8), a);
    }

    #[test]
    fn plan_generator_spares_the_safe_harbor() {
        let topo = chaos_topology();
        let safe = topo.servers()[0];
        for seed in 0..50 {
            let plan = chaos_plan(&topo, seed);
            assert!(
                plan.failures().iter().all(|f| f.node != safe),
                "seed {seed} kills the safe harbor"
            );
            assert!(
                plan.failures().iter().all(|f| f.recovers_at.is_some()),
                "seed {seed} has an unrecoverable kill"
            );
            assert_eq!(
                plan,
                chaos_plan(&topo, seed),
                "seed {seed} not deterministic"
            );
        }
    }

    #[test]
    fn chaos_run_matches_failure_free_run() {
        let v = run_chaos(1, FtMode::Lineage).expect("survivable schedule must complete");
        assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
        assert!(v.baseline.iter().all(|(_, done, _)| *done));
    }
}

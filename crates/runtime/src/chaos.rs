//! Chaos-schedule fault harness.
//!
//! Property-style fault testing for the runtime: generate a seeded random
//! job (mixed plain tasks, a gang, an actor chain), a seeded random
//! failure schedule (kill/recover cycles, correlated rack loss, straggler
//! windows), run the job under the schedule with the debug invariant
//! checker on, and assert that the run either completes with *exactly*
//! the outputs of a failure-free run or fails with a clean error — never
//! a hang, never silent loss.
//!
//! Every node is fair game — including the first server, which hosts the
//! scheduler at boot. Killing it exercises the control-plane failover
//! path: a surviving server wins the election and reconstructs placement,
//! gang, and ownership state from the raylets. All kills in the standard
//! generator recover, so with a generous retry budget a correct runtime
//! must converge to the failure-free manifest.
//!
//! Two harder generators ride along: [`chaos_plan_permanent`] kills a
//! random subset of nodes *forever* (runs must either still converge or
//! fail cleanly with `TaskAbandoned`/`Stalled` — never hang), and
//! [`chaos_jobs`] produces staggered multi-job workloads so failures land
//! while several jobs share the cluster.
//!
//! Used by `tests/chaos.rs` (the ≥200-schedule property driver) and the
//! `skadi-cli chaos --seed N` replay subcommand.

use skadi_dcsim::rng::DetRng;
use skadi_dcsim::time::{SimDuration, SimTime};
use skadi_dcsim::topology::{
    DurableSpec, MemoryBladeSpec, NodeId, ServerSpec, Topology, TopologyBuilder,
};

use crate::cluster::{Cluster, PerJobStats};
use crate::config::{FtMode, RuntimeConfig};
use crate::error::RuntimeError;
use crate::failure::FailurePlan;
use crate::job::{Job, JobStats};
use crate::task::{ActorId, GangId, TaskId, TaskSpec};

/// Outcome of one chaos run, compared against its failure-free twin.
#[derive(Debug, Clone)]
pub struct ChaosVerdict {
    /// The schedule that was injected.
    pub plan: FailurePlan,
    /// Stats from the chaos run.
    pub stats: JobStats,
    /// `(task, finished, output_bytes)` manifest of the failure-free run.
    pub baseline: Vec<(TaskId, bool, u64)>,
    /// Manifest of the chaos run.
    pub chaotic: Vec<(TaskId, bool, u64)>,
}

impl ChaosVerdict {
    /// True when the chaos run produced byte-for-byte the same outputs
    /// as the failure-free run.
    pub fn equivalent(&self) -> bool {
        self.baseline == self.chaotic
    }
}

/// The topology every chaos run uses: two racks of servers + devices,
/// one memory blade, durable storage.
pub fn chaos_topology() -> Topology {
    skadi_dcsim::topology::presets::small_disagg_cluster()
}

/// A chaos topology scaled to an arbitrary server count: racks of 32
/// servers, a memory blade per rack, durable storage. `scaled(10_000)`
/// is the 10k-node cluster the scheduler-core benchmarks drive.
pub fn chaos_topology_scaled(servers: u32) -> Topology {
    const PER_RACK: u32 = 32;
    let servers = servers.max(4);
    let mut b = TopologyBuilder::new();
    let mut left = servers;
    while left > 0 {
        let n = left.min(PER_RACK);
        b = b.rack(|r| {
            r.servers(n, ServerSpec::default());
            r.memory_blade(MemoryBladeSpec::default());
        });
        left -= n;
    }
    b.durable_storage(DurableSpec::default()).build()
}

/// Runtime config for chaos runs: invariant checking on, gang scheduling
/// on, and a retry budget generous enough that any survivable schedule
/// must converge rather than abandon tasks.
pub fn chaos_config(ft: FtMode) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::skadi_gen1()
        .with_ft(ft)
        .with_gang(true)
        .with_debug_invariants(true);
    cfg.max_attempts = 50;
    cfg
}

/// Generates a seeded random job of up to ~30 CPU tasks: a few sources,
/// a fan-out middle layer, one gang (2-4 members), one actor method
/// chain (3-5 calls), and a sink depending on every leaf.
pub fn chaos_job(seed: u64) -> Job {
    let mut rng = DetRng::seed(seed ^ 0x6a6f_625f); // "job_"
    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut next_id = 0u64;

    // Sources: independent roots.
    let n_sources = rng.range(2, 5);
    for _ in 0..n_sources {
        let spec = TaskSpec::new(
            next_id,
            rng.range(500, 3_000) as f64,
            rng.range(1, 64) << 10,
        )
        .named("chaos.source");
        tasks.push(spec);
        next_id += 1;
    }

    // Fan-out layer: each task reads 1-2 earlier tasks.
    let n_mid = rng.range(4, 11);
    for _ in 0..n_mid {
        let mut spec = TaskSpec::new(
            next_id,
            rng.range(800, 5_000) as f64,
            rng.range(1, 32) << 10,
        )
        .named("chaos.map");
        let deps = rng.range(1, 3) as usize;
        for _ in 0..deps {
            let dep = TaskId(rng.below(next_id));
            spec = spec.after(dep, rng.range(1, 16) << 10);
        }
        tasks.push(spec);
        next_id += 1;
    }

    // One gang: members start together, each reading one earlier task.
    let gang_size = rng.range(2, 5);
    let gang_first = next_id;
    for _ in 0..gang_size {
        let dep = TaskId(rng.below(gang_first));
        let spec = TaskSpec::new(
            next_id,
            rng.range(1_000, 4_000) as f64,
            rng.range(1, 16) << 10,
        )
        .named("chaos.gang")
        .in_gang(GangId(1))
        .after(dep, rng.range(1, 8) << 10);
        tasks.push(spec);
        next_id += 1;
    }

    // One actor chain: serialized methods, each feeding the next.
    let chain = rng.range(3, 6);
    let mut prev: Option<TaskId> = None;
    for _ in 0..chain {
        let mut spec = TaskSpec::new(next_id, rng.range(600, 2_500) as f64, rng.range(1, 8) << 10)
            .named("chaos.actor")
            .on_actor(ActorId(1));
        match prev {
            Some(p) => spec = spec.after(p, rng.range(1, 8) << 10),
            None => {
                let dep = TaskId(rng.below(gang_first));
                spec = spec.after(dep, rng.range(1, 8) << 10);
            }
        }
        prev = Some(TaskId(next_id));
        tasks.push(spec);
        next_id += 1;
    }

    // Sink: depends on every task nothing else consumes.
    let consumed: std::collections::BTreeSet<TaskId> = tasks
        .iter()
        .flat_map(|t| t.inputs.keys().copied())
        .collect();
    let mut sink =
        TaskSpec::new(next_id, rng.range(500, 2_000) as f64, 1 << 10).named("chaos.sink");
    for t in &tasks {
        if !consumed.contains(&t.id) {
            sink = sink.after(t.id, rng.range(1, 8) << 10);
        }
    }
    tasks.push(sink);

    Job::new(&format!("chaos-{seed}"), tasks).expect("generator builds acyclic jobs")
}

/// Generates a seeded random failure schedule against `topo`.
///
/// Every server and memory blade — including the scheduler's boot node —
/// is a candidate victim. 1-3 victims each suffer 1-2 kill/recover
/// cycles; with some probability a whole rack dies and rejoins (scheduled
/// after every per-victim window has closed, so windows never overlap);
/// 0-2 straggler windows slow random nodes. Every kill recovers, so the
/// schedule is survivable by construction — even when the control plane
/// itself goes down and a new scheduler must be elected.
pub fn chaos_plan(topo: &Topology, seed: u64) -> FailurePlan {
    let mut rng = DetRng::seed(seed ^ 0x706c_616e); // "plan"
    let servers = topo.servers();
    let mut pool: Vec<NodeId> = servers.clone();
    pool.extend(topo.memory_blades());

    let mut plan = FailurePlan::none();

    let n_victims = rng.range(1, 4).min(pool.len() as u64);
    rng.shuffle(&mut pool);
    // Injection times target the first few milliseconds: chaos jobs
    // finish in ~1-4 ms of virtual time, so kills must land while tasks
    // are actually in flight to exercise recovery (not after the job).
    for victim in pool.iter().take(n_victims as usize).copied() {
        let cycles = rng.range(1, 3);
        let mut t = rng.range(200, 6_000);
        for _ in 0..cycles {
            let down = rng.range(500, 3_000);
            plan = plan.kill_and_recover(
                victim,
                SimTime::from_micros(t),
                SimTime::from_micros(t + down),
            );
            // Next cycle strikes again after the node has been back a while.
            t += down + rng.range(1_000, 5_000);
        }
    }

    // Correlated rack loss: the whole rack dies and rejoins. Placed
    // strictly after the latest per-victim recovery so it cannot overlap
    // an existing window ([`FailurePlan`] rejects overlapping entries).
    if rng.chance(0.3) {
        let racks: Vec<u16> = (0..topo.rack_count()).collect();
        if !racks.is_empty() {
            let rack = skadi_dcsim::topology::RackId(*rng.pick(&racks));
            let clear = plan
                .failures()
                .iter()
                .filter_map(|f| f.recovers_at)
                .max()
                .unwrap_or(SimTime::ZERO);
            let at = clear + SimDuration::from_micros(rng.range(500, 3_000));
            let down = SimDuration::from_micros(rng.range(1_000, 3_000));
            plan = plan.kill_rack_and_recover(topo, rack, at, at + down);
        }
    }

    // Straggler windows: slow, not dead.
    let n_slow = rng.below(3);
    let all: Vec<NodeId> = servers.into_iter().chain(topo.memory_blades()).collect();
    for _ in 0..n_slow {
        let node = *rng.pick(&all);
        let from = rng.range(0, 6_000);
        let len = rng.range(1_000, 8_000);
        let factor = 1.5 + rng.unit() * 4.5;
        plan = plan.slow(
            node,
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            factor,
        );
    }

    plan
}

/// Generates a seeded *permanent-loss* schedule: a random non-empty
/// subset of servers and memory blades dies forever, possibly including
/// the scheduler's boot node and possibly the entire pool.
///
/// Unlike [`chaos_plan`], these schedules are *not* survivable by
/// construction. The property a run must satisfy is weaker and sharper:
/// converge to the failure-free manifest, or fail cleanly with
/// `TaskAbandoned`/`Stalled` — never hang, never return a silently
/// partial `Ok`.
pub fn chaos_plan_permanent(topo: &Topology, seed: u64) -> FailurePlan {
    let mut rng = DetRng::seed(seed ^ 0x7065_726d); // "perm"
    let mut pool: Vec<NodeId> = topo.servers();
    pool.extend(topo.memory_blades());
    rng.shuffle(&mut pool);
    let n_victims = rng.range(1, pool.len() as u64 + 1);

    let mut plan = FailurePlan::none();
    for victim in pool.into_iter().take(n_victims as usize) {
        plan = plan.kill(victim, SimTime::from_micros(rng.range(200, 6_000)));
    }
    plan
}

/// Generates 2-3 seeded jobs with staggered arrivals for multi-job chaos
/// runs ([`Cluster::run_jobs`] under a failure schedule).
///
/// `run_jobs` renumbers task IDs into one combined space but does *not*
/// touch gang or actor IDs, so the generator remaps each job's gangs and
/// actors into a disjoint range — otherwise two jobs' gangs would merge
/// into one bogus barrier.
pub fn chaos_jobs(seed: u64) -> Vec<(Job, SimTime)> {
    let mut rng = DetRng::seed(seed ^ 0x6d6a_6f62); // "mjob"
    let n_jobs = rng.range(2, 4);
    let mut jobs = Vec::new();
    let mut at = 0u64;
    for i in 0..n_jobs {
        let base = chaos_job(seed.wrapping_mul(1_009).wrapping_add(i));
        let specs: Vec<TaskSpec> = base
            .tasks
            .values()
            .cloned()
            .map(|mut spec| {
                spec.gang = spec.gang.map(|g| GangId(g.0 + 100 * i as u32));
                spec.actor = spec.actor.map(|a| ActorId(a.0 + 100 * i));
                spec
            })
            .collect();
        let job = Job::new(&format!("chaos-multi-{seed}-{i}"), specs)
            .expect("remapping ids preserves the DAG");
        jobs.push((job, SimTime::from_micros(at)));
        at += rng.range(300, 2_500);
    }
    jobs
}

/// [`chaos_jobs`] at arbitrary scale: exactly `n_jobs` staggered jobs,
/// gang/actor IDs remapped into disjoint per-job ranges. Used by the
/// scheduler-core benchmarks to keep a thousands-of-nodes cluster busy.
pub fn chaos_jobs_scaled(seed: u64, n_jobs: usize) -> Vec<(Job, SimTime)> {
    let mut rng = DetRng::seed(seed ^ 0x736a_6f62); // "sjob"
    let mut jobs = Vec::new();
    let mut at = 0u64;
    for i in 0..n_jobs as u64 {
        let base = chaos_job(seed.wrapping_mul(1_013).wrapping_add(i));
        let specs: Vec<TaskSpec> = base
            .tasks
            .values()
            .cloned()
            .map(|mut spec| {
                spec.gang = spec.gang.map(|g| GangId(g.0 + 100 * i as u32));
                spec.actor = spec.actor.map(|a| ActorId(a.0 + 100 * i));
                spec
            })
            .collect();
        let job = Job::new(&format!("chaos-scaled-{seed}-{i}"), specs)
            .expect("remapping ids preserves the DAG");
        jobs.push((job, SimTime::from_micros(at)));
        at += rng.range(100, 1_200);
    }
    jobs
}

/// A "regicide" schedule: kill the boot scheduler, then kill the node
/// that just won the election while it is still reconstructing state
/// from the raylets — forcing a failover *of the failover*. Both kills
/// recover, so the schedule is survivable and the run must converge to
/// the failure-free manifest.
///
/// The second strike lands a seeded few microseconds after the election
/// delay expires — inside the window where the new scheduler is pricing
/// per-peer state reports and has not finished reconstruction.
pub fn chaos_plan_regicide(topo: &Topology, cfg: &RuntimeConfig, seed: u64) -> FailurePlan {
    let mut rng = DetRng::seed(seed ^ 0x7265_6769); // "regi"
    let servers = topo.servers();
    assert!(
        servers.len() >= 3,
        "regicide needs at least three servers (two die)"
    );
    // The boot scheduler lives on the first server; with rack-aware
    // election off the lowest-ID survivor inherits the crown.
    let king = servers[0];
    let heir = servers[1];
    let t1 = rng.range(300, 1_500);
    let delay = cfg.election_delay.as_micros();
    // Strike while reconstruction reports are in flight.
    let t2 = t1 + delay + rng.range(1, 150);
    let recover1 = t2 + rng.range(2_000, 6_000);
    let recover2 = recover1 + rng.range(500, 2_000);
    FailurePlan::none()
        .kill_and_recover(
            king,
            SimTime::from_micros(t1),
            SimTime::from_micros(recover1),
        )
        .kill_and_recover(
            heir,
            SimTime::from_micros(t2),
            SimTime::from_micros(recover2),
        )
}

/// Runs seed `seed` under the regicide schedule
/// ([`chaos_plan_regicide`]): failure-free baseline first, then the
/// double-failover run. A correct runtime elects twice and still
/// converges byte-for-byte.
pub fn run_chaos_regicide(seed: u64, ft: FtMode) -> Result<ChaosVerdict, RuntimeError> {
    let topo = chaos_topology();
    let job = chaos_job(seed);
    let cfg = chaos_config(ft);

    let mut calm = Cluster::new(&topo, cfg.clone());
    calm.run(&job)?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan_regicide(&topo, &cfg, seed);
    let mut stormy = Cluster::new(&topo, cfg);
    let stats = stormy.run_with_failures(&job, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(ChaosVerdict {
        plan,
        stats,
        baseline,
        chaotic,
    })
}

/// Multi-job chaos on an arbitrary topology: `n_jobs` staggered jobs
/// ([`chaos_jobs_scaled`]) run failure-free, then again under the seeded
/// survivable schedule. `cfg` is caller-supplied so large clusters can
/// turn the O(nodes)-per-event debug invariant checker off.
pub fn run_chaos_multi_scaled(
    topo: &Topology,
    seed: u64,
    n_jobs: usize,
    cfg: RuntimeConfig,
) -> Result<MultiChaosVerdict, RuntimeError> {
    let jobs = chaos_jobs_scaled(seed, n_jobs);

    let mut calm = Cluster::new(topo, cfg.clone());
    calm.run_jobs(&jobs, &FailurePlan::none())?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan(topo, seed);
    let mut stormy = Cluster::new(topo, cfg);
    let (per_job, stats) = stormy.run_jobs(&jobs, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(MultiChaosVerdict {
        plan,
        per_job,
        stats,
        baseline,
        chaotic,
    })
}

/// Runs seed `seed` under `ft`: failure-free baseline first, then the
/// chaos schedule on a fresh cluster, with invariant checking on in both.
///
/// Returns `Err` when either run errors (livelock, stall, invariant
/// violation, abandoned task) — the property driver treats any `Err` on a
/// survivable schedule as a bug.
pub fn run_chaos(seed: u64, ft: FtMode) -> Result<ChaosVerdict, RuntimeError> {
    run_chaos_with(seed, ft, false)
}

/// [`run_chaos`] with optional span tracing (used by `skadi-cli chaos`).
pub fn run_chaos_with(seed: u64, ft: FtMode, tracing: bool) -> Result<ChaosVerdict, RuntimeError> {
    let topo = chaos_topology();
    let job = chaos_job(seed);
    let cfg = chaos_config(ft).with_tracing(tracing);

    let mut calm = Cluster::new(&topo, cfg.clone());
    calm.run(&job)?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan(&topo, seed);
    let mut stormy = Cluster::new(&topo, cfg);
    let stats = stormy.run_with_failures(&job, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(ChaosVerdict {
        plan,
        stats,
        baseline,
        chaotic,
    })
}

/// Runs seed `seed` under a *permanent-loss* schedule
/// ([`chaos_plan_permanent`]): the failure-free baseline first, then the
/// unrecoverable schedule on a fresh cluster.
///
/// `Ok` means the run survived the loss and its manifest should match the
/// baseline; `Err(TaskAbandoned | Stalled)` is the *expected* clean
/// failure when the schedule destroys needed capacity. Any other error —
/// or a hang — is a runtime bug.
pub fn run_chaos_permanent(seed: u64, ft: FtMode) -> Result<ChaosVerdict, RuntimeError> {
    run_chaos_permanent_with(seed, ft, false)
}

/// [`run_chaos_permanent`] with optional span tracing (`skadi-cli`).
pub fn run_chaos_permanent_with(
    seed: u64,
    ft: FtMode,
    tracing: bool,
) -> Result<ChaosVerdict, RuntimeError> {
    let topo = chaos_topology();
    let job = chaos_job(seed);
    let cfg = chaos_config(ft).with_tracing(tracing);

    let mut calm = Cluster::new(&topo, cfg.clone());
    calm.run(&job)?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan_permanent(&topo, seed);
    let mut stormy = Cluster::new(&topo, cfg);
    let stats = stormy.run_with_failures(&job, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(ChaosVerdict {
        plan,
        stats,
        baseline,
        chaotic,
    })
}

/// Outcome of one multi-job chaos run ([`run_chaos_multi`]).
#[derive(Debug, Clone)]
pub struct MultiChaosVerdict {
    /// The schedule that was injected.
    pub plan: FailurePlan,
    /// Per-job completion stats from the chaos run.
    pub per_job: Vec<PerJobStats>,
    /// Combined stats from the chaos run.
    pub stats: JobStats,
    /// Manifest of the failure-free run (combined task-ID space).
    pub baseline: Vec<(TaskId, bool, u64)>,
    /// Manifest of the chaos run.
    pub chaotic: Vec<(TaskId, bool, u64)>,
}

impl MultiChaosVerdict {
    /// True when the chaos run produced byte-for-byte the same outputs
    /// as the failure-free run.
    pub fn equivalent(&self) -> bool {
        self.baseline == self.chaotic
    }
}

/// Runs the seeded multi-job workload ([`chaos_jobs`]) failure-free, then
/// again under the seeded survivable schedule ([`chaos_plan`]) — failures
/// land while several jobs share the cluster, so recovery must not leak
/// state across job boundaries.
pub fn run_chaos_multi(seed: u64, ft: FtMode) -> Result<MultiChaosVerdict, RuntimeError> {
    run_chaos_multi_with(seed, ft, false)
}

/// [`run_chaos_multi`] with optional span tracing (`skadi-cli`).
pub fn run_chaos_multi_with(
    seed: u64,
    ft: FtMode,
    tracing: bool,
) -> Result<MultiChaosVerdict, RuntimeError> {
    let topo = chaos_topology();
    let jobs = chaos_jobs(seed);
    let cfg = chaos_config(ft).with_tracing(tracing);

    let mut calm = Cluster::new(&topo, cfg.clone());
    calm.run_jobs(&jobs, &FailurePlan::none())?;
    let baseline = calm.output_manifest();

    let plan = chaos_plan(&topo, seed);
    let mut stormy = Cluster::new(&topo, cfg);
    let (per_job, stats) = stormy.run_jobs(&jobs, &plan)?;
    let chaotic = stormy.output_manifest();

    Ok(MultiChaosVerdict {
        plan,
        per_job,
        stats,
        baseline,
        chaotic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_generator_is_deterministic_and_valid() {
        let a = chaos_job(7);
        let b = chaos_job(7);
        assert_eq!(a, b);
        assert!(a.len() >= 10 && a.len() <= 30, "job size {}", a.len());
        assert!(a.tasks.values().any(|t| t.gang.is_some()));
        assert!(a.tasks.values().any(|t| t.actor.is_some()));
        // Different seed, different job.
        assert_ne!(chaos_job(8), a);
    }

    #[test]
    fn plan_generator_recovers_everything_and_hunts_the_scheduler() {
        let topo = chaos_topology();
        let head = topo.servers()[0];
        let mut head_killed = false;
        for seed in 0..50 {
            let plan = chaos_plan(&topo, seed);
            assert!(
                plan.failures().iter().all(|f| f.recovers_at.is_some()),
                "seed {seed} has an unrecoverable kill"
            );
            head_killed |= plan.failures().iter().any(|f| f.node == head);
            assert_eq!(
                plan,
                chaos_plan(&topo, seed),
                "seed {seed} not deterministic"
            );
        }
        // No safe harbor: the scheduler's boot node must be in the kill
        // pool, or the failover path is never exercised.
        assert!(head_killed, "no seed in 0..50 kills the scheduler node");
    }

    #[test]
    fn permanent_plan_generator_never_recovers() {
        let topo = chaos_topology();
        let pool_size = topo.servers().len() + topo.memory_blades().len();
        let mut total_loss_seen = false;
        for seed in 0..50 {
            let plan = chaos_plan_permanent(&topo, seed);
            assert!(!plan.failures().is_empty(), "seed {seed} kills nobody");
            assert!(
                plan.failures().iter().all(|f| f.recovers_at.is_none()),
                "seed {seed} has a recovering kill in a permanent plan"
            );
            total_loss_seen |= plan.failures().len() == pool_size;
            assert_eq!(
                plan,
                chaos_plan_permanent(&topo, seed),
                "seed {seed} not deterministic"
            );
        }
        assert!(
            total_loss_seen,
            "no seed in 0..50 destroys the whole pool — the stall path is untested"
        );
    }

    #[test]
    fn multi_job_generator_keeps_gangs_and_actors_disjoint() {
        let jobs = chaos_jobs(5);
        assert_eq!(jobs, chaos_jobs(5), "generator not deterministic");
        assert!((2..=3).contains(&jobs.len()), "{} jobs", jobs.len());
        let mut last = SimTime::ZERO;
        let mut gangs_seen: std::collections::BTreeSet<GangId> = Default::default();
        let mut actors_seen: std::collections::BTreeSet<ActorId> = Default::default();
        for (job, at) in &jobs {
            assert!(*at >= last, "arrivals must be non-decreasing");
            last = *at;
            let gangs: std::collections::BTreeSet<GangId> =
                job.tasks.values().filter_map(|t| t.gang).collect();
            let actors: std::collections::BTreeSet<ActorId> =
                job.tasks.values().filter_map(|t| t.actor).collect();
            assert!(!gangs.is_empty() && !actors.is_empty());
            assert!(
                gangs.is_disjoint(&gangs_seen),
                "gang ids collide across jobs: {gangs:?}"
            );
            assert!(
                actors.is_disjoint(&actors_seen),
                "actor ids collide across jobs: {actors:?}"
            );
            gangs_seen.extend(gangs);
            actors_seen.extend(actors);
        }
    }

    #[test]
    fn scaled_topology_packs_racks_of_32() {
        let topo = chaos_topology_scaled(100);
        assert_eq!(topo.servers().len(), 100);
        // 32 + 32 + 32 + 4 server racks, plus the durable rack.
        assert_eq!(topo.memory_blades().len(), 4);
        assert!(topo.durable_storage().is_some());
        // Tiny requests round up to a survivable minimum.
        assert_eq!(chaos_topology_scaled(1).servers().len(), 4);
        // Deterministic: same request, same topology shape.
        assert_eq!(
            chaos_topology_scaled(100).servers(),
            chaos_topology_scaled(100).servers()
        );
    }

    #[test]
    fn scaled_job_generator_honours_count_and_stays_disjoint() {
        let jobs = chaos_jobs_scaled(9, 12);
        assert_eq!(
            jobs,
            chaos_jobs_scaled(9, 12),
            "generator not deterministic"
        );
        assert_eq!(jobs.len(), 12);
        let mut gangs_seen: std::collections::BTreeSet<GangId> = Default::default();
        let mut last = SimTime::ZERO;
        for (job, at) in &jobs {
            assert!(*at >= last, "arrivals must be non-decreasing");
            last = *at;
            let gangs: std::collections::BTreeSet<GangId> =
                job.tasks.values().filter_map(|t| t.gang).collect();
            assert!(
                gangs.is_disjoint(&gangs_seen),
                "gang ids collide across jobs: {gangs:?}"
            );
            gangs_seen.extend(gangs);
        }
    }

    #[test]
    fn regicide_plan_kills_king_then_heir_mid_reconstruction() {
        let topo = chaos_topology();
        let cfg = chaos_config(FtMode::Lineage);
        for seed in 0..20 {
            let plan = chaos_plan_regicide(&topo, &cfg, seed);
            assert_eq!(plan, chaos_plan_regicide(&topo, &cfg, seed));
            let fs = plan.failures();
            assert_eq!(fs.len(), 2);
            let king = fs.iter().find(|f| f.node == topo.servers()[0]).unwrap();
            let heir = fs.iter().find(|f| f.node == topo.servers()[1]).unwrap();
            // The heir dies after its election fires but before the king
            // is back — i.e. while it wears the crown.
            let crowned = king.at + cfg.election_delay;
            assert!(heir.at >= crowned, "heir dies before it is elected");
            assert!(heir.at < king.recovers_at.unwrap());
            assert!(fs.iter().all(|f| f.recovers_at.is_some()));
        }
    }

    #[test]
    fn regicide_run_elects_twice_and_matches_failure_free_run() {
        let v = run_chaos_regicide(3, FtMode::Lineage).expect("survivable schedule");
        assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
        assert!(
            v.stats.metrics.counter("elections") >= 2,
            "killing the new scheduler must force a second election (got {})",
            v.stats.metrics.counter("elections")
        );
    }

    #[test]
    fn scaled_multi_job_chaos_smoke() {
        let topo = chaos_topology_scaled(48);
        let cfg = chaos_config(FtMode::Lineage).with_debug_invariants(false);
        let v = run_chaos_multi_scaled(&topo, 2, 6, cfg).expect("survivable schedule");
        assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
        assert_eq!(v.per_job.len(), 6);
    }

    #[test]
    fn chaos_run_matches_failure_free_run() {
        let v = run_chaos(1, FtMode::Lineage).expect("survivable schedule must complete");
        assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
        assert!(v.baseline.iter().all(|(_, done, _)| *done));
    }

    #[test]
    fn multi_job_chaos_smoke() {
        let v = run_chaos_multi(1, FtMode::Lineage).expect("survivable schedule must complete");
        assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
        assert_eq!(v.per_job.len(), chaos_jobs(1).len());
    }
}

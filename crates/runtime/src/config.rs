//! Runtime configuration: the axes every experiment sweeps.
//!
//! One [`RuntimeConfig`] value selects a point in the paper's design
//! space: which hardware generation (Gen-1/Gen-2), which future
//! resolution protocol (pull/push), which scheduler, which deployment
//! model (Figure 1a/1b/1c), and which fault-tolerance mechanism (§2.1).
//! Because all deployments run on the same simulator, comparisons are
//! apples-to-apples.

use skadi_dcsim::time::SimDuration;
use skadi_ownership::resolve::{ResolutionMode, RoutePolicy};
use skadi_store::ec::EcConfig;

use crate::scheduler::PlacementPolicy;

/// The hardware generation of the stateful serverless runtime (§2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Raylet on the DPU; CPU-centric control; pull resolution default.
    Gen1,
    /// Device-resident raylets; push resolution; disagg-memory spill.
    Gen2,
}

impl Generation {
    /// The message routing this generation implies.
    pub fn route_policy(self) -> RoutePolicy {
        match self {
            Generation::Gen1 => RoutePolicy::GEN1,
            Generation::Gen2 => RoutePolicy::GEN2,
        }
    }

    /// The default resolution protocol of this generation.
    pub fn default_resolution(self) -> ResolutionMode {
        match self {
            Generation::Gen1 => ResolutionMode::Pull,
            Generation::Gen2 => ResolutionMode::Push,
        }
    }
}

/// The deployment model being simulated (the three panels of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Figure 1a: per-system reserved clusters. Intra-system data moves
    /// in memory, but data crossing *system boundaries* bounces through
    /// durable cloud storage, and cost is reservation-based (nodes x
    /// wall-clock).
    Serverful,
    /// Figure 1b: stateless functions. *Every* intermediate object is
    /// written to and read from durable storage; each task pays a cold
    /// start; cost is pay-per-use.
    StatelessServerless,
    /// Figure 1c: Skadi. The stateful serverless runtime with the tiered
    /// caching layer; pay-per-use cost.
    DistributedRuntime,
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Deployment::Serverful => "serverful",
            Deployment::StatelessServerless => "stateless-serverless",
            Deployment::DistributedRuntime => "distributed-runtime",
        };
        f.write_str(s)
    }
}

/// Fault-tolerance mechanism (§2.1: lineage, replication, or EC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// No protection: lost objects make dependent results fail.
    None,
    /// Re-execute lost tasks from the lineage log.
    Lineage,
    /// Keep `n` total copies of every output in the caching layer.
    Replication(u32),
    /// Erasure-code outputs across nodes.
    ErasureCoding(EcConfig),
}

/// Device autoscaler settings (E11): the pool of warm accelerator
/// devices grows and shrinks with the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Devices kept warm at minimum.
    pub min_devices: u32,
    /// Hard cap (the topology bounds this too).
    pub max_devices: u32,
    /// Queue-depth-per-device above which the pool grows.
    pub scale_up_queue: f64,
    /// How often the autoscaler re-evaluates.
    pub interval: SimDuration,
    /// Delay for a newly provisioned device to become usable.
    pub provision_delay: SimDuration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_devices: 1,
            max_devices: 64,
            scale_up_queue: 2.0,
            interval: SimDuration::from_millis(10),
            provision_delay: SimDuration::from_millis(50),
        }
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Hardware generation.
    pub generation: Generation,
    /// Future resolution protocol (defaults to the generation's).
    pub resolution: ResolutionMode,
    /// Task placement policy.
    pub placement: PlacementPolicy,
    /// Deployment model.
    pub deployment: Deployment,
    /// Fault-tolerance mechanism.
    pub ft: FtMode,
    /// Enable gang scheduling for gang-labeled tasks.
    pub gang_scheduling: bool,
    /// Autoscale accelerator devices instead of assuming all warm.
    pub autoscale: Option<AutoscaleConfig>,
    /// Cold-start penalty per function in serverless deployments.
    pub cold_start: SimDuration,
    /// When a task's backend has no eligible device, run it on a CPU
    /// server with this slowdown factor (models "no physical
    /// disaggregation / no DSA access"; `None` makes such tasks an
    /// error).
    pub cpu_fallback_slowdown: Option<f64>,
    /// Outputs at most this many bytes are passed *by value*: the bytes
    /// ride inline in the already-priced control messages (producer ->
    /// owner at finish, scheduler -> raylet at dispatch), so consumers
    /// skip future resolution entirely — §2.1: "functions exchange data
    /// either by value or by reference". 0 disables inlining (every
    /// experiment default, so the by-reference protocols are what the
    /// figures measure).
    pub pass_by_value_max: u64,
    /// Cache a copy of every remotely-fetched input at the consumer
    /// (plasma semantics). Later consumers then read the nearest copy —
    /// fan-outs degrade into distribution chains instead of hammering the
    /// producer's NIC (the effect Hoplite-style collectives formalize).
    pub cache_fetched_copies: bool,
    /// Retry budget per task under lineage recovery.
    pub max_attempts: u32,
    /// How long after the scheduler's node dies a surviving server wins
    /// the (simulated, deterministic) election and becomes the new
    /// scheduler. State reconstruction — querying every surviving raylet
    /// — is priced on the network on top of this.
    pub election_delay: SimDuration,
    /// Rack-aware election winner choice: the failover prefers a
    /// candidate in the least-impacted rack (fewest failed nodes) over
    /// the plain lowest-ID surviving server; ties break by node ID so
    /// the election stays deterministic.
    pub rack_aware_election: bool,
    /// RNG seed for any stochastic tie-breaks.
    pub seed: u64,
    /// Record causal spans for every control message and data transfer.
    /// Off by default: tracing allocates per-event, and most experiments
    /// only need the aggregate metrics.
    pub tracing: bool,
    /// Run the cluster's internal invariant checker after every event
    /// (slot accounting, ownership/cache agreement, no tasks resident on
    /// failed nodes, ...). Off by default: it is O(cluster) per event and
    /// meant for the chaos harness and debugging, not experiments.
    pub debug_invariants: bool,
}

impl RuntimeConfig {
    /// The Skadi Gen-1 configuration.
    pub fn skadi_gen1() -> Self {
        RuntimeConfig {
            generation: Generation::Gen1,
            resolution: Generation::Gen1.default_resolution(),
            placement: PlacementPolicy::DataCentric,
            deployment: Deployment::DistributedRuntime,
            ft: FtMode::Lineage,
            gang_scheduling: false,
            autoscale: None,
            cold_start: SimDuration::from_millis(2),
            cpu_fallback_slowdown: Some(8.0),
            pass_by_value_max: 0,
            cache_fetched_copies: true,
            max_attempts: 5,
            election_delay: SimDuration::from_micros(500),
            rack_aware_election: false,
            seed: 42,
            tracing: false,
            debug_invariants: false,
        }
    }

    /// The Skadi Gen-2 configuration.
    pub fn skadi_gen2() -> Self {
        RuntimeConfig {
            generation: Generation::Gen2,
            resolution: Generation::Gen2.default_resolution(),
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// A Ray-like baseline: CPU-centric, pull-based, locality-aware but
    /// no physically-disaggregated devices (GPU/FPGA tasks fall back to
    /// CPU workers that *orchestrate* accelerators remotely, modeled as a
    /// slowdown).
    pub fn ray_like() -> Self {
        RuntimeConfig {
            generation: Generation::Gen1,
            resolution: ResolutionMode::Pull,
            placement: PlacementPolicy::DataCentric,
            deployment: Deployment::DistributedRuntime,
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// A Dryad-like stateless baseline.
    pub fn dryad_like() -> Self {
        RuntimeConfig {
            deployment: Deployment::StatelessServerless,
            resolution: ResolutionMode::Pull,
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// A Cloudburst-like stateful serverless baseline: caching layer but
    /// CPU-only and logically-disaggregated.
    pub fn cloudburst_like() -> Self {
        RuntimeConfig {
            generation: Generation::Gen1,
            resolution: ResolutionMode::Pull,
            placement: PlacementPolicy::LoadOnly,
            deployment: Deployment::DistributedRuntime,
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// Serverful (Figure 1a) baseline.
    pub fn serverful() -> Self {
        RuntimeConfig {
            deployment: Deployment::Serverful,
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// Stateless serverless (Figure 1b) baseline.
    pub fn stateless_serverless() -> Self {
        RuntimeConfig {
            deployment: Deployment::StatelessServerless,
            ..RuntimeConfig::skadi_gen1()
        }
    }

    /// Overrides the resolution protocol.
    pub fn with_resolution(mut self, r: ResolutionMode) -> Self {
        self.resolution = r;
        self
    }

    /// Overrides the placement policy.
    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Overrides the fault-tolerance mode.
    pub fn with_ft(mut self, ft: FtMode) -> Self {
        self.ft = ft;
        self
    }

    /// Enables gang scheduling.
    pub fn with_gang(mut self, on: bool) -> Self {
        self.gang_scheduling = on;
        self
    }

    /// Enables autoscaling.
    pub fn with_autoscale(mut self, cfg: AutoscaleConfig) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Enables causal span tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Overrides the control-plane failover election delay.
    pub fn with_election_delay(mut self, d: SimDuration) -> Self {
        self.election_delay = d;
        self
    }

    /// Enables rack-aware election winner choice.
    pub fn with_rack_aware_election(mut self, on: bool) -> Self {
        self.rack_aware_election = on;
        self
    }

    /// Enables per-event invariant checking (chaos/debug builds).
    pub fn with_debug_invariants(mut self, on: bool) -> Self {
        self.debug_invariants = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_pick_their_protocols() {
        assert_eq!(Generation::Gen1.default_resolution(), ResolutionMode::Pull);
        assert_eq!(Generation::Gen2.default_resolution(), ResolutionMode::Push);
        assert!(Generation::Gen1.route_policy().dpu_detour);
        assert!(!Generation::Gen2.route_policy().dpu_detour);
    }

    #[test]
    fn presets_differ_on_the_right_axes() {
        let g1 = RuntimeConfig::skadi_gen1();
        let g2 = RuntimeConfig::skadi_gen2();
        assert_ne!(g1.generation, g2.generation);
        assert_ne!(g1.resolution, g2.resolution);
        assert_eq!(g1.deployment, g2.deployment);

        let sf = RuntimeConfig::serverful();
        assert_eq!(sf.deployment, Deployment::Serverful);
        let sl = RuntimeConfig::stateless_serverless();
        assert_eq!(sl.deployment, Deployment::StatelessServerless);
    }

    #[test]
    fn builder_overrides() {
        let c = RuntimeConfig::skadi_gen2()
            .with_resolution(ResolutionMode::Pull)
            .with_ft(FtMode::Replication(2))
            .with_gang(true);
        assert_eq!(c.resolution, ResolutionMode::Pull);
        assert_eq!(c.ft, FtMode::Replication(2));
        assert!(c.gang_scheduling);
    }
}

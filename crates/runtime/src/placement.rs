//! Pluggable task-placement policies.
//!
//! The centralized scheduler delegates every "which node runs this
//! task?" decision to a [`Placer`], which dispatches through a
//! [`PlacementStrategy`] trait object selected by the
//! [`PlacementPolicy`] config knob. Three classic policies ship from the
//! paper's experiments (data-centric, load-only, round-robin) plus two
//! scale-oriented ones:
//!
//! - [`PlacementPolicy::LoadAware`] — TD-Orch-style power-of-k-choices:
//!   instead of scanning every eligible node, sample `k` candidates
//!   deterministically and trade locality against queue depth among
//!   them. O(k) per decision regardless of cluster size.
//! - [`PlacementPolicy::WorkStealing`] — idle-first: an idle node
//!   "pulls" the next ready task (rotating among idle nodes so pulls
//!   spread), falling back to least-loaded when nobody is idle. The
//!   cluster adds the second half of the protocol: a task parked behind
//!   a busy node's queue may be stolen by an idle peer (see
//!   `Cluster::on_try_start`).
//!
//! # Determinism and failover
//!
//! Every strategy is a pure function of `(eligible, facts, cursor)`:
//! no wall clock, no ambient randomness. Stateful strategies expose
//! their cursor via [`Placer::cursor`], and a newly elected scheduler
//! restores it ([`Placer::rebuild_for_failover`]) so, e.g., round-robin
//! resumes where the dead scheduler stopped instead of re-placing from
//! the start of the rotation.

use skadi_dcsim::topology::NodeId;

/// How the centralized scheduler places a ready task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Move compute to data: prefer the node holding the most input
    /// bytes, then the least-loaded (the paper's data-centric
    /// scheduling).
    DataCentric,
    /// Ignore data location: least-loaded node first.
    LoadOnly,
    /// Blind rotation (the pathological baseline).
    RoundRobin,
    /// Power-of-k-choices sampling: score `k` deterministic samples by
    /// locality traded against queue depth, pick the best. Scales to
    /// clusters where scanning every node per decision is too slow.
    LoadAware,
    /// Idle-first: idle nodes pull ready tasks (rotating), busy
    /// clusters degrade to least-loaded; the cluster also lets idle
    /// nodes steal tasks parked behind busy peers.
    WorkStealing,
}

impl PlacementPolicy {
    /// Every policy, in a stable order (bench sweeps iterate this).
    pub const ALL: [PlacementPolicy; 5] = [
        PlacementPolicy::DataCentric,
        PlacementPolicy::LoadOnly,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LoadAware,
        PlacementPolicy::WorkStealing,
    ];

    /// Parses the kebab-case name used by `Display`, CLI flags, and
    /// config files.
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "data-centric" => Some(PlacementPolicy::DataCentric),
            "load-only" => Some(PlacementPolicy::LoadOnly),
            "round-robin" => Some(PlacementPolicy::RoundRobin),
            "load-aware" => Some(PlacementPolicy::LoadAware),
            "work-stealing" => Some(PlacementPolicy::WorkStealing),
            _ => None,
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlacementPolicy::DataCentric => "data-centric",
            PlacementPolicy::LoadOnly => "load-only",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LoadAware => "load-aware",
            PlacementPolicy::WorkStealing => "work-stealing",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PlacementPolicy::parse(s).ok_or_else(|| {
            format!(
                "unknown placement policy {s:?}; expected one of \
                 data-centric, load-only, round-robin, load-aware, work-stealing"
            )
        })
    }
}

/// Node facts the placement decision reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFacts {
    /// Bytes of the task's inputs already resident on the node.
    pub local_input_bytes: u64,
    /// Tasks queued or running on the node.
    pub load: u32,
    /// Free execution slots right now.
    pub free_slots: u32,
}

/// One placement algorithm. Implementations must be pure functions of
/// `(eligible, facts)` plus their own cursor — never of wall clock or
/// ambient randomness — so simulations replay identically.
pub trait PlacementStrategy: std::fmt::Debug + Send {
    /// Picks a node among `eligible` (non-empty). `facts` supplies
    /// per-node information; strategies should touch as few nodes as
    /// they can (the facts closure may be expensive).
    fn place(&mut self, eligible: &[NodeId], facts: &dyn Fn(NodeId) -> NodeFacts)
        -> Option<NodeId>;

    /// Opaque cursor state that must survive scheduler failover. The
    /// default (stateless strategy) is zero.
    fn cursor(&self) -> u64 {
        0
    }

    /// Restores a cursor captured by [`PlacementStrategy::cursor`].
    fn restore_cursor(&mut self, _cursor: u64) {}
}

/// Data-centric: most local bytes, then least load, then lowest ID.
#[derive(Debug, Default)]
struct DataCentric;

impl PlacementStrategy for DataCentric {
    fn place(
        &mut self,
        eligible: &[NodeId],
        facts: &dyn Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        eligible.iter().copied().min_by_key(|n| {
            let f = facts(*n);
            (std::cmp::Reverse(f.local_input_bytes), f.load, *n)
        })
    }
}

/// Load-only: least load, then most free slots, then lowest ID.
#[derive(Debug, Default)]
struct LoadOnly;

impl PlacementStrategy for LoadOnly {
    fn place(
        &mut self,
        eligible: &[NodeId],
        facts: &dyn Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        eligible.iter().copied().min_by_key(|n| {
            let f = facts(*n);
            (f.load, std::cmp::Reverse(f.free_slots), *n)
        })
    }
}

/// Round-robin rotation over the eligible list.
#[derive(Debug, Default)]
struct RoundRobin {
    cursor: u64,
}

impl PlacementStrategy for RoundRobin {
    fn place(
        &mut self,
        eligible: &[NodeId],
        _facts: &dyn Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        let n = eligible[(self.cursor % eligible.len() as u64) as usize];
        self.cursor += 1;
        Some(n)
    }

    fn cursor(&self) -> u64 {
        self.cursor
    }

    fn restore_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

/// SplitMix64: a tiny, stable mixing function. Used to derive the
/// power-of-k sample positions from the decision cursor so sampling is
/// reproducible (and survives failover with the cursor).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of candidates the power-of-k strategy samples per decision.
const K_CHOICES: usize = 4;

/// One queued task is worth this many bytes of locality: a candidate
/// with `load` queued tasks must hold `load * LOCALITY_TRADE_BYTES`
/// more input bytes than an idle one to win.
const LOCALITY_TRADE_BYTES: u64 = 4 << 20;

/// Power-of-k-choices with a locality/queue-depth trade-off.
#[derive(Debug, Default)]
struct LoadAware {
    cursor: u64,
}

impl LoadAware {
    /// The `k` distinct sample positions for decision `cursor` over a
    /// list of `len` nodes (all positions when `len <= k`).
    fn samples(cursor: u64, len: usize) -> Vec<usize> {
        if len <= K_CHOICES {
            return (0..len).collect();
        }
        let mut picked: Vec<usize> = Vec::with_capacity(K_CHOICES);
        for j in 0..K_CHOICES as u64 {
            let mut idx = (splitmix64(cursor.wrapping_mul(K_CHOICES as u64).wrapping_add(j))
                % len as u64) as usize;
            // Linear-probe past duplicates; k << len keeps this short.
            while picked.contains(&idx) {
                idx = (idx + 1) % len;
            }
            picked.push(idx);
        }
        picked
    }
}

impl PlacementStrategy for LoadAware {
    fn place(
        &mut self,
        eligible: &[NodeId],
        facts: &dyn Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        let samples = Self::samples(self.cursor, eligible.len());
        self.cursor += 1;
        samples.into_iter().map(|i| eligible[i]).min_by_key(|n| {
            let f = facts(*n);
            // Queue depth priced in locality bytes; the node whose
            // queue outweighs its locality the least wins. Ties:
            // deeper locality, more free slots, lowest ID.
            let score = (f.load as u64)
                .saturating_mul(LOCALITY_TRADE_BYTES)
                .saturating_sub(f.local_input_bytes);
            (
                score,
                std::cmp::Reverse(f.local_input_bytes),
                std::cmp::Reverse(f.free_slots),
                *n,
            )
        })
    }

    fn cursor(&self) -> u64 {
        self.cursor
    }

    fn restore_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

/// Idle-first with rotation; least-loaded fallback.
#[derive(Debug, Default)]
struct WorkStealing {
    cursor: u64,
}

impl PlacementStrategy for WorkStealing {
    fn place(
        &mut self,
        eligible: &[NodeId],
        facts: &dyn Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        let idle: Vec<NodeId> = eligible
            .iter()
            .copied()
            .filter(|n| {
                let f = facts(*n);
                f.load == 0 && f.free_slots > 0
            })
            .collect();
        if !idle.is_empty() {
            // Rotate through the idle set so consecutive pulls spread:
            // each idle node takes the next ready task in turn.
            let n = idle[(self.cursor % idle.len() as u64) as usize];
            self.cursor += 1;
            return Some(n);
        }
        eligible.iter().copied().min_by_key(|n| {
            let f = facts(*n);
            (f.load, std::cmp::Reverse(f.free_slots), *n)
        })
    }

    fn cursor(&self) -> u64 {
        self.cursor
    }

    fn restore_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

fn strategy_for(policy: PlacementPolicy) -> Box<dyn PlacementStrategy> {
    match policy {
        PlacementPolicy::DataCentric => Box::new(DataCentric),
        PlacementPolicy::LoadOnly => Box::new(LoadOnly),
        PlacementPolicy::RoundRobin => Box::new(RoundRobin::default()),
        PlacementPolicy::LoadAware => Box::new(LoadAware::default()),
        PlacementPolicy::WorkStealing => Box::new(WorkStealing::default()),
    }
}

/// The centralized placement engine: policy knob + strategy object.
#[derive(Debug)]
pub struct Placer {
    policy: PlacementPolicy,
    strategy: Box<dyn PlacementStrategy>,
}

impl Placer {
    /// Creates a placer with the given policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        Placer {
            policy,
            strategy: strategy_for(policy),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Picks a node among `eligible` (must be non-empty to return Some).
    /// `facts` supplies per-node information.
    pub fn place(
        &mut self,
        eligible: &[NodeId],
        facts: impl Fn(NodeId) -> NodeFacts,
    ) -> Option<NodeId> {
        if eligible.is_empty() {
            return None;
        }
        self.strategy.place(eligible, &facts)
    }

    /// The strategy's cursor (replicated to peers as scheduler metadata,
    /// so failover can resume the rotation).
    pub fn cursor(&self) -> u64 {
        self.strategy.cursor()
    }

    /// Restores a cursor captured by [`Placer::cursor`].
    pub fn restore_cursor(&mut self, cursor: u64) {
        self.strategy.restore_cursor(cursor);
    }

    /// Rebuilds the strategy on a newly elected scheduler, carrying the
    /// cursor forward: the rotation state is tiny scheduler metadata the
    /// peers replicate, so a failover must not restart it (a reset
    /// cursor would re-place the next tasks on nodes the dead scheduler
    /// already loaded — double-placing under round-robin).
    pub fn rebuild_for_failover(&mut self) {
        let cursor = self.strategy.cursor();
        self.strategy = strategy_for(self.policy);
        self.strategy.restore_cursor(cursor);
    }
}

impl Clone for Placer {
    fn clone(&self) -> Self {
        let mut p = Placer::new(self.policy);
        p.restore_cursor(self.cursor());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn data_centric_follows_bytes() {
        let mut p = Placer::new(PlacementPolicy::DataCentric);
        let picked = p
            .place(&nodes(3), |n| NodeFacts {
                local_input_bytes: if n == NodeId(1) { 1000 } else { 0 },
                load: 5,
                free_slots: 1,
            })
            .unwrap();
        assert_eq!(picked, NodeId(1));
    }

    #[test]
    fn data_centric_breaks_ties_by_load() {
        let mut p = Placer::new(PlacementPolicy::DataCentric);
        let picked = p
            .place(&nodes(3), |n| NodeFacts {
                local_input_bytes: 0,
                load: if n == NodeId(2) { 0 } else { 9 },
                free_slots: 1,
            })
            .unwrap();
        assert_eq!(picked, NodeId(2));
    }

    #[test]
    fn load_only_ignores_bytes() {
        let mut p = Placer::new(PlacementPolicy::LoadOnly);
        let picked = p
            .place(&nodes(2), |n| NodeFacts {
                local_input_bytes: if n == NodeId(0) { 10_000 } else { 0 },
                load: if n == NodeId(0) { 3 } else { 1 },
                free_slots: 1,
            })
            .unwrap();
        assert_eq!(picked, NodeId(1));
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let f = |_| NodeFacts {
            local_input_bytes: 0,
            load: 0,
            free_slots: 1,
        };
        let seq: Vec<NodeId> = (0..4).map(|_| p.place(&nodes(2), f).unwrap()).collect();
        assert_eq!(seq, vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn empty_eligible_returns_none() {
        for policy in PlacementPolicy::ALL {
            let mut p = Placer::new(policy);
            assert!(p
                .place(&[], |_| NodeFacts {
                    local_input_bytes: 0,
                    load: 0,
                    free_slots: 0
                })
                .is_none());
        }
    }

    #[test]
    fn every_policy_returns_an_eligible_node() {
        let eligible = nodes(17);
        for policy in PlacementPolicy::ALL {
            let mut p = Placer::new(policy);
            for round in 0..50u64 {
                let picked = p
                    .place(&eligible, |n| NodeFacts {
                        local_input_bytes: (n.0 as u64 * 37 + round) % 5000,
                        load: ((n.0 as u64 + round) % 7) as u32,
                        free_slots: (n.0 % 3) + 1,
                    })
                    .unwrap();
                assert!(
                    eligible.contains(&picked),
                    "{policy}: {picked} not eligible"
                );
            }
        }
    }

    #[test]
    fn load_aware_samples_are_deterministic_and_distinct() {
        let a = LoadAware::samples(42, 100);
        let b = LoadAware::samples(42, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), K_CHOICES);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), K_CHOICES, "samples must be distinct: {a:?}");
        // Small clusters degrade to a full scan.
        assert_eq!(LoadAware::samples(7, 3), vec![0, 1, 2]);
    }

    #[test]
    fn load_aware_trades_locality_against_queue_depth() {
        // Two nodes: one holds all the data but is deeply queued; the
        // other is idle. The idle node must win once the queue costs
        // more than the locality is worth.
        let two = nodes(2);
        let mut p = Placer::new(PlacementPolicy::LoadAware);
        let picked = p
            .place(&two, |n| {
                if n == NodeId(0) {
                    NodeFacts {
                        local_input_bytes: LOCALITY_TRADE_BYTES / 2,
                        load: 10,
                        free_slots: 0,
                    }
                } else {
                    NodeFacts {
                        local_input_bytes: 0,
                        load: 0,
                        free_slots: 4,
                    }
                }
            })
            .unwrap();
        assert_eq!(picked, NodeId(1));
        // With no queue pressure, locality wins.
        let mut p = Placer::new(PlacementPolicy::LoadAware);
        let picked = p
            .place(&two, |n| NodeFacts {
                local_input_bytes: if n == NodeId(0) { 1 << 20 } else { 0 },
                load: 0,
                free_slots: 4,
            })
            .unwrap();
        assert_eq!(picked, NodeId(0));
    }

    #[test]
    fn work_stealing_prefers_idle_and_rotates() {
        let mut p = Placer::new(PlacementPolicy::WorkStealing);
        // Nodes 1 and 3 idle; rotation alternates between them.
        let f = |n: NodeId| NodeFacts {
            local_input_bytes: 0,
            load: if n.0 % 2 == 1 { 0 } else { 2 },
            free_slots: 2,
        };
        let seq: Vec<NodeId> = (0..4).map(|_| p.place(&nodes(4), f).unwrap()).collect();
        assert_eq!(seq, vec![NodeId(1), NodeId(3), NodeId(1), NodeId(3)]);
        // Nobody idle: degrade to least-loaded.
        let picked = p
            .place(&nodes(4), |n| NodeFacts {
                local_input_bytes: 0,
                load: n.0 + 1,
                free_slots: 1,
            })
            .unwrap();
        assert_eq!(picked, NodeId(0));
    }

    #[test]
    fn cursor_survives_rebuild() {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LoadAware,
            PlacementPolicy::WorkStealing,
        ] {
            let f = |_| NodeFacts {
                local_input_bytes: 0,
                load: 0,
                free_slots: 1,
            };
            let eligible = nodes(5);
            let mut uninterrupted = Placer::new(policy);
            let mut failing_over = Placer::new(policy);
            for _ in 0..3 {
                uninterrupted.place(&eligible, f);
                failing_over.place(&eligible, f);
            }
            failing_over.rebuild_for_failover();
            for _ in 0..7 {
                assert_eq!(
                    uninterrupted.place(&eligible, f),
                    failing_over.place(&eligible, f),
                    "{policy}: cursor lost across failover"
                );
            }
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in PlacementPolicy::ALL {
            let name = policy.to_string();
            assert_eq!(PlacementPolicy::parse(&name), Some(policy), "{name}");
            assert_eq!(name.parse::<PlacementPolicy>().ok(), Some(policy));
        }
        assert!(PlacementPolicy::parse("greedy").is_none());
        assert!("greedy".parse::<PlacementPolicy>().is_err());
    }
}

//! Error type for IR construction, verification, and lowering.

use std::fmt;

use crate::op::{OpId, ValueId};

/// Errors from the IR layer.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An operand refers to a value that is not defined earlier in the
    /// module (SSA dominance violation) or not defined at all.
    UndefinedValue {
        /// The op using the value.
        op: OpId,
        /// The missing value.
        value: ValueId,
    },
    /// An op has the wrong operand count or attribute set.
    MalformedOp {
        /// The offending op.
        op: OpId,
        /// What is wrong.
        reason: String,
    },
    /// Types disagree.
    TypeError(String),
    /// The op cannot be lowered to any allowed backend.
    NoBackend {
        /// The op that could not be lowered.
        op: OpId,
        /// Its name.
        name: String,
    },
    /// A pass failed.
    PassError(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UndefinedValue { op, value } => {
                write!(f, "op {op} uses undefined value {value}")
            }
            IrError::MalformedOp { op, reason } => write!(f, "malformed op {op}: {reason}"),
            IrError::TypeError(msg) => write!(f, "type error: {msg}"),
            IrError::NoBackend { op, name } => {
                write!(f, "no backend can execute op {op} ({name})")
            }
            IrError::PassError(msg) => write!(f, "pass error: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

//! Lowering: from dialect ops to backend-annotated kernels.
//!
//! This is step (1) of the paper's logical-to-physical lowering (§2.1):
//! "selects hardware backends for MLIR-based ops using predefined rules".
//! The output is a [`KernelPlan`] the flowgraph layer turns into physical
//! vertices. [`lower_to_all_backends`] implements the paper's D1/D2
//! trick: lowering one op to several backends for a direct comparison.

use crate::backend::{estimate, Backend, BackendPolicy, CostEstimate};
use crate::error::IrError;
use crate::module::Module;
use crate::op::{Attr, Dialect, OpId, ValueId};

/// One executable kernel in the lowered plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The IR op this kernel implements.
    pub op: OpId,
    /// Op name (`kernel.fused` bodies keep their constituent list).
    pub name: String,
    /// Chosen hardware backend.
    pub backend: Backend,
    /// Input values.
    pub inputs: Vec<ValueId>,
    /// Output value.
    pub output: ValueId,
    /// Estimated cost at the policy's default cardinality.
    pub cost: CostEstimate,
    /// Constituent high-level ops (singleton for unfused kernels).
    pub body: Vec<String>,
}

/// The lowered form of a module.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    /// Kernels in dependency order.
    pub kernels: Vec<Kernel>,
    /// The module outputs.
    pub outputs: Vec<ValueId>,
}

impl KernelPlan {
    /// Kernels assigned to the given backend.
    pub fn on_backend(&self, b: Backend) -> Vec<&Kernel> {
        self.kernels.iter().filter(|k| k.backend == b).collect()
    }

    /// Total estimated time, microseconds, if kernels ran serially.
    pub fn serial_cost_us(&self) -> f64 {
        self.kernels.iter().map(|k| k.cost.total_us()).sum()
    }
}

fn body_of(m: &Module, op: OpId) -> Vec<String> {
    let op = m.ops().iter().find(|o| o.id == op).expect("op exists");
    if op.name == "kernel.fused" {
        op.attr("body")
            .and_then(Attr::as_str_list)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    } else {
        vec![op.name.clone()]
    }
}

/// Lowers every op of the module to a kernel with a backend chosen by
/// `policy`. Scalar constants lower to trivial CPU kernels.
pub fn lower_to_kernels(m: &Module, policy: &BackendPolicy) -> Result<KernelPlan, IrError> {
    let mut kernels = Vec::with_capacity(m.len());
    for op in m.ops() {
        if op.dialect == Dialect::Builtin {
            continue;
        }
        let (backend, cost) =
            policy
                .select(op, policy.default_elements)
                .ok_or_else(|| IrError::NoBackend {
                    op: op.id,
                    name: op.name.clone(),
                })?;
        kernels.push(Kernel {
            op: op.id,
            name: op.name.clone(),
            backend,
            inputs: op.operands.clone(),
            output: op.result(),
            cost,
            body: body_of(m, op.id),
        });
    }
    Ok(KernelPlan {
        kernels,
        outputs: m.outputs().to_vec(),
    })
}

/// Lowers one op to *every* backend that supports it, with costs — the
/// paper's direct-comparison path (vertex D lowered to GPU D1 and FPGA
/// D2 in Figure 2).
pub fn lower_to_all_backends(
    m: &Module,
    op: OpId,
    elements: u64,
) -> Result<Vec<(Backend, CostEstimate)>, IrError> {
    let op = m
        .ops()
        .iter()
        .find(|o| o.id == op)
        .ok_or(IrError::PassError(format!("no such op {op}")))?;
    let variants: Vec<(Backend, CostEstimate)> = Backend::ALL
        .iter()
        .filter_map(|b| estimate(op, elements, *b).map(|c| (*b, c)))
        .collect();
    if variants.is_empty() {
        return Err(IrError::NoBackend {
            op: op.id,
            name: op.name.clone(),
        });
    }
    Ok(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{rel, tensor};
    use crate::pass::PassManager;
    use crate::types::{frame_ty, IrType, ScalarType};

    fn mixed_module() -> Module {
        let mut m = Module::new();
        let s = rel::scan(
            &mut m,
            "events",
            frame_ty(&[("k", ScalarType::I64), ("v", ScalarType::F64)]),
        );
        let f = rel::filter(&mut m, s, "v > 0");
        let t = tensor::from_frame(&mut m, f, &["v"]);
        let w = tensor::source(&mut m, "w", IrType::matrix(ScalarType::F64));
        let mm = tensor::matmul(&mut m, t, w).unwrap();
        m.mark_output(mm);
        m
    }

    #[test]
    fn lowering_covers_every_op() {
        let m = mixed_module();
        let plan = lower_to_kernels(&m, &BackendPolicy::cost_based()).unwrap();
        assert_eq!(plan.kernels.len(), m.len());
        assert_eq!(plan.outputs, m.outputs());
    }

    #[test]
    fn cost_based_puts_matmul_on_gpu() {
        let m = mixed_module();
        let plan = lower_to_kernels(&m, &BackendPolicy::cost_based()).unwrap();
        let mm = plan
            .kernels
            .iter()
            .find(|k| k.name == "tensor.matmul")
            .unwrap();
        assert_eq!(mm.backend, Backend::Gpu);
    }

    #[test]
    fn cpu_only_policy_forces_cpu() {
        let m = mixed_module();
        let plan = lower_to_kernels(&m, &BackendPolicy::cpu_only()).unwrap();
        assert!(plan.kernels.iter().all(|k| k.backend == Backend::Cpu));
        assert!(plan.on_backend(Backend::Gpu).is_empty());
    }

    #[test]
    fn fused_kernels_carry_their_body() {
        let mut m = mixed_module();
        PassManager::standard().run(&mut m).unwrap();
        let plan = lower_to_kernels(&m, &BackendPolicy::cost_based()).unwrap();
        let fused = plan
            .kernels
            .iter()
            .find(|k| k.name == "kernel.fused")
            .expect("fusion should fire on filter+from_frame");
        assert!(fused.body.len() >= 2, "{:?}", fused.body);
    }

    #[test]
    fn all_backend_lowering_for_direct_comparison() {
        let m = mixed_module();
        // The tensor.from_frame op runs on all three backends.
        let op = m
            .ops()
            .iter()
            .find(|o| o.name == "tensor.from_frame")
            .unwrap()
            .id;
        let variants = lower_to_all_backends(&m, op, 1 << 20).unwrap();
        assert_eq!(variants.len(), 3);
        // The matmul only has CPU and GPU variants.
        let op = m
            .ops()
            .iter()
            .find(|o| o.name == "tensor.matmul")
            .unwrap()
            .id;
        let variants = lower_to_all_backends(&m, op, 1 << 20).unwrap();
        assert_eq!(variants.len(), 2);
    }

    #[test]
    fn serial_cost_sums() {
        let m = mixed_module();
        let plan = lower_to_kernels(&m, &BackendPolicy::cost_based()).unwrap();
        let total = plan.serial_cost_us();
        let sum: f64 = plan.kernels.iter().map(|k| k.cost.total_us()).sum();
        assert!((total - sum).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn fusion_reduces_serial_cost_and_kernel_count() {
        let mut fused = mixed_module();
        PassManager::standard().run(&mut fused).unwrap();
        let unfused = mixed_module();
        let p_fused = lower_to_kernels(&fused, &BackendPolicy::cost_based()).unwrap();
        let p_unfused = lower_to_kernels(&unfused, &BackendPolicy::cost_based()).unwrap();
        assert!(p_fused.kernels.len() < p_unfused.kernels.len());
        assert!(p_fused.serial_cost_us() < p_unfused.serial_cost_us());
    }
}

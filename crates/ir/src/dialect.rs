//! Typed op constructors per dialect.
//!
//! These are the "IR-based primitives" FlowGraph vertices are built from.
//! Each constructor appends one op to a [`Module`] and returns the result
//! value; type propagation (e.g. projection narrowing a frame) happens
//! here so the verifier can stay structural.

use std::collections::BTreeMap;

use crate::error::IrError;
use crate::module::Module;
use crate::op::{Attr, Dialect, ValueId};
use crate::types::{IrType, ScalarType};

fn attrs(pairs: Vec<(&str, Attr)>) -> BTreeMap<String, Attr> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// Relational dialect: scans, filters, projections, joins, aggregates.
pub mod rel {
    use super::*;

    /// `rel.scan`: reads a named base table with the given frame type.
    pub fn scan(m: &mut Module, table: &str, ty: IrType) -> ValueId {
        m.append(
            "rel.scan",
            Dialect::Relational,
            vec![],
            attrs(vec![("table", Attr::Str(table.into()))]),
            ty,
        )
    }

    /// `rel.filter`: keeps rows matching the predicate expression.
    pub fn filter(m: &mut Module, input: ValueId, pred: &str) -> ValueId {
        let ty = m.type_of(input).cloned().unwrap_or(IrType::Frame(vec![]));
        m.append(
            "rel.filter",
            Dialect::Relational,
            vec![input],
            attrs(vec![("pred", Attr::Str(pred.into()))]),
            ty,
        )
    }

    /// `rel.project`: keeps the named columns, narrowing the frame type.
    pub fn project(m: &mut Module, input: ValueId, cols: &[&str]) -> ValueId {
        let ty = match m.type_of(input) {
            Ok(IrType::Frame(all)) => IrType::Frame(
                all.iter()
                    .filter(|(n, _)| cols.contains(&n.as_str()))
                    .cloned()
                    .collect(),
            ),
            _ => IrType::Frame(vec![]),
        };
        m.append(
            "rel.project",
            Dialect::Relational,
            vec![input],
            attrs(vec![(
                "cols",
                Attr::StrList(cols.iter().map(|c| c.to_string()).collect()),
            )]),
            ty,
        )
    }

    /// `rel.join`: hash join on equal key columns.
    pub fn join(
        m: &mut Module,
        left: ValueId,
        right: ValueId,
        left_key: &str,
        right_key: &str,
    ) -> ValueId {
        let mut cols = Vec::new();
        if let Ok(IrType::Frame(l)) = m.type_of(left) {
            cols.extend(l.clone());
        }
        if let Ok(IrType::Frame(r)) = m.type_of(right) {
            for (n, t) in r {
                if !cols.iter().any(|(en, _)| en == n) {
                    cols.push((n.clone(), *t));
                }
            }
        }
        m.append(
            "rel.join",
            Dialect::Relational,
            vec![left, right],
            attrs(vec![
                ("left_key", Attr::Str(left_key.into())),
                ("right_key", Attr::Str(right_key.into())),
            ]),
            IrType::Frame(cols),
        )
    }

    /// `rel.aggregate`: grouped aggregation, e.g. `sum(v)` by `k`.
    pub fn aggregate(m: &mut Module, input: ValueId, group_by: &[&str], agg_expr: &str) -> ValueId {
        let ty = match m.type_of(input) {
            Ok(IrType::Frame(all)) => {
                let mut cols: Vec<(String, ScalarType)> = all
                    .iter()
                    .filter(|(n, _)| group_by.contains(&n.as_str()))
                    .cloned()
                    .collect();
                cols.push(("agg".to_string(), ScalarType::F64));
                IrType::Frame(cols)
            }
            _ => IrType::Frame(vec![("agg".to_string(), ScalarType::F64)]),
        };
        m.append(
            "rel.aggregate",
            Dialect::Relational,
            vec![input],
            attrs(vec![
                (
                    "group_by",
                    Attr::StrList(group_by.iter().map(|c| c.to_string()).collect()),
                ),
                ("agg", Attr::Str(agg_expr.into())),
            ]),
            ty,
        )
    }

    /// `rel.sort`: orders by the named column.
    pub fn sort(m: &mut Module, input: ValueId, by: &str, descending: bool) -> ValueId {
        let ty = m.type_of(input).cloned().unwrap_or(IrType::Frame(vec![]));
        m.append(
            "rel.sort",
            Dialect::Relational,
            vec![input],
            attrs(vec![
                ("by", Attr::Str(by.into())),
                ("desc", Attr::Bool(descending)),
            ]),
            ty,
        )
    }

    /// `rel.limit`: keeps the first `n` rows.
    pub fn limit(m: &mut Module, input: ValueId, n: i64) -> ValueId {
        let ty = m.type_of(input).cloned().unwrap_or(IrType::Frame(vec![]));
        m.append(
            "rel.limit",
            Dialect::Relational,
            vec![input],
            attrs(vec![("n", Attr::Int(n))]),
            ty,
        )
    }
}

/// Tensor dialect: dense linear algebra and elementwise maps.
pub mod tensor {
    use super::*;

    /// `tensor.source`: an input tensor (training batch, parameters).
    pub fn source(m: &mut Module, name: &str, ty: IrType) -> ValueId {
        m.append(
            "tensor.source",
            Dialect::Tensor,
            vec![],
            attrs(vec![("name", Attr::Str(name.into()))]),
            ty,
        )
    }

    /// `tensor.matmul`: matrix multiplication.
    pub fn matmul(m: &mut Module, a: ValueId, b: ValueId) -> Result<ValueId, IrError> {
        let elem = match m.type_of(a)? {
            IrType::Tensor { elem, .. } => *elem,
            other => {
                return Err(IrError::TypeError(format!(
                    "matmul operand must be a tensor, got {other}"
                )))
            }
        };
        Ok(m.append(
            "tensor.matmul",
            Dialect::Tensor,
            vec![a, b],
            BTreeMap::new(),
            IrType::matrix(elem),
        ))
    }

    /// `tensor.map`: elementwise function application.
    pub fn map(m: &mut Module, input: ValueId, func: &str) -> ValueId {
        let ty = m
            .type_of(input)
            .cloned()
            .unwrap_or(IrType::matrix(ScalarType::F64));
        m.append(
            "tensor.map",
            Dialect::Tensor,
            vec![input],
            attrs(vec![("func", Attr::Str(func.into()))]),
            ty,
        )
    }

    /// `tensor.add`: elementwise addition.
    pub fn add(m: &mut Module, a: ValueId, b: ValueId) -> ValueId {
        let ty = m
            .type_of(a)
            .cloned()
            .unwrap_or(IrType::matrix(ScalarType::F64));
        m.append(
            "tensor.add",
            Dialect::Tensor,
            vec![a, b],
            BTreeMap::new(),
            ty,
        )
    }

    /// `tensor.reduce`: reduction along all axes to a scalar.
    pub fn reduce(m: &mut Module, input: ValueId, func: &str) -> ValueId {
        let elem = match m.type_of(input) {
            Ok(IrType::Tensor { elem, .. }) => *elem,
            _ => ScalarType::F64,
        };
        m.append(
            "tensor.reduce",
            Dialect::Tensor,
            vec![input],
            attrs(vec![("func", Attr::Str(func.into()))]),
            IrType::Scalar(elem),
        )
    }

    /// `tensor.from_frame`: converts a frame column block to a tensor
    /// (the cross-domain bridge, e.g. features for training).
    pub fn from_frame(m: &mut Module, input: ValueId, cols: &[&str]) -> ValueId {
        m.append(
            "tensor.from_frame",
            Dialect::Tensor,
            vec![input],
            attrs(vec![(
                "cols",
                Attr::StrList(cols.iter().map(|c| c.to_string()).collect()),
            )]),
            IrType::matrix(ScalarType::F64),
        )
    }

    /// `tensor.sgd_step`: one optimizer step (weights, gradient).
    pub fn sgd_step(m: &mut Module, weights: ValueId, grad: ValueId, lr: f64) -> ValueId {
        let ty = m
            .type_of(weights)
            .cloned()
            .unwrap_or(IrType::matrix(ScalarType::F64));
        m.append(
            "tensor.sgd_step",
            Dialect::Tensor,
            vec![weights, grad],
            attrs(vec![("lr", Attr::Float(lr))]),
            ty,
        )
    }
}

/// Scalar dialect: constants and arithmetic, foldable at compile time.
pub mod scalar {
    use super::*;

    /// `scalar.const`: an integer constant.
    pub fn const_i64(m: &mut Module, v: i64) -> ValueId {
        m.append(
            "scalar.const",
            Dialect::Scalar,
            vec![],
            attrs(vec![("value", Attr::Int(v))]),
            IrType::Scalar(ScalarType::I64),
        )
    }

    /// `scalar.const`: a float constant.
    pub fn const_f64(m: &mut Module, v: f64) -> ValueId {
        m.append(
            "scalar.const",
            Dialect::Scalar,
            vec![],
            attrs(vec![("value", Attr::Float(v))]),
            IrType::Scalar(ScalarType::F64),
        )
    }

    /// `scalar.add`.
    pub fn add(m: &mut Module, a: ValueId, b: ValueId) -> ValueId {
        let ty = m
            .type_of(a)
            .cloned()
            .unwrap_or(IrType::Scalar(ScalarType::I64));
        m.append(
            "scalar.add",
            Dialect::Scalar,
            vec![a, b],
            BTreeMap::new(),
            ty,
        )
    }

    /// `scalar.mul`.
    pub fn mul(m: &mut Module, a: ValueId, b: ValueId) -> ValueId {
        let ty = m
            .type_of(a)
            .cloned()
            .unwrap_or(IrType::Scalar(ScalarType::I64));
        m.append(
            "scalar.mul",
            Dialect::Scalar,
            vec![a, b],
            BTreeMap::new(),
            ty,
        )
    }
}

/// Kernel dialect: the lowered, backend-annotated form.
pub mod kernel {
    use super::*;

    /// `kernel.exec`: one executable kernel. `body` names the fused
    /// high-level ops it implements; `backend` names the hardware.
    pub fn exec(
        m: &mut Module,
        inputs: Vec<ValueId>,
        body: Vec<String>,
        backend: &str,
        ty: IrType,
    ) -> ValueId {
        m.append(
            "kernel.exec",
            Dialect::Kernel,
            inputs,
            attrs(vec![
                ("body", Attr::StrList(body)),
                ("backend", Attr::Str(backend.into())),
            ]),
            ty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::frame_ty;

    #[test]
    fn project_narrows_frame_type() {
        let mut m = Module::new();
        let s = rel::scan(
            &mut m,
            "t",
            frame_ty(&[("a", ScalarType::I64), ("b", ScalarType::Str)]),
        );
        let p = rel::project(&mut m, s, &["b"]);
        assert_eq!(m.type_of(p).unwrap(), &frame_ty(&[("b", ScalarType::Str)]));
        m.verify().unwrap();
    }

    #[test]
    fn join_merges_columns() {
        let mut m = Module::new();
        let l = rel::scan(
            &mut m,
            "l",
            frame_ty(&[("k", ScalarType::I64), ("x", ScalarType::F64)]),
        );
        let r = rel::scan(
            &mut m,
            "r",
            frame_ty(&[("k", ScalarType::I64), ("y", ScalarType::F64)]),
        );
        let j = rel::join(&mut m, l, r, "k", "k");
        let cols = m.type_of(j).unwrap().frame_columns().unwrap().to_vec();
        let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["k", "x", "y"]);
    }

    #[test]
    fn aggregate_adds_agg_column() {
        let mut m = Module::new();
        let s = rel::scan(
            &mut m,
            "t",
            frame_ty(&[("k", ScalarType::I64), ("v", ScalarType::F64)]),
        );
        let a = rel::aggregate(&mut m, s, &["k"], "sum(v)");
        let cols = m.type_of(a).unwrap().frame_columns().unwrap().to_vec();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].0, "agg");
    }

    #[test]
    fn matmul_requires_tensors() {
        let mut m = Module::new();
        let f = rel::scan(&mut m, "t", frame_ty(&[("a", ScalarType::I64)]));
        assert!(tensor::matmul(&mut m, f, f).is_err());
        let a = tensor::source(&mut m, "w", IrType::matrix(ScalarType::F64));
        let b = tensor::source(&mut m, "x", IrType::matrix(ScalarType::F64));
        let c = tensor::matmul(&mut m, a, b).unwrap();
        assert_eq!(m.type_of(c).unwrap(), &IrType::matrix(ScalarType::F64));
    }

    #[test]
    fn reduce_yields_scalar() {
        let mut m = Module::new();
        let t = tensor::source(&mut m, "x", IrType::matrix(ScalarType::F64));
        let r = tensor::reduce(&mut m, t, "sum");
        assert_eq!(m.type_of(r).unwrap(), &IrType::Scalar(ScalarType::F64));
    }

    #[test]
    fn scalar_constants() {
        let mut m = Module::new();
        let a = scalar::const_i64(&mut m, 2);
        let b = scalar::const_i64(&mut m, 3);
        let c = scalar::add(&mut m, a, b);
        m.mark_output(c);
        m.verify().unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn kernel_exec_records_body_and_backend() {
        let mut m = Module::new();
        let t = tensor::source(&mut m, "x", IrType::matrix(ScalarType::F64));
        let k = kernel::exec(
            &mut m,
            vec![t],
            vec!["tensor.map".into()],
            "gpu",
            IrType::matrix(ScalarType::F64),
        );
        let op = m.def_of(k).unwrap();
        assert_eq!(op.attr("backend").unwrap().as_str(), Some("gpu"));
        assert_eq!(op.attr("body").unwrap().as_str_list().unwrap().len(), 1);
    }
}

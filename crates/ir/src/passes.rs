//! The standard passes: canonicalization, constant folding, CSE, fusion,
//! and dead-code elimination.
//!
//! Fusion is the pass the paper's access layer motivates: "a common IR
//! enables graph-level optimizations such as op-fusing *across application
//! domains*" (§1). [`Fusion`] collapses chains of per-row/per-element ops
//! — including chains that cross from the relational dialect into the
//! tensor dialect — into single `kernel.fused` ops, which later lower to
//! one hardware kernel instead of several (fewer task launches, no
//! intermediate materialization).

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::error::IrError;
use crate::module::Module;
use crate::op::{Attr, Dialect, Op, OpId, ValueId};
use crate::pass::Pass;

/// Canonicalization: merges adjacent projections and limits, and removes
/// `builtin.id` indirections.
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, m: &mut Module) -> Result<bool, IrError> {
        let mut changed = false;

        // builtin.id(x) -> x.
        let ids: Vec<(OpId, ValueId, ValueId)> = m
            .ops()
            .iter()
            .filter(|o| o.name == "builtin.id")
            .map(|o| (o.id, o.result(), o.operands[0]))
            .collect();
        for (op, result, operand) in ids {
            m.replace_all_uses(result, operand);
            m.retain_ops(&[op]);
            changed = true;
        }

        // rel.limit(rel.limit(x, a), b) -> rel.limit(x, min(a, b)), when
        // the inner limit has a single use.
        loop {
            let mut rewrite: Option<(OpId, ValueId, i64)> = None;
            for op in m.ops() {
                if op.name != "rel.limit" {
                    continue;
                }
                let outer_n = op.attr("n").and_then(Attr::as_int).unwrap_or(i64::MAX);
                let Some(inner) = m.def_of(op.operands[0]) else {
                    continue;
                };
                if inner.name == "rel.limit" && m.use_count(inner.result()) == 1 {
                    let inner_n = inner.attr("n").and_then(Attr::as_int).unwrap_or(i64::MAX);
                    rewrite = Some((op.id, inner.operands[0], outer_n.min(inner_n)));
                    break;
                }
            }
            let Some((outer_id, new_input, n)) = rewrite else {
                break;
            };
            let op = m
                .ops_mut()
                .iter_mut()
                .find(|o| o.id == outer_id)
                .expect("just found");
            op.operands = vec![new_input];
            op.attrs.insert("n".into(), Attr::Int(n));
            changed = true;
        }

        Ok(changed)
    }
}

/// Constant folding for `scalar.add`/`scalar.mul` over `scalar.const`.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, m: &mut Module) -> Result<bool, IrError> {
        let mut changed = false;
        loop {
            let mut target: Option<(OpId, Attr)> = None;
            for op in m.ops() {
                let fold = matches!(op.name.as_str(), "scalar.add" | "scalar.mul");
                if !fold || op.operands.len() != 2 {
                    continue;
                }
                let lhs = m.def_of(op.operands[0]);
                let rhs = m.def_of(op.operands[1]);
                let (Some(l), Some(r)) = (lhs, rhs) else {
                    continue;
                };
                if l.name != "scalar.const" || r.name != "scalar.const" {
                    continue;
                }
                let (lv, rv) = (l.attr("value"), r.attr("value"));
                let folded = match (lv, rv) {
                    (Some(Attr::Int(a)), Some(Attr::Int(b))) => {
                        let v = if op.name == "scalar.add" {
                            a.wrapping_add(*b)
                        } else {
                            a.wrapping_mul(*b)
                        };
                        Some(Attr::Int(v))
                    }
                    (Some(a), Some(b)) => {
                        let (a, b) = (a.as_float(), b.as_float());
                        match (a, b) {
                            (Some(a), Some(b)) => {
                                let v = if op.name == "scalar.add" {
                                    a + b
                                } else {
                                    a * b
                                };
                                Some(Attr::Float(v))
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                };
                if let Some(v) = folded {
                    target = Some((op.id, v));
                    break;
                }
            }
            let Some((id, value)) = target else {
                break;
            };
            let op = m
                .ops_mut()
                .iter_mut()
                .find(|o| o.id == id)
                .expect("just found");
            op.name = "scalar.const".into();
            op.dialect = Dialect::Scalar;
            op.operands.clear();
            op.attrs = BTreeMap::from([("value".to_string(), value)]);
            changed = true;
        }
        Ok(changed)
    }
}

/// Common-subexpression elimination by structural fingerprint.
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, m: &mut Module) -> Result<bool, IrError> {
        let mut seen: HashMap<String, ValueId> = HashMap::new();
        let mut dup: Vec<(OpId, ValueId, ValueId)> = Vec::new();
        for op in m.ops() {
            if op.results.len() != 1 {
                continue;
            }
            let fp = op.fingerprint();
            match seen.get(&fp) {
                Some(canon) => dup.push((op.id, op.result(), *canon)),
                None => {
                    seen.insert(fp, op.result());
                }
            }
        }
        if dup.is_empty() {
            return Ok(false);
        }
        let mut remove = Vec::new();
        for (id, result, canon) in dup {
            m.replace_all_uses(result, canon);
            remove.push(id);
        }
        m.retain_ops(&remove);
        Ok(true)
    }
}

/// Dead-code elimination: removes ops whose results are unused and are
/// not module outputs.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, m: &mut Module) -> Result<bool, IrError> {
        let mut changed = false;
        loop {
            let dead: Vec<OpId> = m
                .ops()
                .iter()
                .filter(|o| o.results.iter().all(|r| m.use_count(*r) == 0))
                .map(|o| o.id)
                .collect();
            if dead.is_empty() {
                break;
            }
            m.retain_ops(&dead);
            changed = true;
        }
        Ok(changed)
    }
}

/// Ops that can join a fused chain: per-row / per-element work with one
/// primary data input. The set deliberately spans dialects so chains can
/// cross domain boundaries.
fn fusable(name: &str) -> bool {
    matches!(
        name,
        "rel.filter" | "rel.project" | "tensor.map" | "tensor.from_frame" | "kernel.fused"
    )
}

/// Producer-consumer fusion into `kernel.fused` ops.
pub struct Fusion;

impl Pass for Fusion {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, m: &mut Module) -> Result<bool, IrError> {
        // Find one producer-consumer pair to fuse per rewrite, then loop.
        // A pair fuses when both ops are fusable, the producer's single
        // result feeds only the consumer, and the consumer's primary input
        // is that result.
        let mut changed = false;
        loop {
            let mut pair: Option<(OpId, OpId)> = None;
            for consumer in m.ops() {
                if !fusable(&consumer.name) || consumer.operands.len() != 1 {
                    continue;
                }
                let Some(producer) = m.def_of(consumer.operands[0]) else {
                    continue;
                };
                if !fusable(&producer.name)
                    || producer.results.len() != 1
                    || producer.operands.len() > 1
                    || m.use_count(producer.result()) != 1
                {
                    continue;
                }
                pair = Some((producer.id, consumer.id));
                break;
            }
            let Some((pid, cid)) = pair else {
                break;
            };
            fuse_pair(m, pid, cid);
            changed = true;
        }
        Ok(changed)
    }
}

/// Describes one op for the fused body list.
fn body_entry(op: &Op) -> Vec<String> {
    if op.name == "kernel.fused" {
        op.attr("body")
            .and_then(Attr::as_str_list)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    } else {
        vec![op.name.clone()]
    }
}

fn fuse_pair(m: &mut Module, pid: OpId, cid: OpId) {
    let producer = m
        .ops()
        .iter()
        .find(|o| o.id == pid)
        .expect("producer exists")
        .clone();
    let consumer = m
        .ops()
        .iter()
        .find(|o| o.id == cid)
        .expect("consumer exists")
        .clone();

    let mut body = body_entry(&producer);
    body.extend(body_entry(&consumer));

    let fused_id = m.fresh_op_id();
    let fused = Op {
        id: fused_id,
        name: "kernel.fused".into(),
        dialect: Dialect::Kernel,
        operands: producer.operands.clone(),
        // Reuse the consumer's result value so downstream uses stay valid.
        results: consumer.results.clone(),
        attrs: BTreeMap::from([("body".to_string(), Attr::StrList(body))]),
    };

    // Replace the producer in place (keeps SSA order: its operands are
    // defined before it, and the consumer's result is only used later).
    let pos = m
        .ops()
        .iter()
        .position(|o| o.id == pid)
        .expect("producer exists");
    m.ops_mut()[pos] = fused;
    m.retain_ops(&[cid]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{rel, scalar, tensor};
    use crate::pass::PassManager;
    use crate::types::{frame_ty, IrType, ScalarType};

    fn frame() -> IrType {
        frame_ty(&[("a", ScalarType::I64), ("b", ScalarType::F64)])
    }

    #[test]
    fn const_fold_collapses_arith() {
        let mut m = Module::new();
        let a = scalar::const_i64(&mut m, 2);
        let b = scalar::const_i64(&mut m, 3);
        let c = scalar::add(&mut m, a, b);
        let d = scalar::mul(&mut m, c, c);
        m.mark_output(d);
        let mut pm = PassManager::new();
        pm.add(ConstFold);
        pm.add(Cse);
        pm.add(Dce);
        pm.run(&mut m).unwrap();
        // Everything folds to one constant 25.
        assert_eq!(m.len(), 1);
        assert_eq!(m.ops()[0].attr("value").unwrap().as_int(), Some(25));
    }

    #[test]
    fn cse_dedupes_identical_scans() {
        let mut m = Module::new();
        let s1 = rel::scan(&mut m, "t", frame());
        let s2 = rel::scan(&mut m, "t", frame());
        let j = rel::join(&mut m, s1, s2, "a", "a");
        m.mark_output(j);
        let mut pm = PassManager::new();
        pm.add(Cse);
        pm.run(&mut m).unwrap();
        // The join now reads the same scan twice.
        assert_eq!(m.len(), 2);
        let join = m.ops().iter().find(|o| o.name == "rel.join").unwrap();
        assert_eq!(join.operands[0], join.operands[1]);
    }

    #[test]
    fn dce_drops_unused() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame());
        let _dead = rel::filter(&mut m, s, "a > 0");
        let live = rel::filter(&mut m, s, "a > 1");
        m.mark_output(live);
        let mut pm = PassManager::new();
        pm.add(Dce);
        pm.run(&mut m).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fusion_collapses_unary_chain() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame());
        let f = rel::filter(&mut m, s, "a > 0");
        let p = rel::project(&mut m, f, &["b"]);
        m.mark_output(p);
        let mut pm = PassManager::new();
        pm.add(Fusion);
        pm.run(&mut m).unwrap();
        m.verify().unwrap();
        // scan + fused(filter, project).
        assert_eq!(m.len(), 2);
        let fused = m.ops().iter().find(|o| o.name == "kernel.fused").unwrap();
        assert_eq!(
            fused.attr("body").unwrap().as_str_list().unwrap(),
            &["rel.filter".to_string(), "rel.project".to_string()]
        );
        assert_eq!(m.outputs(), &[fused.result()]);
    }

    #[test]
    fn fusion_crosses_domains() {
        // rel.filter -> tensor.from_frame -> tensor.map: one kernel.
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame());
        let f = rel::filter(&mut m, s, "a > 0");
        let t = tensor::from_frame(&mut m, f, &["b"]);
        let r = tensor::map(&mut m, t, "relu");
        m.mark_output(r);
        let mut pm = PassManager::new();
        pm.add(Fusion);
        pm.run(&mut m).unwrap();
        m.verify().unwrap();
        assert_eq!(m.len(), 2);
        let fused = m.ops().iter().find(|o| o.name == "kernel.fused").unwrap();
        let body = fused.attr("body").unwrap().as_str_list().unwrap();
        assert_eq!(
            body,
            &[
                "rel.filter".to_string(),
                "tensor.from_frame".to_string(),
                "tensor.map".to_string()
            ]
        );
    }

    #[test]
    fn fusion_respects_multiple_uses() {
        // The filter result feeds two consumers: must not fuse into either.
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame());
        let f = rel::filter(&mut m, s, "a > 0");
        let p1 = rel::project(&mut m, f, &["a"]);
        let p2 = rel::project(&mut m, f, &["b"]);
        m.mark_output(p1);
        m.mark_output(p2);
        let mut pm = PassManager::new();
        pm.add(Fusion);
        pm.run(&mut m).unwrap();
        m.verify().unwrap();
        // The filter survives; the projections cannot take it.
        assert!(m.ops().iter().any(|o| o.name == "rel.filter"));
    }

    #[test]
    fn canonicalize_merges_limits() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame());
        let l1 = rel::limit(&mut m, s, 100);
        let l2 = rel::limit(&mut m, l1, 10);
        m.mark_output(l2);
        let mut pm = PassManager::new();
        pm.add(Canonicalize);
        pm.add(Dce);
        pm.run(&mut m).unwrap();
        m.verify().unwrap();
        let limits: Vec<_> = m.ops().iter().filter(|o| o.name == "rel.limit").collect();
        assert_eq!(limits.len(), 1);
        assert_eq!(limits[0].attr("n").unwrap().as_int(), Some(10));
    }

    #[test]
    fn standard_pipeline_on_mixed_module() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "events", frame());
        let f1 = rel::filter(&mut m, s, "a > 0");
        let f2 = rel::filter(&mut m, f1, "b < 10");
        let t = tensor::from_frame(&mut m, f2, &["b"]);
        let mapped = tensor::map(&mut m, t, "normalize");
        let red = tensor::reduce(&mut m, mapped, "sum");
        m.mark_output(red);
        let before = m.len();
        let report = PassManager::standard().run(&mut m).unwrap();
        m.verify().unwrap();
        assert!(m.len() < before, "{} -> {}", before, m.len());
        assert!(report.total_changes() > 0);
        // The whole per-row chain fused into one kernel.
        let fused: Vec<_> = m
            .ops()
            .iter()
            .filter(|o| o.name == "kernel.fused")
            .collect();
        assert_eq!(fused.len(), 1);
        assert_eq!(
            fused[0].attr("body").unwrap().as_str_list().unwrap().len(),
            4
        );
    }
}

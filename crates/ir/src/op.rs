//! SSA operations and attributes.

use std::collections::BTreeMap;
use std::fmt;

/// An SSA value identifier (`%3` in the textual form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An operation identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The dialect an op belongs to. Mirrors the paper's tiering: high-level
/// domain dialects get progressively lowered to the kernel dialect that
/// names a hardware backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Relational algebra (scan/filter/project/join/aggregate).
    Relational,
    /// Dense linear algebra / elementwise tensor ops.
    Tensor,
    /// Scalar arithmetic and constants.
    Scalar,
    /// Backend-annotated executable kernels (the lowered form).
    Kernel,
    /// Structural ops (outputs, identity).
    Builtin,
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dialect::Relational => "rel",
            Dialect::Tensor => "tensor",
            Dialect::Scalar => "scalar",
            Dialect::Kernel => "kernel",
            Dialect::Builtin => "builtin",
        };
        f.write_str(s)
    }
}

/// An attribute value attached to an op.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Integer attribute.
    Int(i64),
    /// Float attribute.
    Float(f64),
    /// String attribute (predicates, column lists, table names).
    Str(String),
    /// Boolean attribute.
    Bool(bool),
    /// List of integers.
    IntList(Vec<i64>),
    /// List of strings.
    StrList(Vec<String>),
}

impl Attr {
    /// The string payload, if this is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an int attribute.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, accepting ints too.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attr::Float(v) => Some(*v),
            Attr::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string-list payload, if present.
    pub fn as_str_list(&self) -> Option<&[String]> {
        match self {
            Attr::StrList(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::Int(v) => write!(f, "{v}"),
            // Always keep a decimal point so the textual form re-parses
            // as a float, not an int.
            Attr::Float(v) => write!(f, "{v:?}"),
            Attr::Str(v) => write!(f, "{v:?}"),
            Attr::Bool(v) => write!(f, "{v}"),
            Attr::IntList(v) => write!(f, "{v:?}"),
            Attr::StrList(v) => write!(f, "{v:?}"),
        }
    }
}

/// One SSA operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Identity within the module.
    pub id: OpId,
    /// Fully-qualified name, e.g. `rel.filter`.
    pub name: String,
    /// Owning dialect.
    pub dialect: Dialect,
    /// Input values.
    pub operands: Vec<ValueId>,
    /// Output values (usually exactly one).
    pub results: Vec<ValueId>,
    /// Attributes, sorted by key for deterministic printing/hashing.
    pub attrs: BTreeMap<String, Attr>,
}

impl Op {
    /// The single result of the op.
    ///
    /// # Panics
    ///
    /// Panics if the op does not have exactly one result.
    pub fn result(&self) -> ValueId {
        assert_eq!(
            self.results.len(),
            1,
            "{} has {} results",
            self.name,
            self.results.len()
        );
        self.results[0]
    }

    /// Reads a named attribute.
    pub fn attr(&self, key: &str) -> Option<&Attr> {
        self.attrs.get(key)
    }

    /// A structural fingerprint used by CSE: name + operands + attrs
    /// (results excluded).
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "{}(", self.name);
        for o in &self.operands {
            let _ = write!(s, "{o},");
        }
        let _ = write!(s, ")[");
        for (k, v) in &self.attrs {
            let _ = write!(s, "{k}={v};");
        }
        s.push(']');
        s
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        if !self.results.is_empty() {
            write!(f, " = ")?;
        }
        write!(f, "{}(", self.name)?;
        for (i, o) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, ")")?;
        if !self.attrs.is_empty() {
            write!(f, " {{")?;
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k} = {v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Op {
        let mut attrs = BTreeMap::new();
        attrs.insert("pred".to_string(), Attr::Str("x > 1".into()));
        attrs.insert("limit".to_string(), Attr::Int(5));
        Op {
            id: OpId(0),
            name: "rel.filter".into(),
            dialect: Dialect::Relational,
            operands: vec![ValueId(1)],
            results: vec![ValueId(2)],
            attrs,
        }
    }

    #[test]
    fn display_is_mlir_like() {
        let s = sample().to_string();
        assert_eq!(s, "%2 = rel.filter(%1) {limit = 5, pred = \"x > 1\"}");
    }

    #[test]
    fn fingerprint_ignores_results() {
        let a = sample();
        let mut b = sample();
        b.results = vec![ValueId(99)];
        b.id = OpId(7);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.attrs.insert("limit".into(), Attr::Int(6));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn attr_accessors() {
        let op = sample();
        assert_eq!(op.attr("pred").unwrap().as_str(), Some("x > 1"));
        assert_eq!(op.attr("limit").unwrap().as_int(), Some(5));
        assert_eq!(op.attr("limit").unwrap().as_float(), Some(5.0));
        assert!(op.attr("missing").is_none());
    }

    #[test]
    fn result_accessor() {
        assert_eq!(sample().result(), ValueId(2));
    }
}

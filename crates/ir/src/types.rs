//! IR type system: scalars, tensors, and frames.

use std::fmt;

/// Element/scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I64 => "i64",
            ScalarType::F64 => "f64",
            ScalarType::Bool => "bool",
            ScalarType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A tensor dimension: statically known or dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Known extent.
    Known(u64),
    /// Unknown until runtime.
    Dynamic,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(n) => write!(f, "{n}"),
            Dim::Dynamic => f.write_str("?"),
        }
    }
}

/// The type of an SSA value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrType {
    /// A single scalar.
    Scalar(ScalarType),
    /// A dense tensor.
    Tensor {
        /// Element type.
        elem: ScalarType,
        /// Shape, outermost first.
        shape: Vec<Dim>,
    },
    /// A dataframe: named, typed columns with a dynamic row count.
    Frame(Vec<(String, ScalarType)>),
}

impl IrType {
    /// A 2-D dynamic tensor (the common matrix case).
    pub fn matrix(elem: ScalarType) -> IrType {
        IrType::Tensor {
            elem,
            shape: vec![Dim::Dynamic, Dim::Dynamic],
        }
    }

    /// A tensor with known shape.
    pub fn tensor(elem: ScalarType, shape: &[u64]) -> IrType {
        IrType::Tensor {
            elem,
            shape: shape.iter().map(|d| Dim::Known(*d)).collect(),
        }
    }

    /// Static element count of a tensor, if fully known.
    pub fn element_count(&self) -> Option<u64> {
        match self {
            IrType::Tensor { shape, .. } => {
                let mut n = 1u64;
                for d in shape {
                    match d {
                        Dim::Known(k) => n = n.checked_mul(*k)?,
                        Dim::Dynamic => return None,
                    }
                }
                Some(n)
            }
            IrType::Scalar(_) => Some(1),
            IrType::Frame(_) => None,
        }
    }

    /// The frame's columns, if this is a frame type.
    pub fn frame_columns(&self) -> Option<&[(String, ScalarType)]> {
        match self {
            IrType::Frame(cols) => Some(cols),
            _ => None,
        }
    }
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrType::Scalar(s) => write!(f, "{s}"),
            IrType::Tensor { elem, shape } => {
                write!(f, "tensor<")?;
                for d in shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{elem}>")
            }
            IrType::Frame(cols) => {
                write!(f, "frame<")?;
                for (i, (n, t)) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// Builds a frame type from `(name, type)` pairs.
pub fn frame_ty(cols: &[(&str, ScalarType)]) -> IrType {
    IrType::Frame(cols.iter().map(|(n, t)| (n.to_string(), *t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count() {
        assert_eq!(
            IrType::tensor(ScalarType::F64, &[4, 8]).element_count(),
            Some(32)
        );
        assert_eq!(IrType::matrix(ScalarType::F64).element_count(), None);
        assert_eq!(IrType::Scalar(ScalarType::I64).element_count(), Some(1));
        assert_eq!(frame_ty(&[("a", ScalarType::I64)]).element_count(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            IrType::tensor(ScalarType::F64, &[2, 3]).to_string(),
            "tensor<2x3xf64>"
        );
        assert_eq!(
            IrType::matrix(ScalarType::I64).to_string(),
            "tensor<?x?xi64>"
        );
        assert_eq!(
            frame_ty(&[("id", ScalarType::I64), ("n", ScalarType::Str)]).to_string(),
            "frame<id: i64, n: str>"
        );
    }

    #[test]
    fn frame_columns_accessor() {
        let t = frame_ty(&[("x", ScalarType::Bool)]);
        assert_eq!(t.frame_columns().unwrap().len(), 1);
        assert!(IrType::Scalar(ScalarType::I64).frame_columns().is_none());
    }
}

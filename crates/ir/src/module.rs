//! The IR module: an ordered list of SSA ops with a verifier and a
//! textual form.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::error::IrError;
use crate::op::{Attr, Dialect, Op, OpId, ValueId};
use crate::types::IrType;

/// A compilation unit: SSA ops in definition order (defs strictly before
/// uses), the type of every value, and the module's outputs.
#[derive(Debug, Clone, Default)]
pub struct Module {
    ops: Vec<Op>,
    value_types: HashMap<ValueId, IrType>,
    outputs: Vec<ValueId>,
    next_value: u32,
    next_op: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Appends an op producing one result of type `result_ty`.
    pub fn append(
        &mut self,
        name: &str,
        dialect: Dialect,
        operands: Vec<ValueId>,
        attrs: BTreeMap<String, Attr>,
        result_ty: IrType,
    ) -> ValueId {
        let result = ValueId(self.next_value);
        self.next_value += 1;
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.value_types.insert(result, result_ty);
        self.ops.push(Op {
            id,
            name: name.to_string(),
            dialect,
            operands,
            results: vec![result],
            attrs,
        });
        result
    }

    /// The ops, in definition order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the module has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The type of a value.
    pub fn type_of(&self, v: ValueId) -> Result<&IrType, IrError> {
        self.value_types
            .get(&v)
            .ok_or(IrError::TypeError(format!("no type for {v}")))
    }

    /// Marks a value as a module output (kept alive by DCE).
    pub fn mark_output(&mut self, v: ValueId) {
        if !self.outputs.contains(&v) {
            self.outputs.push(v);
        }
    }

    /// The module's outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// The op defining `v`, if any.
    pub fn def_of(&self, v: ValueId) -> Option<&Op> {
        self.ops.iter().find(|o| o.results.contains(&v))
    }

    /// Indices of ops that use `v` as an operand.
    pub fn users_of(&self, v: ValueId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.operands.contains(&v))
            .map(|o| o.id)
            .collect()
    }

    /// Number of uses of `v`, counting the module output list.
    pub fn use_count(&self, v: ValueId) -> usize {
        let op_uses: usize = self
            .ops
            .iter()
            .map(|o| o.operands.iter().filter(|x| **x == v).count())
            .sum();
        op_uses + self.outputs.iter().filter(|x| **x == v).count()
    }

    /// Rewrites every use of `from` (including outputs) to `to`.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for op in &mut self.ops {
            for operand in &mut op.operands {
                if *operand == from {
                    *operand = to;
                }
            }
        }
        for out in &mut self.outputs {
            if *out == from {
                *out = to;
            }
        }
    }

    /// Removes the ops whose IDs are in `remove`, leaving values intact.
    /// Callers must have rewritten uses first; the verifier will catch
    /// dangling references otherwise.
    pub fn retain_ops(&mut self, remove: &[OpId]) {
        self.ops.retain(|o| !remove.contains(&o.id));
    }

    /// Mutable access to ops for passes.
    pub fn ops_mut(&mut self) -> &mut Vec<Op> {
        &mut self.ops
    }

    /// Registers a type for an externally-created value (used by passes
    /// that synthesize ops manually).
    pub fn set_type(&mut self, v: ValueId, ty: IrType) {
        self.value_types.insert(v, ty);
    }

    /// Mints a fresh value ID with the given type (for passes).
    pub fn fresh_value(&mut self, ty: IrType) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        self.value_types.insert(v, ty);
        v
    }

    /// Mints a fresh op ID (for passes).
    pub fn fresh_op_id(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Checks SSA well-formedness: every operand is defined by an earlier
    /// op, every value has a type, outputs exist, result IDs are unique.
    pub fn verify(&self) -> Result<(), IrError> {
        let mut defined: Vec<ValueId> = Vec::new();
        for op in &self.ops {
            for operand in &op.operands {
                if !defined.contains(operand) {
                    return Err(IrError::UndefinedValue {
                        op: op.id,
                        value: *operand,
                    });
                }
            }
            for r in &op.results {
                if defined.contains(r) {
                    return Err(IrError::MalformedOp {
                        op: op.id,
                        reason: format!("result {r} defined twice"),
                    });
                }
                if !self.value_types.contains_key(r) {
                    return Err(IrError::TypeError(format!("no type for result {r}")));
                }
                defined.push(*r);
            }
        }
        for out in &self.outputs {
            if !defined.contains(out) {
                return Err(IrError::UndefinedValue {
                    op: OpId(u32::MAX),
                    value: *out,
                });
            }
        }
        Ok(())
    }

    /// Ops belonging to the given dialect.
    pub fn ops_in_dialect(&self, d: Dialect) -> Vec<&Op> {
        self.ops.iter().filter(|o| o.dialect == d).collect()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {{")?;
        for op in &self.ops {
            let ty = op
                .results
                .first()
                .and_then(|r| self.value_types.get(r))
                .map(|t| format!(" : {t}"))
                .unwrap_or_default();
            writeln!(f, "  {op}{ty}")?;
        }
        write!(f, "  output(")?;
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        writeln!(f, ")")?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{frame_ty, ScalarType};

    fn filter_chain() -> (Module, ValueId, ValueId) {
        let mut m = Module::new();
        let ty = frame_ty(&[("x", ScalarType::I64)]);
        let mut attrs = BTreeMap::new();
        attrs.insert("table".into(), Attr::Str("t".into()));
        let scan = m.append("rel.scan", Dialect::Relational, vec![], attrs, ty.clone());
        let mut attrs = BTreeMap::new();
        attrs.insert("pred".into(), Attr::Str("x > 1".into()));
        let filt = m.append("rel.filter", Dialect::Relational, vec![scan], attrs, ty);
        m.mark_output(filt);
        (m, scan, filt)
    }

    #[test]
    fn append_and_verify() {
        let (m, _, _) = filter_chain();
        m.verify().unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn undefined_operand_caught() {
        let mut m = Module::new();
        let ty = frame_ty(&[("x", ScalarType::I64)]);
        m.append(
            "rel.filter",
            Dialect::Relational,
            vec![ValueId(42)],
            BTreeMap::new(),
            ty,
        );
        assert!(matches!(m.verify(), Err(IrError::UndefinedValue { .. })));
    }

    #[test]
    fn use_counts_and_users() {
        let (m, scan, filt) = filter_chain();
        assert_eq!(m.use_count(scan), 1);
        assert_eq!(m.use_count(filt), 1); // The output list counts.
        assert_eq!(m.users_of(scan).len(), 1);
    }

    #[test]
    fn replace_all_uses_rewrites_outputs() {
        let (mut m, scan, filt) = filter_chain();
        m.replace_all_uses(filt, scan);
        assert_eq!(m.outputs(), &[scan]);
        assert_eq!(m.use_count(filt), 0);
    }

    #[test]
    fn retain_ops_removes() {
        let (mut m, scan, filt) = filter_chain();
        m.replace_all_uses(filt, scan);
        let filter_id = m.def_of(filt).unwrap().id;
        m.retain_ops(&[filter_id]);
        assert_eq!(m.len(), 1);
        m.verify().unwrap();
    }

    #[test]
    fn dangling_output_caught() {
        let mut m = Module::new();
        m.mark_output(ValueId(7));
        assert!(m.verify().is_err());
    }

    #[test]
    fn display_textual_ir() {
        let (m, _, _) = filter_chain();
        let s = m.to_string();
        assert!(s.contains("%0 = rel.scan()"), "{s}");
        assert!(s.contains("rel.filter(%0)"), "{s}");
        assert!(s.contains("output(%1)"), "{s}");
        assert!(s.contains(": frame<x: i64>"), "{s}");
    }

    #[test]
    fn def_of_finds_definition() {
        let (m, scan, _) = filter_chain();
        assert_eq!(m.def_of(scan).unwrap().name, "rel.scan");
        assert!(m.def_of(ValueId(99)).is_none());
    }
}

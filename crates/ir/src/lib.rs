//! # skadi-ir — a multi-level IR for hardware-agnostic ops
//!
//! The paper's access layer builds FlowGraph vertices from "IR-based
//! primitives, in addition to predefined operators" (§1), using MLIR in
//! the prototype. The key requirements it states (§2.2): the IR must be
//! generic enough to express the computing patterns data systems use, and
//! it must lower onto multiple hardware backends (CPU, FPGA, GPU) so "a
//! single piece of code [can be lowered] to multiple hardware backends,
//! based on a set of predefined policies".
//!
//! This crate is a compact MLIR-alike with exactly those properties:
//!
//! - [`types`]: frames (dataframes), tensors, scalars.
//! - [`op`]/[`module`]: SSA ops in a [`Module`], grouped into dialects
//!   (relational, tensor, scalar, kernel), with a verifier and a textual
//!   form.
//! - [`dialect`]: typed constructors for each dialect's ops.
//! - [`pass`]/[`passes`]: a pass manager with canonicalization, constant
//!   folding, common-subexpression elimination, dead-code elimination,
//!   and — the one the paper leans on — cross-domain operator *fusion*.
//! - [`backend`]: CPU/GPU/FPGA backend descriptors with per-op cost
//!   models and the selection policy; [`lower`] rewrites dialect ops into
//!   backend-annotated kernel ops (one op may be lowered to several
//!   backends for a direct comparison, as vertices D1/D2 in the paper's
//!   Figure 2).
//!
//! # Examples
//!
//! ```
//! use skadi_ir::prelude::*;
//!
//! let mut m = Module::new();
//! let scan = rel::scan(&mut m, "events", frame_ty(&[("v", ScalarType::I64)]));
//! let filt = rel::filter(&mut m, scan, "v > 10");
//! let proj = rel::project(&mut m, filt, &["v"]);
//! m.mark_output(proj);
//! m.verify().unwrap();
//!
//! // Fuse the filter+project chain, then lower to a GPU kernel.
//! let mut pm = PassManager::standard();
//! pm.run(&mut m).unwrap();
//! let plan = skadi_ir::lower::lower_to_kernels(&m, &BackendPolicy::prefer(Backend::Gpu)).unwrap();
//! assert!(!plan.kernels.is_empty());
//! ```

pub mod backend;
pub mod dialect;
pub mod error;
pub mod lower;
pub mod module;
pub mod op;
pub mod parser;
pub mod pass;
pub mod passes;
pub mod types;

pub use backend::{Backend, BackendPolicy, CostEstimate};
pub use error::IrError;
pub use module::Module;
pub use op::{Attr, Dialect, Op, OpId, ValueId};
pub use parser::parse_module;
pub use pass::{Pass, PassManager};
pub use types::{frame_ty, IrType, ScalarType};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::backend::{Backend, BackendPolicy};
    pub use crate::dialect::{rel, scalar, tensor};
    pub use crate::error::IrError;
    pub use crate::module::Module;
    pub use crate::op::{Attr, Dialect, OpId, ValueId};
    pub use crate::pass::PassManager;
    pub use crate::types::{frame_ty, IrType, ScalarType};
}

//! Hardware backends and per-op cost models.
//!
//! "A key benefit of using hardware-agnostic IR is that we can lower a
//! single piece of code to multiple hardware backends, based on a set of
//! predefined policies" (§2.2). This module supplies the backend
//! descriptors, a supports-matrix (not every op runs everywhere — RMT/
//! FPGA-style backends only take streaming ops), a simple analytical cost
//! model, and the selection policy.

use std::fmt;

use crate::op::{Attr, Op};

/// A hardware backend an op can be lowered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// General-purpose CPU: runs everything, slowest per element.
    Cpu,
    /// GPU: high-throughput batch compute, large launch overhead.
    Gpu,
    /// FPGA: streaming pipeline, modest throughput, small launch
    /// overhead, limited op repertoire.
    Fpga,
}

impl Backend {
    /// All backends.
    pub const ALL: [Backend; 3] = [Backend::Cpu, Backend::Gpu, Backend::Fpga];

    /// Stable lowercase name (matches the `backend` kernel attribute).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Cpu => "cpu",
            Backend::Gpu => "gpu",
            Backend::Fpga => "fpga",
        }
    }

    /// Parses a backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "cpu" => Some(Backend::Cpu),
            "gpu" => Some(Backend::Gpu),
            "fpga" => Some(Backend::Fpga),
            _ => None,
        }
    }

    /// Per-element throughput in elements/microsecond for bulk per-row or
    /// per-element work.
    fn throughput(self) -> f64 {
        match self {
            Backend::Cpu => 100.0,
            Backend::Gpu => 4_000.0,
            Backend::Fpga => 1_000.0,
        }
    }

    /// Fixed kernel-launch overhead in microseconds.
    fn launch_us(self) -> f64 {
        match self {
            Backend::Cpu => 1.0,
            Backend::Gpu => 12.0,
            Backend::Fpga => 4.0,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An estimated kernel cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Data-dependent compute time, microseconds.
    pub compute_us: f64,
    /// Fixed launch overhead, microseconds.
    pub launch_us: f64,
}

impl CostEstimate {
    /// Total time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.launch_us
    }
}

/// Relative work factor of one op per element (matmul is super-linear and
/// modeled with an effective factor).
fn work_factor(name: &str) -> Option<f64> {
    Some(match name {
        "rel.scan" | "tensor.source" => 0.2,
        "rel.filter" => 1.0,
        "rel.project" => 0.5,
        "rel.join" => 4.0,
        "rel.aggregate" => 2.0,
        "rel.sort" => 6.0,
        "rel.limit" => 0.1,
        "tensor.map" => 1.0,
        "tensor.add" => 1.0,
        "tensor.reduce" => 1.5,
        "tensor.matmul" => 64.0,
        "tensor.from_frame" => 0.8,
        "tensor.sgd_step" => 2.0,
        "scalar.const" | "scalar.add" | "scalar.mul" => 0.0,
        _ => return None,
    })
}

/// Which backends can execute a given op name. CPU runs everything; GPU
/// runs relational batch ops (cudf-style) and all tensor ops; FPGA runs
/// streaming-friendly ops only.
pub fn supports(name: &str, backend: Backend) -> bool {
    match backend {
        Backend::Cpu => true,
        Backend::Gpu => matches!(
            name,
            "rel.scan"
                | "rel.filter"
                | "rel.project"
                | "rel.join"
                | "rel.aggregate"
                | "rel.sort"
                | "tensor.source"
                | "tensor.map"
                | "tensor.add"
                | "tensor.reduce"
                | "tensor.matmul"
                | "tensor.from_frame"
                | "tensor.sgd_step"
        ),
        Backend::Fpga => matches!(
            name,
            "rel.scan"
                | "rel.filter"
                | "rel.project"
                | "rel.aggregate"
                | "tensor.map"
                | "tensor.add"
                | "tensor.from_frame"
        ),
    }
}

/// True if the backend supports a fused body (it must support every
/// constituent op).
pub fn supports_fused(body: &[String], backend: Backend) -> bool {
    body.iter().all(|n| supports(n, backend))
}

/// Estimates the cost of executing `op` over `elements` rows/elements on
/// `backend`. Returns `None` when the backend cannot run the op.
pub fn estimate(op: &Op, elements: u64, backend: Backend) -> Option<CostEstimate> {
    let body = if op.name == "kernel.fused" {
        Some(op.attr("body").and_then(Attr::as_str_list)?)
    } else {
        None
    };
    estimate_named(&op.name, body, elements, backend)
}

/// Name-based variant of [`estimate`], for callers (like the flowgraph
/// layer) that track op names rather than IR ops. `body` carries the
/// constituent list for `kernel.fused`.
pub fn estimate_named(
    name: &str,
    body: Option<&[String]>,
    elements: u64,
    backend: Backend,
) -> Option<CostEstimate> {
    let factor = if name == "kernel.fused" {
        let body = body?;
        if !supports_fused(body, backend) {
            return None;
        }
        // A fused kernel streams each element through the whole body: the
        // work adds up, but launches collapse to one and intermediates
        // never materialize (modeled as a 20% discount on summed work).
        let sum: f64 = body.iter().filter_map(|n| work_factor(n)).sum();
        sum * 0.8
    } else {
        if !supports(name, backend) {
            return None;
        }
        work_factor(name)?
    };
    Some(CostEstimate {
        compute_us: factor * elements as f64 / backend.throughput(),
        launch_us: backend.launch_us(),
    })
}

/// How a policy picks among candidate backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selection {
    /// Pick the preferred backend when it supports the op, else cheapest.
    Prefer(Backend),
    /// Always pick the cheapest by estimated total time.
    CostBased,
}

/// The predefined backend-selection policy (§2.1 step 1 of lowering:
/// "selects hardware backends for MLIR-based ops using predefined
/// rules").
#[derive(Debug, Clone)]
pub struct BackendPolicy {
    allowed: Vec<Backend>,
    selection: Selection,
    /// Element count assumed when the caller has no cardinality estimate.
    pub default_elements: u64,
}

impl BackendPolicy {
    /// Allows every backend, preferring `b` when possible.
    pub fn prefer(b: Backend) -> Self {
        BackendPolicy {
            allowed: Backend::ALL.to_vec(),
            selection: Selection::Prefer(b),
            default_elements: 1 << 20,
        }
    }

    /// Allows every backend, picking the cheapest per op.
    pub fn cost_based() -> Self {
        BackendPolicy {
            allowed: Backend::ALL.to_vec(),
            selection: Selection::CostBased,
            default_elements: 1 << 20,
        }
    }

    /// CPU only (the serverful / classic-serverless baseline).
    pub fn cpu_only() -> Self {
        BackendPolicy {
            allowed: vec![Backend::Cpu],
            selection: Selection::Prefer(Backend::Cpu),
            default_elements: 1 << 20,
        }
    }

    /// Restricts the allowed set.
    pub fn restrict(mut self, allowed: &[Backend]) -> Self {
        self.allowed = allowed.to_vec();
        self
    }

    /// The allowed backends.
    pub fn allowed(&self) -> &[Backend] {
        &self.allowed
    }

    /// Picks a backend for `op` over `elements` elements, with its cost.
    pub fn select(&self, op: &Op, elements: u64) -> Option<(Backend, CostEstimate)> {
        let body = if op.name == "kernel.fused" {
            op.attr("body").and_then(Attr::as_str_list)
        } else {
            None
        };
        self.select_named(&op.name, body, elements)
    }

    /// Name-based variant of [`BackendPolicy::select`].
    pub fn select_named(
        &self,
        name: &str,
        body: Option<&[String]>,
        elements: u64,
    ) -> Option<(Backend, CostEstimate)> {
        let candidates: Vec<(Backend, CostEstimate)> = self
            .allowed
            .iter()
            .filter_map(|b| estimate_named(name, body, elements, *b).map(|c| (*b, c)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.selection {
            Selection::Prefer(p) => candidates
                .iter()
                .find(|(b, _)| *b == p)
                .copied()
                .or_else(|| cheapest(&candidates)),
            Selection::CostBased => cheapest(&candidates),
        }
    }
}

fn cheapest(c: &[(Backend, CostEstimate)]) -> Option<(Backend, CostEstimate)> {
    c.iter()
        .min_by(|(_, a), (_, b)| {
            a.total_us()
                .partial_cmp(&b.total_us())
                .expect("finite costs")
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{rel, tensor};
    use crate::module::Module;
    use crate::types::{frame_ty, IrType, ScalarType};

    fn filter_op() -> Op {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame_ty(&[("a", ScalarType::I64)]));
        let f = rel::filter(&mut m, s, "a > 0");
        m.def_of(f).unwrap().clone()
    }

    fn matmul_op() -> Op {
        let mut m = Module::new();
        let a = tensor::source(&mut m, "a", IrType::matrix(ScalarType::F64));
        let b = tensor::source(&mut m, "b", IrType::matrix(ScalarType::F64));
        let c = tensor::matmul(&mut m, a, b).unwrap();
        m.def_of(c).unwrap().clone()
    }

    #[test]
    fn cpu_supports_everything() {
        for name in ["rel.join", "tensor.matmul", "rel.sort", "scalar.add"] {
            assert!(supports(name, Backend::Cpu), "{name}");
        }
    }

    #[test]
    fn fpga_rejects_matmul_and_join() {
        assert!(!supports("tensor.matmul", Backend::Fpga));
        assert!(!supports("rel.join", Backend::Fpga));
        assert!(supports("rel.filter", Backend::Fpga));
    }

    #[test]
    fn gpu_wins_large_matmul_cpu_wins_tiny() {
        let op = matmul_op();
        let policy = BackendPolicy::cost_based();
        let (big, _) = policy.select(&op, 10_000_000).unwrap();
        assert_eq!(big, Backend::Gpu);
        let (tiny, _) = policy.select(&op, 4).unwrap();
        assert_eq!(tiny, Backend::Cpu, "launch overhead should dominate");
    }

    #[test]
    fn prefer_falls_back_when_unsupported() {
        let op = matmul_op();
        let policy = BackendPolicy::prefer(Backend::Fpga);
        let (b, _) = policy.select(&op, 1_000_000).unwrap();
        assert_ne!(b, Backend::Fpga);
    }

    #[test]
    fn restrict_narrows_choices() {
        let op = filter_op();
        let policy = BackendPolicy::cost_based().restrict(&[Backend::Fpga]);
        let (b, _) = policy.select(&op, 1_000_000).unwrap();
        assert_eq!(b, Backend::Fpga);
    }

    #[test]
    fn estimate_scales_with_elements() {
        let op = filter_op();
        let small = estimate(&op, 1_000, Backend::Cpu).unwrap();
        let large = estimate(&op, 1_000_000, Backend::Cpu).unwrap();
        assert!(large.compute_us > small.compute_us * 500.0);
        assert_eq!(small.launch_us, large.launch_us);
    }

    #[test]
    fn fused_body_gates_backend() {
        use std::collections::BTreeMap;
        let op = Op {
            id: crate::op::OpId(0),
            name: "kernel.fused".into(),
            dialect: crate::op::Dialect::Kernel,
            operands: vec![],
            results: vec![crate::op::ValueId(0)],
            attrs: BTreeMap::from([(
                "body".to_string(),
                Attr::StrList(vec!["rel.filter".into(), "tensor.matmul".into()]),
            )]),
        };
        // FPGA cannot take the matmul inside the fusion.
        assert!(estimate(&op, 1000, Backend::Fpga).is_none());
        assert!(estimate(&op, 1000, Backend::Gpu).is_some());
    }

    #[test]
    fn backend_name_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("tpu"), None);
    }
}

//! Pass infrastructure.

use crate::error::IrError;
use crate::module::Module;

/// A module-level rewrite.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;

    /// Runs the pass; returns `true` if the module changed.
    fn run(&self, m: &mut Module) -> Result<bool, IrError>;
}

/// What a pass-manager run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Full fixpoint iterations executed.
    pub iterations: usize,
    /// `(pass name, times it reported a change)`.
    pub changes: Vec<(String, usize)>,
}

impl PassReport {
    /// Total changes across all passes.
    pub fn total_changes(&self) -> usize {
        self.changes.iter().map(|(_, n)| n).sum()
    }
}

/// Runs a pipeline of passes to fixpoint.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl PassManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_iterations: 10,
        }
    }

    /// The standard optimization pipeline: canonicalize, constant-fold,
    /// CSE, fuse, DCE.
    pub fn standard() -> Self {
        let mut pm = PassManager::new();
        pm.add(crate::passes::Canonicalize);
        pm.add(crate::passes::ConstFold);
        pm.add(crate::passes::Cse);
        pm.add(crate::passes::Fusion);
        pm.add(crate::passes::Dce);
        pm
    }

    /// The same pipeline without fusion (the E10 ablation).
    pub fn no_fusion() -> Self {
        let mut pm = PassManager::new();
        pm.add(crate::passes::Canonicalize);
        pm.add(crate::passes::ConstFold);
        pm.add(crate::passes::Cse);
        pm.add(crate::passes::Dce);
        pm
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Caps fixpoint iterations.
    pub fn max_iterations(&mut self, n: usize) -> &mut Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Runs every pass repeatedly until none changes the module (or the
    /// iteration cap is hit). Verifies the module after every pass so a
    /// broken rewrite is caught at its source.
    pub fn run(&self, m: &mut Module) -> Result<PassReport, IrError> {
        let mut changes: Vec<(String, usize)> = self
            .passes
            .iter()
            .map(|p| (p.name().to_string(), 0))
            .collect();
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut any = false;
            for (i, pass) in self.passes.iter().enumerate() {
                if pass.run(m)? {
                    any = true;
                    changes[i].1 += 1;
                    m.verify().map_err(|e| {
                        IrError::PassError(format!("{} broke the module: {e}", pass.name()))
                    })?;
                }
            }
            if !any {
                break;
            }
        }
        Ok(PassReport {
            iterations,
            changes,
        })
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::rel;
    use crate::types::{frame_ty, ScalarType};

    struct NoOp;
    impl Pass for NoOp {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn run(&self, _m: &mut Module) -> Result<bool, IrError> {
            Ok(false)
        }
    }

    #[test]
    fn fixpoint_terminates_immediately_when_nothing_changes() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame_ty(&[("x", ScalarType::I64)]));
        m.mark_output(s);
        let mut pm = PassManager::new();
        pm.add(NoOp);
        let report = pm.run(&mut m).unwrap();
        assert_eq!(report.iterations, 1);
        assert_eq!(report.total_changes(), 0);
    }

    #[test]
    fn standard_pipeline_runs_clean_on_simple_module() {
        let mut m = Module::new();
        let s = rel::scan(&mut m, "t", frame_ty(&[("x", ScalarType::I64)]));
        m.mark_output(s);
        PassManager::standard().run(&mut m).unwrap();
        m.verify().unwrap();
        assert_eq!(m.len(), 1);
    }
}

//! Textual IR parser: the inverse of [`Module`]'s `Display`.
//!
//! Round-tripping the textual form (`print -> parse -> print` is a
//! fixpoint) is how MLIR keeps its dialects honest; this parser does the
//! same for our IR. The accepted grammar is exactly what `Display`
//! emits:
//!
//! ```text
//! module {
//!   %0 = rel.scan() {table = "t"} : frame<x: i64>
//!   %1 = rel.filter(%0) {pred = "x > 0"} : frame<x: i64>
//!   output(%1)
//! }
//! ```

use std::collections::BTreeMap;

use crate::error::IrError;
use crate::module::Module;
use crate::op::{Attr, Dialect, ValueId};
use crate::types::{Dim, IrType, ScalarType};

fn err(msg: impl Into<String>) -> IrError {
    IrError::PassError(format!("parse: {}", msg.into()))
}

/// A minimal cursor over one line.
struct Line<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Line<'a> {
    fn new(s: &'a str) -> Self {
        Line { s, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), IrError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(err(format!("expected {token:?} at {:?}", self.rest())))
        }
    }

    /// Consumes an identifier-ish word (letters, digits, `_`, `.`).
    fn word(&mut self) -> Result<&'a str, IrError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < self.s.len() {
            let c = bytes[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(err(format!("expected word at {:?}", self.rest())));
        }
        Ok(&self.s[start..self.pos])
    }

    fn value_id(&mut self) -> Result<ValueId, IrError> {
        self.expect("%")?;
        let w = self.word()?;
        w.parse::<u32>()
            .map(ValueId)
            .map_err(|_| err(format!("bad value id %{w}")))
    }

    /// Parses a double-quoted string with `{:?}`-style escapes.
    fn quoted(&mut self) -> Result<String, IrError> {
        self.expect("\"")?;
        let mut out = String::new();
        let bytes: Vec<char> = self.rest().chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                '"' => {
                    self.pos += bytes[..=i].iter().map(|c| c.len_utf8()).sum::<usize>();
                    return Ok(out);
                }
                '\\' if i + 1 < bytes.len() => {
                    let e = bytes[i + 1];
                    out.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '"' => '"',
                        other => other,
                    });
                    i += 2;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Err(err("unterminated string"))
    }
}

fn scalar_type(w: &str) -> Result<ScalarType, IrError> {
    match w {
        "i64" => Ok(ScalarType::I64),
        "f64" => Ok(ScalarType::F64),
        "bool" => Ok(ScalarType::Bool),
        "str" => Ok(ScalarType::Str),
        other => Err(err(format!("unknown scalar type {other:?}"))),
    }
}

fn parse_type(line: &mut Line<'_>) -> Result<IrType, IrError> {
    line.skip_ws();
    if line.eat("tensor<") {
        // Everything up to '>' is 'x'-separated dims with the element
        // type as the final segment, e.g. `4x8xf64` or `?x?xi64`.
        let rest = line.rest();
        let end = rest
            .find('>')
            .ok_or_else(|| err("unterminated tensor type"))?;
        let content = &rest[..end];
        line.pos += end + 1;
        let segments: Vec<&str> = content.split('x').collect();
        let (elem_seg, dim_segs) = segments
            .split_last()
            .ok_or_else(|| err("empty tensor type"))?;
        let elem = scalar_type(elem_seg)?;
        let mut shape = Vec::with_capacity(dim_segs.len());
        for d in dim_segs {
            if *d == "?" {
                shape.push(Dim::Dynamic);
            } else {
                shape.push(Dim::Known(
                    d.parse::<u64>()
                        .map_err(|_| err(format!("bad tensor dim {d:?}")))?,
                ));
            }
        }
        return Ok(IrType::Tensor { elem, shape });
    }
    if line.eat("frame<") {
        let mut cols = Vec::new();
        line.skip_ws();
        if line.eat(">") {
            return Ok(IrType::Frame(cols));
        }
        loop {
            let name = line.word()?.to_string();
            line.expect(":")?;
            let ty = scalar_type(line.word()?)?;
            cols.push((name, ty));
            if line.eat(",") {
                continue;
            }
            line.expect(">")?;
            return Ok(IrType::Frame(cols));
        }
    }
    let w = line.word()?;
    Ok(IrType::Scalar(scalar_type(w)?))
}

/// Consumes a numeric token (sign, digits, decimal point, exponent).
fn number_text<'a>(line: &mut Line<'a>) -> Result<&'a str, IrError> {
    line.skip_ws();
    let start = line.pos;
    let bytes = line.s.as_bytes();
    while line.pos < line.s.len() {
        let c = bytes[line.pos] as char;
        if c.is_ascii_digit() || "+-.eE".contains(c) {
            line.pos += 1;
        } else {
            break;
        }
    }
    let text = &line.s[start..line.pos];
    if text.is_empty() {
        return Err(err(format!("expected number at {:?}", line.rest())));
    }
    Ok(text)
}

fn parse_attr_value(line: &mut Line<'_>) -> Result<Attr, IrError> {
    line.skip_ws();
    if line.rest().starts_with('"') {
        return Ok(Attr::Str(line.quoted()?));
    }
    if line.eat("[") {
        line.skip_ws();
        if line.eat("]") {
            return Ok(Attr::IntList(Vec::new()));
        }
        if line.rest().starts_with('"') {
            let mut items = vec![line.quoted()?];
            while line.eat(",") {
                items.push(line.quoted()?);
            }
            line.expect("]")?;
            return Ok(Attr::StrList(items));
        }
        let mut items = Vec::new();
        loop {
            let text = number_text(line)?;
            items.push(
                text.parse::<i64>()
                    .map_err(|_| err(format!("bad int list item {text:?}")))?,
            );
            if line.eat(",") {
                continue;
            }
            line.expect("]")?;
            return Ok(Attr::IntList(items));
        }
    }
    if line.eat("true") {
        return Ok(Attr::Bool(true));
    }
    if line.eat("false") {
        return Ok(Attr::Bool(false));
    }
    // Number: int unless it contains '.' or an exponent.
    let text = number_text(line)?;
    if text.contains('.') || text.contains('e') || text.contains('E') {
        text.parse::<f64>()
            .map(Attr::Float)
            .map_err(|_| err(format!("bad float {text:?}")))
    } else {
        text.parse::<i64>()
            .map(Attr::Int)
            .map_err(|_| err(format!("bad int {text:?}")))
    }
}

fn dialect_of(name: &str) -> Dialect {
    match name.split('.').next() {
        Some("rel") => Dialect::Relational,
        Some("tensor") => Dialect::Tensor,
        Some("scalar") => Dialect::Scalar,
        Some("kernel") => Dialect::Kernel,
        _ => Dialect::Builtin,
    }
}

/// Parses the textual form produced by [`Module`]'s `Display`.
pub fn parse_module(text: &str) -> Result<Module, IrError> {
    let mut m = Module::new();
    // Map source value numbering to the fresh module's numbering (append
    // assigns sequentially, so they coincide when defs are in order; the
    // map keeps us correct even if they don't).
    let mut values: BTreeMap<ValueId, ValueId> = BTreeMap::new();

    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    match lines.next() {
        Some(l) if l.starts_with("module") => {}
        other => return Err(err(format!("expected module header, got {other:?}"))),
    }

    for raw in lines {
        if raw == "}" {
            continue;
        }
        let mut line = Line::new(raw);
        if line.eat("output(") {
            if !line.eat(")") {
                loop {
                    let v = line.value_id()?;
                    let mapped = *values
                        .get(&v)
                        .ok_or_else(|| err(format!("output of undefined {v}")))?;
                    m.mark_output(mapped);
                    if line.eat(",") {
                        continue;
                    }
                    line.expect(")")?;
                    break;
                }
            }
            continue;
        }
        // `%N = name(operands) {attrs} : type`
        let result = line.value_id()?;
        line.expect("=")?;
        let name = line.word()?.to_string();
        line.expect("(")?;
        let mut operands = Vec::new();
        if !line.eat(")") {
            loop {
                let v = line.value_id()?;
                operands.push(
                    *values
                        .get(&v)
                        .ok_or_else(|| err(format!("use of undefined {v}")))?,
                );
                if line.eat(",") {
                    continue;
                }
                line.expect(")")?;
                break;
            }
        }
        let mut attrs = BTreeMap::new();
        if line.eat("{") {
            loop {
                let key = line.word()?.to_string();
                line.expect("=")?;
                let value = parse_attr_value(&mut line)?;
                attrs.insert(key, value);
                if line.eat(",") {
                    continue;
                }
                line.expect("}")?;
                break;
            }
        }
        line.expect(":")?;
        let ty = parse_type(&mut line)?;
        let new = m.append(&name, dialect_of(&name), operands, attrs, ty);
        values.insert(result, new);
    }

    m.verify()?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{rel, scalar, tensor};
    use crate::types::frame_ty;

    fn sample() -> Module {
        let mut m = Module::new();
        let s = rel::scan(
            &mut m,
            "events",
            frame_ty(&[("k", ScalarType::I64), ("v", ScalarType::F64)]),
        );
        let f = rel::filter(&mut m, s, "v > 0.5");
        let t = tensor::from_frame(&mut m, f, &["v"]);
        let w = tensor::source(&mut m, "w", IrType::tensor(ScalarType::F64, &[4, 8]));
        let mm = tensor::matmul(&mut m, t, w).unwrap();
        let c = scalar::const_f64(&mut m, 0.25);
        let c2 = scalar::const_i64(&mut m, 7);
        let _ = scalar::add(&mut m, c2, c2);
        let _ = c;
        m.mark_output(mm);
        m
    }

    #[test]
    fn print_parse_print_is_a_fixpoint() {
        let m = sample();
        let text1 = m.to_string();
        let parsed = parse_module(&text1).unwrap();
        let text2 = parsed.to_string();
        assert_eq!(text1, text2);
    }

    #[test]
    fn parsed_module_verifies_and_matches_shape() {
        let m = sample();
        let parsed = parse_module(&m.to_string()).unwrap();
        assert_eq!(parsed.len(), m.len());
        assert_eq!(parsed.outputs().len(), m.outputs().len());
        for (a, b) in m.ops().iter().zip(parsed.ops()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.dialect, b.dialect);
            assert_eq!(a.operands, b.operands);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    fn attr_kinds_round_trip() {
        let mut m = Module::new();
        let mut attrs = BTreeMap::new();
        attrs.insert("i".to_string(), Attr::Int(-3));
        attrs.insert("f".to_string(), Attr::Float(2.5));
        attrs.insert("b".to_string(), Attr::Bool(true));
        attrs.insert("s".to_string(), Attr::Str("he\"llo".to_string()));
        attrs.insert(
            "sl".to_string(),
            Attr::StrList(vec!["a".into(), "b".into()]),
        );
        attrs.insert("il".to_string(), Attr::IntList(vec![1, -2, 3]));
        let v = m.append(
            "rel.scan",
            Dialect::Relational,
            vec![],
            attrs,
            frame_ty(&[("x", ScalarType::I64)]),
        );
        m.mark_output(v);
        let parsed = parse_module(&m.to_string()).unwrap();
        assert_eq!(parsed.ops()[0].attrs, m.ops()[0].attrs);
    }

    #[test]
    fn float_attrs_stay_floats() {
        let mut m = Module::new();
        let v = scalar::const_f64(&mut m, 5.0);
        m.mark_output(v);
        let parsed = parse_module(&m.to_string()).unwrap();
        assert_eq!(
            parsed.ops()[0].attr("value"),
            Some(&Attr::Float(5.0)),
            "5.0 must not collapse to Int(5)"
        );
    }

    #[test]
    fn types_round_trip() {
        for ty in [
            IrType::Scalar(ScalarType::Bool),
            IrType::tensor(ScalarType::F64, &[2, 3]),
            IrType::matrix(ScalarType::I64),
            frame_ty(&[("a", ScalarType::Str), ("b", ScalarType::F64)]),
            IrType::Frame(vec![]),
        ] {
            let mut m = Module::new();
            let v = m.append(
                "rel.scan",
                Dialect::Relational,
                vec![],
                BTreeMap::new(),
                ty.clone(),
            );
            m.mark_output(v);
            let parsed = parse_module(&m.to_string()).unwrap();
            assert_eq!(parsed.type_of(parsed.outputs()[0]).unwrap(), &ty);
        }
    }

    #[test]
    fn bad_input_rejected() {
        assert!(parse_module("not a module").is_err());
        assert!(parse_module("module {\n  %0 = rel.filter(%9) : frame<>\n}").is_err());
        assert!(parse_module("module {\n  output(%0)\n}").is_err());
        assert!(parse_module("module {\n  %0 = rel.scan( : frame<>\n}").is_err());
    }
}

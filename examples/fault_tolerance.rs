//! Fault tolerance (§2.1): lineage re-execution vs a reliable caching
//! layer with replication or erasure coding, under an injected node
//! failure.
//!
//! Run with: `cargo run --example fault_tolerance`

use skadi::dcsim::time::SimTime;
use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};
use skadi::store::ec::EcConfig;

/// A diamond-heavy DAG with real compute so a mid-job failure hurts.
fn job() -> Job {
    let mut tasks = Vec::new();
    // 4 independent chains of 6 stages, joined at the end.
    let (chains, stages) = (4u64, 6u64);
    for c in 0..chains {
        for s in 0..stages {
            let id = c * stages + s;
            let mut t = TaskSpec::new(id, 4_000.0, 8 << 20).named(&format!("c{c}s{s}"));
            if s > 0 {
                t = t.after(TaskId(id - 1), 8 << 20);
            }
            tasks.push(t);
        }
    }
    let mut join = TaskSpec::new(chains * stages, 8_000.0, 1 << 20).named("join");
    for c in 0..chains {
        join = join.after(TaskId(c * stages + stages - 1), 8 << 20);
    }
    tasks.push(join);
    Job::new("diamond", tasks).expect("valid job")
}

fn run(label: &str, ft: FtMode, topo: &Topology) -> JobStats {
    // Kill the scheduler-adjacent server mid-job; everything it computed
    // and cached dies with it.
    let victim = topo.servers()[1];
    let failures = FailurePlan::none().kill(victim, SimTime::from_millis(12));
    let mut cluster = Cluster::new(topo, RuntimeConfig::skadi_gen2().with_ft(ft));
    let stats = cluster
        .run_with_failures(&job(), &failures)
        .expect("job completes");
    println!(
        "{label:<22} makespan {:>12}  re-executions {:>3}  extra bytes {:>12}",
        stats.makespan.to_string(),
        stats.retries,
        stats.metrics.counter("replica_bytes") + stats.metrics.counter("ec_bytes"),
    );
    stats
}

fn main() {
    let topo = presets::small_disagg_cluster();
    println!("cluster: {}", topo.summary());
    println!("failure: one server killed at t=12ms\n");

    let baseline = {
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        c.run(&job()).expect("clean run")
    };
    println!(
        "{:<22} makespan {:>12}  (no failure)",
        "clean run",
        baseline.makespan.to_string()
    );

    let lineage = run("lineage", FtMode::Lineage, &topo);
    let repl = run("replication x2", FtMode::Replication(2), &topo);
    let ec = run(
        "erasure coding 4+2",
        FtMode::ErasureCoding(EcConfig::RS_4_2),
        &topo,
    );

    println!();
    println!(
        "lineage pays {} re-executions; replication pays {:.1}x storage; EC pays {:.1}x.",
        lineage.retries,
        2.0,
        EcConfig::RS_4_2.overhead()
    );
    println!(
        "recovery overhead vs clean: lineage +{:.1}%, replication +{:.1}%, EC +{:.1}%",
        100.0 * (lineage.makespan.as_secs_f64() / baseline.makespan.as_secs_f64() - 1.0),
        100.0 * (repl.makespan.as_secs_f64() / baseline.makespan.as_secs_f64() - 1.0),
        100.0 * (ec.makespan.as_secs_f64() / baseline.makespan.as_secs_f64() - 1.0),
    );
}

//! Integrated pipeline (the paper's Figure 1): ingestion -> SQL
//! analytics -> ML training, run under all three deployment models to
//! show why the distributed runtime wins.
//!
//! Run with: `cargo run --example sql_ml_pipeline`

use skadi::pipeline::fig1_pipeline;
use skadi::prelude::*;

fn run(deployment: &str, cfg: RuntimeConfig) -> Result<JobStats, SkadiError> {
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(cfg)
        .build();
    let report = fig1_pipeline(&session, 1)?.run()?;
    println!(
        "{deployment:<22} makespan {:>12}  durable trips {:>4}  network {:>12} B  cost {:>9.3}",
        report.stats.makespan.to_string(),
        report.stats.durable_trips,
        report.stats.net.network_bytes(),
        report.stats.cost_units,
    );
    Ok(report.stats)
}

fn main() -> Result<(), SkadiError> {
    println!("Figure 1: one integrated pipeline (ingest -> SQL -> ML), three deployments\n");

    let serverful = run("serverful (1a)", RuntimeConfig::serverful())?;
    let stateless = run(
        "stateless serverless (1b)",
        RuntimeConfig::stateless_serverless(),
    )?;
    let skadi = run("distributed runtime (1c)", RuntimeConfig::skadi_gen2())?;

    println!();
    println!(
        "stateless bounces every intermediate through durable storage: {} trips vs {} (skadi)",
        stateless.durable_trips, skadi.durable_trips
    );
    println!(
        "skadi speedup: {:.1}x over stateless, {:.1}x over serverful",
        stateless.makespan.as_secs_f64() / skadi.makespan.as_secs_f64(),
        serverful.makespan.as_secs_f64() / skadi.makespan.as_secs_f64(),
    );
    Ok(())
}

//! Short-lived ops on physically-disaggregated devices (the paper's
//! Figure 3): Gen-1 (DPU-centric, pull-based futures) vs Gen-2
//! (device-centric raylets, push-based futures).
//!
//! Run with: `cargo run --example short_ops_disagg`

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job};

/// A chain of `n` short GPU ops, each feeding the next a small tensor.
fn short_op_chain(n: u64, op_us: f64) -> Job {
    let mut tasks = vec![TaskSpec::new(0, op_us, 4 << 10)
        .on(Backend::Gpu)
        .named("op0")];
    for i in 1..n {
        tasks.push(
            TaskSpec::new(i, op_us, 4 << 10)
                .after(skadi::runtime::TaskId(i - 1), 4 << 10)
                .on(Backend::Gpu)
                .named(&format!("op{i}")),
        );
    }
    Job::new("short-ops", tasks).expect("valid chain")
}

fn main() {
    let topo = presets::device_rack();
    println!("cluster: {}\n", topo.summary());
    println!("chain of 32 GPU ops; sweeping op duration:\n");
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>16} {:>16}",
        "op (us)", "gen1 JCT", "gen2 JCT", "speedup", "gen1 stall/op", "gen2 stall/op"
    );

    for op_us in [5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0] {
        let job = short_op_chain(32, op_us);
        let mut g1 = Cluster::new(&topo, RuntimeConfig::skadi_gen1());
        let s1 = g1.run(&job).expect("gen1 run");
        let mut g2 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let s2 = g2.run(&job).expect("gen2 run");
        println!(
            "{:>10.0} {:>14} {:>14} {:>8.2}x {:>16} {:>16}",
            op_us,
            s1.makespan.to_string(),
            s2.makespan.to_string(),
            s1.makespan.as_secs_f64() / s2.makespan.as_secs_f64(),
            s1.mean_stall().to_string(),
            s2.mean_stall().to_string(),
        );
    }

    println!(
        "\nGen-2 removes the DPU detour and pushes data producer->consumer, so the\n\
         shorter the op, the bigger the win — exactly the paper's §2.3.2 argument."
    );
}

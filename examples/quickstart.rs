//! Quickstart: build a simulated disaggregated cluster, run a SQL query
//! through the full Skadi stack, and print the report.
//!
//! Run with: `cargo run --example quickstart`

use skadi::prelude::*;

fn main() -> Result<(), SkadiError> {
    // 1. A cluster: 2 racks of servers, GPU + FPGA devices fronted by
    //    DPUs, a disaggregated memory blade, durable cloud storage.
    let topo = presets::small_disagg_cluster();
    println!("cluster: {}", topo.summary());

    // 2. A session: the one runtime every declaration goes through.
    let session = Session::builder()
        .topology(topo)
        .catalog(Catalog::demo())
        .runtime(RuntimeConfig::skadi_gen2())
        .parallelism(4)
        .build();

    // 3. Declarative in: SQL. The access layer parses it onto FlowGraph,
    //    fuses what it can, shards it, picks backends; the stateful
    //    serverless runtime executes it on the simulated hardware.
    let report = session.sql(
        "SELECT kind, sum(value) FROM events \
         WHERE value > 0.5 AND kind = 'click' \
         GROUP BY kind ORDER BY kind LIMIT 10",
    )?;
    println!("\n{report}\n");

    // 4. The same session runs ML training — on GPUs, with weights
    //    flowing through the caching layer.
    let train = TrainingPipeline::new("features", 1 << 14, 8 << 20, 2 << 20).steps(4);
    let report = session.train(&train)?;
    println!("{report}\n");

    // 5. And an iterative graph computation.
    let pr = VertexProgram::pagerank("web-graph", 1_000_000, 20_000_000, 5);
    let report = session.vertex_program(&pr)?;
    println!("{report}");

    Ok(())
}

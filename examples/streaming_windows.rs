//! Micro-batch streaming on the distributed runtime: windowed
//! aggregations whose state flows batch-to-batch through the caching
//! layer (one of the execution models the paper's runtime must host).
//!
//! Run with: `cargo run --example streaming_windows`

use skadi::prelude::*;

fn main() -> Result<(), SkadiError> {
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(RuntimeConfig::skadi_gen2())
        .build();

    println!("micro-batch stream: per-batch transform + keyed window aggregation\n");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>10}",
        "batches", "makespan", "per-batch", "net MB", "stall"
    );
    for batches in [2u32, 4, 8, 16] {
        let job = StreamJob::new("clicks", 1 << 18, 32 << 20, "user_id")
            .batches(batches)
            .transform_selectivity(0.4);
        let report = session.stream(&job)?;
        println!(
            "{:>8} {:>12} {:>14} {:>12.1} {:>10}",
            batches,
            report.stats.makespan.to_string(),
            (report.stats.makespan / batches as u64).to_string(),
            report.stats.net.network_bytes() as f64 / 1e6,
            report.stats.stall_total.to_string(),
        );
    }

    println!(
        "\nWindow state chains batch to batch over keyed edges; because the\n\
         runtime resolves those futures through the caching layer, batch k+1's\n\
         transform overlaps batch k's window — per-batch cost stays flat as\n\
         the stream lengthens."
    );
    Ok(())
}

//! Distributed-vs-reference equivalence for the SQL data plane.
//!
//! Every query here runs twice: once through [`MemDb::query`] (the
//! single-process vectorized engine) and once through
//! [`Session::sql_distributed`] (planned, sharded, and executed task by
//! task through the simulated cluster with real record batches). The
//! collected distributed result must be **byte-identical** — same IPC
//! frame — at parallelism 1, 2, 4 and 8, under failure injection for
//! every fault-tolerance mode, and across runtime seeds.

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::ipc;
use skadi::arrow::schema::{Field, Schema};
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;
use skadi::runtime::config::FtMode;
use skadi::store::ec::EcConfig;
use skadi_dcsim::time::SimTime;

/// Same tables as `tests/exec_golden.rs`: duplicate join keys, null keys,
/// null values, mixed int/float join keys, and an empty relation.
fn golden_db() -> MemDb {
    let orders = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("order_id", DataType::Int64, false),
            Field::new("cust", DataType::Int64, true),
            Field::new("amount", DataType::Float64, true),
            Field::new("tag", DataType::Utf8, true),
        ]),
        vec![
            Array::from_i64(vec![1, 2, 3, 4, 5, 6]),
            Array::from_opt_i64(vec![Some(10), Some(20), None, Some(10), Some(30), Some(20)]),
            Array::from_opt_f64(vec![
                Some(5.0),
                Some(2.5),
                Some(9.0),
                None,
                Some(1.0),
                Some(4.0),
            ]),
            Array::from_opt_utf8(vec![Some("a"), Some("b"), Some("a"), None, Some("b"), None]),
        ],
    )
    .unwrap();
    let custs = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("cust", DataType::Int64, true),
            Field::new("name", DataType::Utf8, false),
        ]),
        vec![
            Array::from_opt_i64(vec![Some(10), Some(10), Some(20), Some(99), None]),
            Array::from_utf8(&["ten-a", "ten-b", "twenty", "none", "null-key"]),
        ],
    )
    .unwrap();
    let ratios = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("fkey", DataType::Float64, false),
            Field::new("ratio", DataType::Float64, false),
        ]),
        vec![
            Array::from_f64(vec![10.0, 20.5]),
            Array::from_f64(vec![0.5, 0.25]),
        ],
    )
    .unwrap();
    let empty = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, true),
        ]),
        vec![Array::from_i64(vec![]), Array::from_opt_f64(vec![])],
    )
    .unwrap();
    MemDb::new()
        .register("orders", orders)
        .register("custs", custs)
        .register("ratios", ratios)
        .register("empty", empty)
}

/// A bigger seeded table so multi-shard scans, shuffles, and group-bys
/// carry real volume (float sums are order-sensitive — exactly what the
/// canonical-order machinery must get right).
fn big_db() -> MemDb {
    let mut rng = skadi_dcsim::rng::DetRng::seed(7);
    let n = 500;
    let keys: Vec<i64> = (0..n).map(|_| rng.below(17) as i64).collect();
    let vals: Vec<f64> = (0..n).map(|_| rng.unit() * 100.0 - 50.0).collect();
    let names = ["red", "green", "blue", "cyan"];
    let tags: Vec<&str> = (0..n).map(|_| *rng.pick(&names)).collect();
    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(keys),
            Array::from_f64(vals),
            Array::from_utf8(&tags),
        ],
    )
    .unwrap();
    let dims = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("label", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64((0..17).collect()),
            Array::from_utf8(
                &(0..17)
                    .map(|i| format!("dim-{i}"))
                    .collect::<Vec<_>>()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            ),
        ],
    )
    .unwrap();
    MemDb::new()
        .register("events", events)
        .register("dims", dims)
}

/// The golden-suite queries plus coverage for every distributed operator
/// shape: scans, filters, joins (dup/null/mixed keys), grouped and
/// global aggregates, projection, sort, limit with and without order.
const QUERIES: &[&str] = &[
    "SELECT order_id, name FROM orders JOIN custs ON cust = cust ORDER BY order_id",
    "SELECT order_id, ratio FROM orders JOIN ratios ON cust = fkey ORDER BY order_id",
    "SELECT tag, count(*) AS n, sum(amount) AS s FROM orders GROUP BY tag",
    "SELECT sum(cust) AS s, min(cust) AS lo, max(cust) AS hi, avg(cust) AS m FROM orders",
    "SELECT count(*) AS n, sum(v) AS s FROM empty",
    "SELECT count(*) AS n, sum(amount) AS s FROM orders WHERE amount > 1000",
    "SELECT k, count(*) AS n FROM empty GROUP BY k",
    "SELECT order_id FROM orders WHERE cust >= 15.5 ORDER BY order_id",
    "SELECT order_id FROM orders WHERE amount < 5 AND cust = 20 ORDER BY order_id",
    "SELECT order_id, amount FROM orders ORDER BY amount LIMIT 3",
    "SELECT order_id, amount FROM orders LIMIT 4",
    "SELECT name, amount FROM orders JOIN custs ON cust = cust WHERE amount > 2 ORDER BY amount DESC LIMIT 3",
];

const BIG_QUERIES: &[&str] = &[
    "SELECT k, sum(v) AS s, count(*) AS n FROM events GROUP BY k",
    "SELECT tag, avg(v) AS m FROM events WHERE v > -10 GROUP BY tag ORDER BY m DESC",
    "SELECT label, sum(v) AS s FROM events JOIN dims ON k = k GROUP BY label ORDER BY s",
    "SELECT k, v FROM events WHERE tag = 'red' AND v > 0 ORDER BY v DESC LIMIT 10",
    "SELECT sum(v) AS total FROM events",
];

fn session_with(parallelism: u32) -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .parallelism(parallelism)
        .build()
}

fn assert_identical(db: &MemDb, sql: &str, run: &skadi::DistributedRun, ctx: &str) {
    let want = db.query(sql).unwrap();
    let want_bytes = ipc::encode(&want);
    let got_bytes = ipc::encode(&run.batch);
    assert_eq!(
        got_bytes.as_slice(),
        want_bytes.as_slice(),
        "{ctx}: distributed result diverged from MemDb for {sql:?}\nwant:\n{want}\ngot:\n{}",
        run.batch
    );
}

#[test]
fn distributed_matches_memdb_at_every_parallelism() {
    for (db, queries) in [(golden_db(), QUERIES), (big_db(), BIG_QUERIES)] {
        for &p in &[1u32, 2, 4, 8] {
            let session = session_with(p);
            for sql in queries {
                let run = session.sql_distributed(&db, sql).unwrap();
                assert_identical(&db, sql, &run, &format!("parallelism {p}"));
                assert!(run.report.stats.finished > 0);
                assert_eq!(run.report.stats.abandoned, 0);
            }
        }
    }
}

#[test]
fn distributed_survives_kill_and_recover_in_every_ft_mode() {
    let db = big_db();
    let sql = "SELECT label, sum(v) AS s, count(*) AS n FROM events JOIN dims ON k = k GROUP BY label ORDER BY s";
    let topo = presets::small_disagg_cluster();
    let victim = topo.servers()[0];
    let plan = FailurePlan::none().kill_and_recover(
        victim,
        SimTime::from_micros(3),
        SimTime::from_millis(4),
    );
    for ft in [
        FtMode::Lineage,
        FtMode::Replication(2),
        FtMode::ErasureCoding(EcConfig::RS_4_2),
    ] {
        let session = Session::builder()
            .topology(topo.clone())
            .parallelism(4)
            .runtime(RuntimeConfig::skadi_gen2().with_ft(ft))
            .build();
        let run = session
            .sql_distributed_with_failures(&db, sql, &plan)
            .unwrap();
        assert_identical(&db, sql, &run, &format!("chaos under {ft:?}"));
        assert_eq!(run.report.stats.abandoned, 0, "under {ft:?}");
    }
}

#[test]
fn lineage_chaos_actually_retries_and_still_matches() {
    // A harsher schedule that must force re-execution under lineage:
    // kill several servers early, recover them later.
    let db = big_db();
    let sql = "SELECT k, sum(v) AS s, count(*) AS n FROM events GROUP BY k";
    let topo = presets::small_disagg_cluster();
    let servers = topo.servers();
    let mut plan = FailurePlan::none();
    for (i, &node) in servers.iter().take(2).enumerate() {
        plan = plan.kill_and_recover(
            node,
            SimTime::from_micros(2 + 3 * i as u64),
            SimTime::from_millis(6 + i as u64),
        );
    }
    let session = Session::builder()
        .topology(topo)
        .parallelism(8)
        .runtime(RuntimeConfig::skadi_gen2().with_ft(FtMode::Lineage))
        .build();
    let run = session
        .sql_distributed_with_failures(&db, sql, &plan)
        .unwrap();
    assert_identical(&db, sql, &run, "lineage re-execution");
    assert!(
        run.report.stats.retries > 0,
        "this schedule is supposed to force re-execution (got {} retries)",
        run.report.stats.retries
    );
    // Re-executions append duplicate timing entries; every data-plane
    // task ran at least once, the recomputed ones more.
    assert!(run.data_plane.timings.len() > run.report.stats.finished as usize);
}

#[test]
fn determinism_across_seeds_and_runs() {
    let db = big_db();
    let sql = "SELECT label, sum(v) AS s FROM events JOIN dims ON k = k GROUP BY label ORDER BY s";
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    let mut shuffles = Vec::new();
    for seed in [1u64, 99] {
        let mut cfg = RuntimeConfig::skadi_gen2();
        cfg.seed = seed;
        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .parallelism(4)
            .runtime(cfg)
            .build();
        let run = session.sql_distributed(&db, sql).unwrap();
        outputs.push(ipc::encode(&run.batch).to_vec());
        shuffles.push(run.data_plane.shuffle_rows.clone());
    }
    assert_eq!(outputs[0], outputs[1], "result bytes differ across seeds");
    assert_eq!(
        shuffles[0], shuffles[1],
        "per-shard shuffle row counts differ across seeds"
    );
    assert!(!shuffles[0].is_empty(), "group-by query must shuffle");
}

/// Registering dictionary-encoded tables must be observationally
/// invisible: the result bytes match a plain-table MemDb at every
/// parallelism, and under kill-and-recover chaos. (The engine also
/// dict-encodes internally at scan time; this pins the *input* side.)
#[test]
fn dict_encoded_tables_are_byte_identical_to_plain() {
    let plain = big_db();
    let mut dict = MemDb::new();
    for (name, batch) in plain.tables() {
        let encoded = batch.dict_encoded();
        dict = dict.register(name, encoded);
    }
    // The low-cardinality string columns really did encode.
    assert!(matches!(
        dict.table("events").unwrap().column(2),
        Array::DictUtf8(_)
    ));
    for &p in &[1u32, 2, 4, 8] {
        let session = session_with(p);
        for sql in BIG_QUERIES {
            let run = session.sql_distributed(&dict, sql).unwrap();
            assert_identical(&plain, sql, &run, &format!("dict tables, parallelism {p}"));
        }
    }
    // And through chaos: kill a server mid-query, recover it later.
    let topo = presets::small_disagg_cluster();
    let victim = topo.servers()[0];
    let plan = FailurePlan::none().kill_and_recover(
        victim,
        SimTime::from_micros(3),
        SimTime::from_millis(4),
    );
    let session = Session::builder()
        .topology(topo)
        .parallelism(4)
        .runtime(RuntimeConfig::skadi_gen2().with_ft(FtMode::Lineage))
        .build();
    let sql = BIG_QUERIES[2];
    let run = session
        .sql_distributed_with_failures(&dict, sql, &plan)
        .unwrap();
    assert_identical(&plain, sql, &run, "dict tables under chaos");
    assert_eq!(run.report.stats.abandoned, 0);
}

/// NaN ordering (`f64::total_cmp`: NaN after +inf ascending) must be
/// deterministic and identical between the local engine and the
/// distributed plane, for full sorts and for TopN.
#[test]
fn nan_ordering_identical_local_and_distributed() {
    let m = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
        ]),
        vec![
            Array::from_i64((0..8).collect()),
            Array::from_f64(vec![
                f64::NAN,
                1.5,
                f64::NEG_INFINITY,
                f64::INFINITY,
                -0.0,
                f64::NAN,
                -3.25,
                0.0,
            ]),
        ],
    )
    .unwrap();
    let db = MemDb::new().register("m", m);
    let queries = [
        "SELECT x FROM m ORDER BY x",
        "SELECT x FROM m ORDER BY x DESC",
        "SELECT x FROM m ORDER BY x DESC LIMIT 3",
        "SELECT x FROM m ORDER BY x LIMIT 5",
    ];
    // Ascending: NaNs land strictly last.
    match db.query(queries[0]).unwrap().column(0) {
        Array::Float64(xs) => {
            assert!(xs.get(6).unwrap().is_nan() && xs.get(7).unwrap().is_nan());
            assert_eq!(xs.get(5).unwrap(), f64::INFINITY);
        }
        other => panic!("unexpected column {other:?}"),
    }
    for &p in &[1u32, 2, 4, 8] {
        let session = session_with(p);
        for sql in &queries {
            let run = session.sql_distributed(&db, sql).unwrap();
            assert_identical(&db, sql, &run, &format!("NaN ordering, parallelism {p}"));
        }
    }
}

/// Mixed int/float join keys compare exactly: an i64 key above 2^53 must
/// not collide with the f64 its neighbour rounds to — locally and
/// distributed.
#[test]
fn mixed_join_keys_exact_above_2_53_distributed() {
    const P53: i64 = 1 << 53;
    let facts = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]),
        vec![
            // P53 + 1 rounds to P53 as f64; exact equality must reject it.
            Array::from_i64(vec![P53, P53 + 1, 5]),
            Array::from_f64(vec![1.0, 2.0, 3.0]),
        ],
    )
    .unwrap();
    let dims = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("fkey", DataType::Float64, false),
            Field::new("label", DataType::Utf8, false),
        ]),
        vec![
            Array::from_f64(vec![P53 as f64, 5.0]),
            Array::from_utf8(&["big", "small"]),
        ],
    )
    .unwrap();
    let db = MemDb::new().register("facts", facts).register("dims", dims);
    let sql = "SELECT k, label FROM facts JOIN dims ON k = fkey ORDER BY k";
    let local = db.query(sql).unwrap();
    // Exactly two matches: 5 and P53 itself — never P53 + 1.
    assert_eq!(local.num_rows(), 2);
    match local.column(0) {
        Array::Int64(ks) => {
            assert_eq!(ks.get(0).unwrap(), 5);
            assert_eq!(ks.get(1).unwrap(), P53);
        }
        other => panic!("unexpected column {other:?}"),
    }
    for &p in &[1u32, 2, 4] {
        let session = session_with(p);
        let run = session.sql_distributed(&db, sql).unwrap();
        assert_identical(&db, sql, &run, &format!("2^53 join, parallelism {p}"));
    }
}

/// With shuffle compression on (the default), a distributed run must
/// report strictly fewer measured output bytes than the same run with
/// compression off — and identical result bytes.
#[test]
fn shuffle_compression_shrinks_measured_output_bytes() {
    let db = big_db();
    let sql = "SELECT label, sum(v) AS s FROM events JOIN dims ON k = k GROUP BY label ORDER BY s";
    let run_with = |compress: bool| {
        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .parallelism(4)
            .shuffle_compression(compress)
            .build();
        session.sql_distributed(&db, sql).unwrap()
    };
    let off = run_with(false);
    let on = run_with(true);
    assert_identical(&db, sql, &on, "compression on");
    assert_identical(&db, sql, &off, "compression off");
    let total = |run: &skadi::DistributedRun| -> u64 {
        run.report.stats.measured_output_bytes.values().sum()
    };
    assert!(
        total(&on) < total(&off),
        "compression on shipped {} bytes, off shipped {}",
        total(&on),
        total(&off)
    );
}

#[test]
fn task_output_sizes_are_measured_not_estimated() {
    let db = golden_db();
    let session = session_with(4);
    let run = session
        .sql_distributed(
            &db,
            "SELECT tag, count(*) AS n, sum(amount) AS s FROM orders GROUP BY tag",
        )
        .unwrap();
    let measured = &run.report.stats.measured_output_bytes;
    assert_eq!(
        measured.len(),
        run.report.stats.finished as usize,
        "every finished task should have a measured payload size"
    );
    // Each recorded size is a real IPC frame length the executor stored,
    // and matches what the data plane measured for that task.
    for t in &run.data_plane.timings {
        assert_eq!(measured.get(&t.task), Some(&t.output_bytes));
        assert!(t.output_bytes >= 15, "even an empty frame has a header");
    }
}

#[test]
fn reserved_columns_are_rejected() {
    let bad = MemDb::new().register(
        "t",
        RecordBatch::try_new(
            Schema::new(vec![Field::new("__rid", DataType::Int64, false)]),
            vec![Array::from_i64(vec![1])],
        )
        .unwrap(),
    );
    let err = session_with(2).sql_distributed(&bad, "SELECT __rid FROM t");
    assert!(err.is_err(), "reserved column names must be rejected");
}

/// Pins the shuffle/exec hash contract across crates: the flowgraph
/// partitioner (`Partitioner::Hash` over a key's raw bytes), the arrow
/// column hash (`hash_key_column` / `hash_key_at`), and the shard-level
/// `partition_by_key` must all route every row to the same shard. If any
/// one of them changes its hash, joins would silently mis-co-locate rows
/// — this test turns that into a loud failure.
#[test]
fn shuffle_and_exec_hashes_are_bit_compatible() {
    use skadi::arrow::compute::{hash_key_at, hash_key_column};
    use skadi::flowgraph::partition::Partitioner;
    use skadi::frontends::shard::partition_by_key;

    // One column per type, with nulls; the raw-byte key encodings the
    // partitioner hashes (i64/f64-bits little-endian, bool byte, UTF-8
    // bytes, 0xFF null marker) must reproduce the column hashes.
    let cases: Vec<(Array, Vec<Option<Vec<u8>>>)> = vec![
        (
            Array::from_opt_i64(vec![Some(7), None, Some(-3), Some(i64::MAX)]),
            vec![
                Some(7i64.to_le_bytes().to_vec()),
                None,
                Some((-3i64).to_le_bytes().to_vec()),
                Some(i64::MAX.to_le_bytes().to_vec()),
            ],
        ),
        (
            Array::from_opt_f64(vec![Some(1.5), None, Some(-0.0)]),
            vec![
                Some(1.5f64.to_bits().to_le_bytes().to_vec()),
                None,
                Some((-0.0f64).to_bits().to_le_bytes().to_vec()),
            ],
        ),
        (
            Array::from_opt_utf8(vec![Some("k1"), None, Some(""), Some("naïve")]),
            vec![
                Some(b"k1".to_vec()),
                None,
                Some(Vec::new()),
                Some("naïve".as_bytes().to_vec()),
            ],
        ),
    ];

    for parts in [1u32, 2, 4, 8] {
        for (col, keys) in &cases {
            let hashes = hash_key_column(col, false);
            for (row, key) in keys.iter().enumerate() {
                let bytes = match key {
                    Some(b) => b.clone(),
                    None => vec![0xFF],
                };
                let via_partitioner = Partitioner::Hash.assign(&bytes, row as u64, parts);
                let via_column = (hashes[row] % parts as u64) as u32;
                let via_row = (hash_key_at(col, false, row) % parts as u64) as u32;
                assert_eq!(via_partitioner, via_column, "row {row} at {parts} parts");
                assert_eq!(via_partitioner, via_row, "row {row} at {parts} parts");
            }
        }
    }

    // And the batch-level shuffle agrees: partition_by_key sends row r to
    // exactly the shard the partitioner computes for r's key bytes.
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, true),
            Field::new("row", DataType::Int64, false),
        ]),
        vec![
            Array::from_opt_i64(vec![Some(10), Some(20), None, Some(10), Some(35), Some(-2)]),
            Array::from_i64(vec![0, 1, 2, 3, 4, 5]),
        ],
    )
    .unwrap();
    let parts = 4usize;
    let shards = partition_by_key(&batch, "k", parts, false).unwrap();
    let keys: Vec<Vec<u8>> = vec![
        10i64.to_le_bytes().to_vec(),
        20i64.to_le_bytes().to_vec(),
        vec![0xFF],
        10i64.to_le_bytes().to_vec(),
        35i64.to_le_bytes().to_vec(),
        (-2i64).to_le_bytes().to_vec(),
    ];
    for (row, key) in keys.iter().enumerate() {
        let expect = Partitioner::Hash.assign(key, row as u64, parts as u32) as usize;
        for (s, shard) in shards.iter().enumerate() {
            let found = (0..shard.num_rows()).any(|r| {
                shard.column(1).value_at(r) == skadi::arrow::array::Value::I64(row as i64)
            });
            assert_eq!(
                found,
                s == expect,
                "row {row} should live on shard {expect}, checked shard {s}"
            );
        }
    }
}

//! Scale/stress tests: the simulator must handle jobs far larger than the
//! experiments use, deterministically, in sane wall-clock time.

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};

/// A layered DAG: `layers` x `width` tasks, each consuming two parents.
fn layered_job(layers: u64, width: u64) -> Job {
    let mut tasks = Vec::new();
    for l in 0..layers {
        for w in 0..width {
            let id = l * width + w;
            let mut t = TaskSpec::new(id, 200.0, 1 << 12);
            if l > 0 {
                let p1 = (l - 1) * width + w;
                let p2 = (l - 1) * width + (w + 1) % width;
                t = t.after(TaskId(p1), 1 << 12).after(TaskId(p2), 1 << 12);
            }
            tasks.push(t);
        }
    }
    Job::new("layered", tasks).expect("valid layered job")
}

#[test]
fn two_thousand_task_job_completes() {
    let topo = presets::small_disagg_cluster();
    let job = layered_job(50, 40); // 2000 tasks, ~4000 edges.
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let stats = c.run(&job).expect("large job runs");
    assert_eq!(stats.finished, 2000);
    assert_eq!(stats.abandoned, 0);
    assert!(stats.utilization > 0.0);
}

#[test]
fn large_job_is_deterministic() {
    let topo = presets::small_disagg_cluster();
    let job = layered_job(20, 25);
    let a = Cluster::new(&topo, RuntimeConfig::skadi_gen2())
        .run(&job)
        .unwrap();
    let b = Cluster::new(&topo, RuntimeConfig::skadi_gen2())
        .run(&job)
        .unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.net, b.net);
    assert_eq!(a.stall_total, b.stall_total);
}

#[test]
fn large_job_survives_two_failures() {
    use skadi::dcsim::time::SimTime;
    let topo = presets::small_disagg_cluster();
    let job = layered_job(30, 20); // 600 tasks.
    let servers = topo.servers();
    let plan = FailurePlan::none()
        .kill(servers[2], SimTime::from_millis(2))
        .kill(servers[5], SimTime::from_millis(5));
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let stats = c.run_with_failures(&job, &plan).expect("survives");
    assert_eq!(stats.finished, 600);
    assert_eq!(stats.abandoned, 0);
    assert!(
        stats.retries > 0,
        "failures mid-job must force re-execution"
    );
}

/// The 1k-node suite CI runs: staggered multi-job chaos on a 1000-server
/// topology must converge to the failure-free manifest, deterministically,
/// and a plain large job must keep every node's bookkeeping consistent
/// (no linear scans hiding O(n²) blowups — the run is time-bounded by CI).
#[test]
fn thousand_node_cluster_runs_multi_job_chaos() {
    use skadi::runtime::chaos::{chaos_config, chaos_topology_scaled, run_chaos_multi_scaled};
    use skadi::runtime::FtMode;

    let topo = chaos_topology_scaled(1_000);
    assert_eq!(topo.servers().len(), 1_000);
    // The debug invariant checker is O(nodes) per event — exactly the
    // scan-shaped cost this suite exists to keep out of the hot path.
    let cfg = chaos_config(FtMode::Lineage).with_debug_invariants(false);
    let v = run_chaos_multi_scaled(&topo, 23, 6, cfg.clone()).expect("survivable schedule");
    assert!(v.equivalent(), "manifests diverged: {:?}", v.plan);
    assert_eq!(v.per_job.len(), 6);

    // Determinism holds at this scale too.
    let w = run_chaos_multi_scaled(&topo, 23, 6, cfg).expect("survivable schedule");
    assert_eq!(v.chaotic, w.chaotic);
    assert_eq!(v.stats.makespan, w.stats.makespan);
}

#[test]
fn thousand_node_cluster_places_under_every_policy() {
    use skadi::runtime::chaos::chaos_topology_scaled;
    use skadi::runtime::{Cluster, PlacementPolicy};

    let topo = chaos_topology_scaled(1_000);
    let job = layered_job(10, 50); // 500 tasks over 1000 nodes.
    for policy in PlacementPolicy::ALL {
        let cfg = RuntimeConfig::skadi_gen2()
            .with_placement(policy)
            .with_debug_invariants(false);
        let stats = Cluster::new(&topo, cfg)
            .run(&job)
            .unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(stats.finished, 500, "{policy} lost tasks");
        assert_eq!(stats.abandoned, 0, "{policy} abandoned tasks");
    }
}

#[test]
fn deep_chain_does_not_blow_the_stack() {
    // Lineage recovery recurses producer-by-producer; a 500-deep chain
    // with a late failure exercises that path.
    use skadi::dcsim::time::SimTime;
    let topo = presets::small_disagg_cluster();
    let mut tasks = vec![TaskSpec::new(0, 100.0, 1 << 10)];
    for i in 1..500u64 {
        tasks.push(TaskSpec::new(i, 100.0, 1 << 10).after(TaskId(i - 1), 1 << 10));
    }
    let job = Job::new("deep", tasks).unwrap();
    let victim = topo.servers()[0];
    let plan = FailurePlan::none().kill(victim, SimTime::from_millis(30));
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let stats = c
        .run_with_failures(&job, &plan)
        .expect("deep chain survives");
    assert_eq!(stats.finished, 500);
}

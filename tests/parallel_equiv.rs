//! Thread-count invariance for the morsel-driven parallel engine.
//!
//! The parallelism layer's headline guarantee: the worker-pool size
//! changes wall-clock time and nothing else. Every test here sweeps the
//! shared pool across 1/2/4/8 threads and asserts byte-identical result
//! frames, identical `QueryProfile::to_json` (already wall-free by
//! construction), and identical simulated pricing — locally, through the
//! distributed data plane at every parallelism, and under chaos
//! kill/recover in every fault-tolerance mode. A property test drives
//! the partitioned join/group-by kernels against the stringly
//! row-at-a-time reference from `skadi_bench` at sizes above the morsel
//! threshold, where the partitioned code paths are active.

use proptest::prelude::*;

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::ipc;
use skadi::arrow::schema::{Field, Schema};
use skadi::frontends::exec::{self, pool, MemDb};
use skadi::frontends::sql::{parse, tokenize};
use skadi::prelude::*;
use skadi::runtime::config::FtMode;
use skadi::store::ec::EcConfig;
use skadi_bench::exec_bench::{baseline_group_sum_count, baseline_join};
use skadi_dcsim::rng::DetRng;
use skadi_dcsim::time::SimTime;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Pool-resizing tests share the process-wide pool; serialize them.
fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `n` seeded rows: a skewed i64 key, a float value with nulls, and a
/// low-cardinality tag. Sized by callers to straddle the 16k-row morsel
/// threshold, so both the serial and the partitioned code paths run.
fn events(n: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let keys: Vec<i64> = (0..n).map(|_| rng.below(97) as i64).collect();
    let vals: Vec<Option<f64>> = (0..n)
        .map(|_| (!rng.chance(0.04)).then(|| rng.unit() * 100.0 - 50.0))
        .collect();
    let tags: Vec<&str> = (0..n)
        .map(|_| *rng.pick(&["red", "green", "blue", "cyan"]))
        .collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, true),
            Field::new("tag", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(keys),
            Array::from_opt_f64(vals),
            Array::from_utf8(&tags),
        ],
    )
    .unwrap()
}

fn dims() -> RecordBatch {
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("label", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64((0..97).collect()),
            Array::from_utf8(
                &(0..97)
                    .map(|i| format!("dim-{i:02}"))
                    .collect::<Vec<_>>()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            ),
        ],
    )
    .unwrap()
}

/// 40k fact rows: comfortably past `PARALLEL_MIN_ROWS`, so filters,
/// joins, group-bys, and sorts all take their partitioned/morsel paths.
fn big_db() -> MemDb {
    MemDb::new()
        .register("events", events(40_000, 11))
        .register("dims", dims())
}

/// Queries covering every parallel kernel: multi-conjunct filter,
/// partitioned join, partitioned group-by, global aggregate, parallel
/// sort, top-n.
const QUERIES: &[&str] = &[
    "SELECT k, sum(v) AS s, count(*) AS n FROM events GROUP BY k",
    "SELECT label, sum(v) AS s, count(*) AS n FROM events JOIN dims ON k = k GROUP BY label ORDER BY s",
    "SELECT k, v FROM events WHERE tag = 'red' AND v > 10 ORDER BY v DESC LIMIT 25",
    "SELECT sum(v) AS total, avg(v) AS m, min(v) AS lo, max(v) AS hi FROM events",
    "SELECT k, v, tag FROM events WHERE v > 49 ORDER BY v",
    "SELECT tag, avg(v) AS m FROM events WHERE v > -40 GROUP BY tag ORDER BY m DESC",
];

#[test]
fn local_queries_are_thread_invariant() {
    let _guard = pool_lock();
    let restore = pool::global_threads();
    let db = big_db();
    for sql in QUERIES {
        pool::set_global_threads(1);
        let (batch, profile) = db.query_profiled(sql).unwrap();
        let want_bytes = ipc::encode(&batch).to_vec();
        let want_json = profile.to_json();
        for &t in &THREADS[1..] {
            pool::set_global_threads(t);
            let (got, got_profile) = db.query_profiled(sql).unwrap();
            assert_eq!(
                ipc::encode(&got).as_slice(),
                want_bytes.as_slice(),
                "{sql:?} changed result bytes at {t} threads"
            );
            assert_eq!(
                got_profile.to_json(),
                want_json,
                "{sql:?} changed its profile at {t} threads"
            );
        }
    }
    pool::set_global_threads(restore);
}

/// One distributed run's thread-invariant observables: result frame,
/// profile JSON, and the simulated pricing the cluster computed from
/// measured output bytes.
struct RunDigest {
    bytes: Vec<u8>,
    profile_json: String,
    cost_bits: u64,
    makespan: skadi_dcsim::time::SimDuration,
    measured: std::collections::BTreeMap<skadi::runtime::TaskId, u64>,
    finished: u64,
}

fn digest(run: &skadi::DistributedRun) -> RunDigest {
    RunDigest {
        bytes: ipc::encode(&run.batch).to_vec(),
        profile_json: run.report.profile.as_ref().expect("profile").to_json(),
        cost_bits: run.report.stats.cost_units.to_bits(),
        makespan: run.report.stats.makespan,
        measured: run.report.stats.measured_output_bytes.clone(),
        finished: run.report.stats.finished,
    }
}

fn assert_digests_match(a: &RunDigest, b: &RunDigest, ctx: &str) {
    assert_eq!(a.bytes, b.bytes, "{ctx}: result bytes changed");
    assert_eq!(a.profile_json, b.profile_json, "{ctx}: profile changed");
    assert_eq!(a.cost_bits, b.cost_bits, "{ctx}: cost_units changed");
    assert_eq!(a.makespan, b.makespan, "{ctx}: simulated makespan changed");
    assert_eq!(a.measured, b.measured, "{ctx}: measured bytes changed");
    assert_eq!(a.finished, b.finished, "{ctx}: finished count changed");
}

#[test]
fn distributed_runs_are_thread_invariant_at_every_parallelism() {
    let _guard = pool_lock();
    let restore = pool::global_threads();
    let db = MemDb::new()
        .register("events", events(20_000, 23))
        .register("dims", dims());
    let sql =
        "SELECT label, sum(v) AS s, count(*) AS n FROM events JOIN dims ON k = k GROUP BY label ORDER BY s";
    for &p in &[1u32, 2, 4, 8] {
        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .parallelism(p)
            .build();
        pool::set_global_threads(1);
        let reference = digest(&session.sql_distributed(&db, sql).unwrap());
        let local = ipc::encode(&db.query(sql).unwrap()).to_vec();
        assert_eq!(
            reference.bytes, local,
            "parallelism {p}: distributed diverged from MemDb"
        );
        for &t in &THREADS[1..] {
            pool::set_global_threads(t);
            let run = digest(&session.sql_distributed(&db, sql).unwrap());
            assert_digests_match(&reference, &run, &format!("parallelism {p}, {t} threads"));
        }
    }
    pool::set_global_threads(restore);
}

#[test]
fn chaos_runs_are_thread_invariant_in_every_ft_mode() {
    let _guard = pool_lock();
    let restore = pool::global_threads();
    let db = MemDb::new()
        .register("events", events(20_000, 31))
        .register("dims", dims());
    let sql = "SELECT k, sum(v) AS s, count(*) AS n FROM events GROUP BY k";
    let topo = presets::small_disagg_cluster();
    let servers = topo.servers();
    let mut plan = FailurePlan::none();
    for (i, &node) in servers.iter().take(2).enumerate() {
        plan = plan.kill_and_recover(
            node,
            SimTime::from_micros(2 + 3 * i as u64),
            SimTime::from_millis(6 + i as u64),
        );
    }
    for ft in [
        FtMode::Lineage,
        FtMode::Replication(2),
        FtMode::ErasureCoding(EcConfig::RS_4_2),
    ] {
        let session = Session::builder()
            .topology(topo.clone())
            .parallelism(4)
            .runtime(RuntimeConfig::skadi_gen2().with_ft(ft))
            .build();
        pool::set_global_threads(1);
        let reference = digest(
            &session
                .sql_distributed_with_failures(&db, sql, &plan)
                .unwrap(),
        );
        let local = ipc::encode(&db.query(sql).unwrap()).to_vec();
        assert_eq!(
            reference.bytes, local,
            "{ft:?}: chaos run diverged from MemDb"
        );
        for &t in &THREADS[1..] {
            pool::set_global_threads(t);
            let run = digest(
                &session
                    .sql_distributed_with_failures(&db, sql, &plan)
                    .unwrap(),
            );
            assert_digests_match(&reference, &run, &format!("{ft:?}, {t} threads"));
        }
    }
    pool::set_global_threads(restore);
}

// The partitioned kernels against the engine-independent stringly
// reference, at a size where the partitioned paths are active. Sweeping
// seeds varies key skew, null placement, and partition occupancy.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn partitioned_kernels_match_stringly_reference(seed in 0u64..1000) {
        let _guard = pool_lock();
        let restore = pool::global_threads();
        let left = events(17_000, seed);
        let right = dims();
        let q = parse(&tokenize(
            "SELECT k, sum(v) AS s, count(*) AS n FROM events GROUP BY k",
        ).unwrap()).unwrap();

        pool::set_global_threads(1);
        let join1 = exec::hash_join(&left, &right, "k", "k").unwrap();
        let agg1 = exec::aggregate(&q, &left).unwrap();
        prop_assert_eq!(&join1, &baseline_join(&left, &right, "k", "k"));
        prop_assert_eq!(&agg1, &baseline_group_sum_count(&left, "k", "v"));

        for t in [2usize, 4, 8] {
            pool::set_global_threads(t);
            let join_t = exec::hash_join(&left, &right, "k", "k").unwrap();
            let agg_t = exec::aggregate(&q, &left).unwrap();
            prop_assert_eq!(&join_t, &join1, "join changed at {} threads", t);
            prop_assert_eq!(&agg_t, &agg1, "group-by changed at {} threads", t);
        }
        pool::set_global_threads(restore);
    }
}

//! Golden-result equivalence suite for the vectorized SQL engine.
//!
//! The engine's hash-keyed join and group-by replaced a stringly
//! row-at-a-time implementation; these tests pin the tricky corners —
//! nulls in keys, duplicate join keys, mixed int/float comparisons,
//! empty inputs — against hand-computed expected results, and
//! property-test the hash-keyed paths against the naive stringly
//! reference preserved in `skadi_bench::exec_bench`.

use proptest::prelude::*;

use skadi::arrow::array::{Array, Value};
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::schema::{Field, Schema};
use skadi::frontends::exec::{self, MemDb};
use skadi::frontends::sql::{parse, tokenize};
use skadi_bench::exec_bench::{baseline_group_sum_count, baseline_join};

fn golden_db() -> MemDb {
    let orders = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("order_id", DataType::Int64, false),
            Field::new("cust", DataType::Int64, true),
            Field::new("amount", DataType::Float64, true),
            Field::new("tag", DataType::Utf8, true),
        ]),
        vec![
            Array::from_i64(vec![1, 2, 3, 4, 5, 6]),
            Array::from_opt_i64(vec![Some(10), Some(20), None, Some(10), Some(30), Some(20)]),
            Array::from_opt_f64(vec![
                Some(5.0),
                Some(2.5),
                Some(9.0),
                None,
                Some(1.0),
                Some(4.0),
            ]),
            Array::from_opt_utf8(vec![Some("a"), Some("b"), Some("a"), None, Some("b"), None]),
        ],
    )
    .unwrap();
    // Duplicate key 10 on the build side multiplies matches; key 99
    // matches nothing; a null key matches nothing.
    let custs = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("cust", DataType::Int64, true),
            Field::new("name", DataType::Utf8, false),
        ]),
        vec![
            Array::from_opt_i64(vec![Some(10), Some(10), Some(20), Some(99), None]),
            Array::from_utf8(&["ten-a", "ten-b", "twenty", "none", "null-key"]),
        ],
    )
    .unwrap();
    // Float keys for the mixed int/float join: 10.0 and 20.5.
    let ratios = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("fkey", DataType::Float64, false),
            Field::new("ratio", DataType::Float64, false),
        ]),
        vec![
            Array::from_f64(vec![10.0, 20.5]),
            Array::from_f64(vec![0.5, 0.25]),
        ],
    )
    .unwrap();
    let empty = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, true),
        ]),
        vec![Array::from_i64(vec![]), Array::from_opt_f64(vec![])],
    )
    .unwrap();
    MemDb::new()
        .register("orders", orders)
        .register("custs", custs)
        .register("ratios", ratios)
        .register("empty", empty)
}

fn col<'a>(batch: &'a RecordBatch, name: &str) -> &'a Array {
    batch.column_by_name(name).unwrap()
}

#[test]
fn join_null_keys_match_nothing_duplicates_multiply() {
    let out = golden_db()
        .query("SELECT order_id, name FROM orders JOIN custs ON cust = cust ORDER BY order_id")
        .unwrap();
    // Orders with cust=10 (ids 1, 4) match BOTH duplicate build rows;
    // cust=20 (ids 2, 6) match one; cust=NULL (id 3) and cust=30 (id 5)
    // match nothing; build-side NULL and 99 match nothing.
    assert_eq!(out.num_rows(), 6);
    let ids: Vec<Value> = (0..6).map(|r| col(&out, "order_id").value_at(r)).collect();
    assert_eq!(
        ids,
        vec![
            Value::I64(1),
            Value::I64(1),
            Value::I64(2),
            Value::I64(4),
            Value::I64(4),
            Value::I64(6),
        ]
    );
    // Duplicate matches keep build-side row order: ten-a before ten-b.
    assert_eq!(col(&out, "name").value_at(0), Value::Str("ten-a".into()));
    assert_eq!(col(&out, "name").value_at(1), Value::Str("ten-b".into()));
    assert_eq!(col(&out, "name").value_at(2), Value::Str("twenty".into()));
}

#[test]
fn join_mixed_int_float_keys_compare_numerically() {
    let out = golden_db()
        .query("SELECT order_id, ratio FROM orders JOIN ratios ON cust = fkey ORDER BY order_id")
        .unwrap();
    // Int cust=10 joins float fkey=10.0 (orders 1 and 4); 20 vs 20.5
    // does not join.
    assert_eq!(out.num_rows(), 2);
    assert_eq!(col(&out, "order_id").value_at(0), Value::I64(1));
    assert_eq!(col(&out, "order_id").value_at(1), Value::I64(4));
    assert_eq!(col(&out, "ratio").value_at(0), Value::F64(0.5));
}

#[test]
fn group_by_nullable_key_groups_nulls_together() {
    let out = golden_db()
        .query("SELECT tag, count(*) AS n, sum(amount) AS s FROM orders GROUP BY tag")
        .unwrap();
    // Rendered-key order: "a" < "b" < "null".
    assert_eq!(out.num_rows(), 3);
    assert_eq!(col(&out, "tag").value_at(0), Value::Str("a".into()));
    assert_eq!(col(&out, "n").value_at(0), Value::I64(2));
    assert_eq!(col(&out, "s").value_at(0), Value::F64(14.0));
    assert_eq!(col(&out, "tag").value_at(1), Value::Str("b".into()));
    assert_eq!(col(&out, "s").value_at(1), Value::F64(3.5));
    // The two null-tag rows (ids 4, 6) form one group; amount NULL is
    // skipped by sum but counted by count(*).
    assert_eq!(col(&out, "tag").value_at(2), Value::Null);
    assert_eq!(col(&out, "n").value_at(2), Value::I64(2));
    assert_eq!(col(&out, "s").value_at(2), Value::F64(4.0));
}

#[test]
fn int_aggregates_are_int64_typed() {
    let out = golden_db()
        .query(
            "SELECT sum(cust) AS s, min(cust) AS lo, max(cust) AS hi, avg(cust) AS m FROM orders",
        )
        .unwrap();
    assert_eq!(out.schema().field(0).data_type, DataType::Int64);
    assert_eq!(out.schema().field(1).data_type, DataType::Int64);
    assert_eq!(out.schema().field(2).data_type, DataType::Int64);
    assert_eq!(out.schema().field(3).data_type, DataType::Float64);
    assert_eq!(col(&out, "s").value_at(0), Value::I64(90));
    assert_eq!(col(&out, "lo").value_at(0), Value::I64(10));
    assert_eq!(col(&out, "hi").value_at(0), Value::I64(30));
    assert_eq!(col(&out, "m").value_at(0), Value::F64(18.0));
}

#[test]
fn global_aggregate_over_empty_relation_yields_one_row() {
    let db = golden_db();
    for sql in [
        "SELECT count(*) AS n, sum(v) AS s FROM empty",
        "SELECT count(*) AS n, sum(amount) AS s FROM orders WHERE amount > 1000",
    ] {
        let out = db.query(sql).unwrap();
        assert_eq!(out.num_rows(), 1, "{sql}");
        assert_eq!(col(&out, "n").value_at(0), Value::I64(0), "{sql}");
        assert_eq!(col(&out, "s").value_at(0), Value::Null, "{sql}");
    }
    // A grouped aggregate over no rows stays empty.
    let out = db
        .query("SELECT k, count(*) AS n FROM empty GROUP BY k")
        .unwrap();
    assert_eq!(out.num_rows(), 0);
}

#[test]
fn mixed_int_float_comparisons_filter_numerically() {
    let out = golden_db()
        .query("SELECT order_id FROM orders WHERE cust >= 15.5 ORDER BY order_id")
        .unwrap();
    // 20, 30, 20 pass; 10s fail; NULL cust drops.
    assert_eq!(out.num_rows(), 3);
    assert_eq!(out.column(0).value_at(0), Value::I64(2));
    let out = golden_db()
        .query("SELECT order_id FROM orders WHERE amount < 5 AND cust = 20 ORDER BY order_id")
        .unwrap();
    // Fused conjuncts: amount NULL and cust NULL rows drop.
    assert_eq!(out.num_rows(), 2);
    assert_eq!(out.column(0).value_at(0), Value::I64(2));
    assert_eq!(out.column(0).value_at(1), Value::I64(6));
}

#[test]
fn order_by_nullable_column_puts_nulls_first() {
    let out = golden_db()
        .query("SELECT order_id, amount FROM orders ORDER BY amount LIMIT 3")
        .unwrap();
    // NULL amount (id 4) sorts lowest, then 1.0 (id 5), 2.5 (id 2).
    assert_eq!(out.column(0).value_at(0), Value::I64(4));
    assert_eq!(out.column(0).value_at(1), Value::I64(5));
    assert_eq!(out.column(0).value_at(2), Value::I64(2));
}

// ---------------------------------------------------------------------
// Properties: hash-keyed paths vs the naive stringly reference
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash-keyed group-by produces byte-identical batches to the
    /// stringly BTreeMap reference, for any null/duplicate pattern.
    #[test]
    fn hash_group_by_matches_stringly_reference(
        keys in prop::collection::vec(prop::option::of(-3i64..6), 0..80),
        vals in prop::collection::vec(prop::option::of(-10.0f64..10.0), 0..80),
    ) {
        let n = keys.len().min(vals.len());
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("v", DataType::Float64, true),
            ]),
            vec![
                Array::from_opt_i64(keys[..n].to_vec()),
                Array::from_opt_f64(vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let q = parse(&tokenize(
            "SELECT k, sum(v) AS s, count(*) AS n FROM t GROUP BY k",
        ).unwrap()).unwrap();
        let vectorized = exec::aggregate(&q, &batch).unwrap();
        let reference = baseline_group_sum_count(&batch, "k", "v");
        prop_assert_eq!(vectorized, reference);
    }

    /// Hash join agrees with the stringly BTreeMap reference — same
    /// rows, same order — under nulls and duplicate keys on both sides.
    #[test]
    fn hash_join_matches_stringly_reference(
        lkeys in prop::collection::vec(prop::option::of(0i64..8), 0..60),
        rkeys in prop::collection::vec(prop::option::of(0i64..8), 0..30),
    ) {
        let left = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("lrow", DataType::Int64, false),
            ]),
            vec![
                Array::from_opt_i64(lkeys.clone()),
                Array::from_i64((0..lkeys.len() as i64).collect()),
            ],
        )
        .unwrap();
        let right = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("rrow", DataType::Int64, false),
            ]),
            vec![
                Array::from_opt_i64(rkeys.clone()),
                Array::from_i64((0..rkeys.len() as i64).collect()),
            ],
        )
        .unwrap();
        let vectorized = exec::hash_join(&left, &right, "k", "k").unwrap();
        let reference = baseline_join(&left, &right, "k", "k");
        prop_assert_eq!(vectorized, reference);
    }

    /// Dictionary-encoding the stored tables is observationally
    /// invisible: every query answers identically to the plain-Utf8
    /// tables, for any null pattern and cardinality (including inputs
    /// where the policy declines to encode).
    #[test]
    fn dict_tables_match_plain_tables(
        tags in prop::collection::vec(prop::option::of(0usize..4), 4..80),
        vals in prop::collection::vec(-10.0f64..10.0, 4..80),
    ) {
        let pool = ["alpha", "beta", "gamma", "delta"];
        let n = tags.len().min(vals.len());
        let tag_col: Vec<Option<&str>> =
            tags[..n].iter().map(|t| t.map(|i| pool[i])).collect();
        let facts = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("tag", DataType::Utf8, true),
                Field::new("v", DataType::Float64, false),
            ]),
            vec![
                Array::from_opt_utf8(tag_col),
                Array::from_f64(vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let dims = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("tag", DataType::Utf8, false),
                Field::new("weight", DataType::Int64, false),
            ]),
            vec![Array::from_utf8(&pool), Array::from_i64(vec![1, 2, 3, 4])],
        )
        .unwrap();
        let plain = MemDb::new()
            .register("t", facts.clone())
            .register("d", dims.clone());
        let dict = MemDb::new()
            .register("t", facts.dict_encoded())
            .register("d", dims.dict_encoded());
        for sql in [
            "SELECT tag, v FROM t WHERE tag = 'beta' ORDER BY v",
            "SELECT tag, count(*) AS n, sum(v) AS s FROM t GROUP BY tag",
            "SELECT tag, v FROM t ORDER BY tag LIMIT 5",
            "SELECT weight, v FROM t JOIN d ON tag = tag ORDER BY v",
        ] {
            prop_assert_eq!(
                plain.query(sql).unwrap(),
                dict.query(sql).unwrap(),
                "plain and dict answers diverge for {}",
                sql
            );
        }
    }
}

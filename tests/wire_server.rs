//! The network front door, end to end: 100+ concurrent client sessions
//! over the framed in-memory transport must come back byte-identical to
//! the in-process engine, and every adversarial input — malformed
//! frames, oversized prefixes, handshake garbage, mid-query disconnects
//! — must end in an `Exception` packet or a clean teardown, never a
//! panic, a hang, or a partial result passed off as complete.

use std::io::{Read, Write};
use std::sync::Arc;
use std::thread;

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::ipc;
use skadi::arrow::schema::{Field, Schema};
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;
use skadi::server::{Server, ServerConfig, SessionEnd};
use skadi::wire::codec::{read_packet, write_packet, WireError};
use skadi::wire::packet::{code, Packet, CAP_PROGRESS, PROTOCOL_VERSION};
use skadi::wire::{Client, DEFAULT_MAX_FRAME};

/// Deterministic shared tables. `people` includes a name with an
/// embedded quote so the `'O''Brien'` escape is exercised end to end.
fn shared_db(rows: usize) -> MemDb {
    let mut rng = skadi::dcsim::rng::DetRng::seed(77);
    let kinds = ["click", "view", "purchase"];
    let user_ids: Vec<i64> = (0..rows).map(|_| rng.below(50) as i64).collect();
    let kind_col: Vec<&str> = (0..rows).map(|_| *rng.pick(&kinds)).collect();
    let values: Vec<f64> = (0..rows).map(|_| rng.unit() * 10.0).collect();
    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("kind", DataType::Utf8, false),
            Field::new("value", DataType::Float64, false),
        ]),
        vec![
            Array::from_i64(user_ids),
            Array::from_utf8(&kind_col),
            Array::from_f64(values),
        ],
    )
    .unwrap();
    let people = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("name", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(vec![0, 1, 2, 3]),
            Array::from_utf8(&["O'Brien", "Ada", "Grace", "O'Brien"]),
        ],
    )
    .unwrap();
    MemDb::new()
        .register("events", events)
        .register("people", people)
}

fn test_session(parallelism: u32) -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .parallelism(parallelism)
        .build()
}

fn query_set() -> Vec<&'static str> {
    vec![
        "SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind ORDER BY total DESC",
        "SELECT user_id, value FROM events WHERE value > 5.0 ORDER BY value DESC LIMIT 7",
        "SELECT name, count(*) AS n FROM events JOIN people ON user_id = user_id GROUP BY name ORDER BY name",
        "SELECT name FROM people WHERE name = 'O''Brien'",
        "SELECT user_id FROM events LIMIT 0",
    ]
}

/// The headline: 104 concurrent sessions over the framed transport, all
/// answers byte-identical to the in-process engine on the same shared
/// tables. Admission is sized so nothing is rejected — capacity limits
/// have their own deterministic test below.
#[test]
fn hundred_concurrent_sessions_byte_identical() {
    let db = shared_db(400);
    let expected: Vec<Vec<u8>> = query_set()
        .iter()
        .map(|q| ipc::encode(&db.query(q).unwrap()).to_vec())
        .collect();
    let server = Server::new(
        test_session(2),
        db,
        ServerConfig {
            max_queued: 256,
            ..ServerConfig::default()
        },
    );

    let mut clients = Vec::new();
    for c in 0..104usize {
        let (stream, server_thread) = server.connect();
        let expected = expected.clone();
        clients.push(thread::spawn(move || {
            let mut client = Client::connect(stream, &format!("client-{c}")).expect("handshake");
            // Each session rotates through the query set from its own
            // starting point so queries interleave across sessions.
            for k in 0..query_set().len() {
                let q_idx = (c + k) % query_set().len();
                let r = client.query(query_set()[q_idx]).expect("query succeeds");
                assert_eq!(
                    ipc::encode(&r.batch).to_vec(),
                    expected[q_idx],
                    "client {c} query {q_idx} diverged from in-process result"
                );
            }
            drop(client);
            // The server saw a normal teardown, not an error.
            assert_eq!(
                server_thread.join().expect("no panic"),
                SessionEnd::CleanClose
            );
        }));
    }
    for c in clients {
        c.join().expect("client thread panicked");
    }
}

/// A distributed-mode server executes through the simulated cluster's
/// data plane and still matches both the local engine and an in-process
/// `Session::sql_distributed` byte for byte.
#[test]
fn distributed_server_matches_in_process() {
    let db = shared_db(200);
    let session = test_session(4);
    let queries = [
        "SELECT kind, sum(value) AS total FROM events GROUP BY kind ORDER BY total DESC",
        "SELECT user_id, value FROM events WHERE value > 8.0 ORDER BY value DESC LIMIT 4",
    ];
    let expected: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            let run = session.sql_distributed(&db, q).unwrap();
            let local = db.query(q).unwrap();
            assert_eq!(run.batch, local, "distributed != local for {q}");
            ipc::encode(&run.batch).to_vec()
        })
        .collect();

    let server = Server::new(
        test_session(4),
        db,
        ServerConfig {
            distributed: true,
            ..ServerConfig::default()
        },
    );
    let mut clients = Vec::new();
    for c in 0..4 {
        let (stream, server_thread) = server.connect();
        let expected = expected.clone();
        clients.push(thread::spawn(move || {
            let mut client = Client::connect(stream, &format!("dist-{c}")).expect("handshake");
            for (q, want) in queries.iter().zip(&expected) {
                let r = client.query(q).expect("distributed query succeeds");
                assert_eq!(&ipc::encode(&r.batch).to_vec(), want);
            }
            drop(client);
            assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
        }));
    }
    for c in clients {
        c.join().expect("client thread panicked");
    }
}

/// Small blocks stream a result in many Data chunks with Progress
/// between them, and the reassembled batch equals the unchunked answer.
#[test]
fn streamed_chunks_reassemble() {
    let db = shared_db(300);
    let q = "SELECT user_id, kind, value FROM events ORDER BY value DESC";
    let whole = db.query(q).unwrap();
    let server = Server::new(
        test_session(2),
        db,
        ServerConfig {
            block_rows: 32,
            ..ServerConfig::default()
        },
    );

    let (stream, server_thread) = server.connect();
    let mut client = Client::connect(stream, "chunky").unwrap();
    let r = client.query(q).unwrap();
    assert!(r.chunks > 1, "300 rows at 32/block should chunk");
    assert_eq!(r.progress_events as u32, r.chunks - 1);
    assert_eq!(r.batch, whole);
    drop(client);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);

    // A client that does not negotiate CAP_PROGRESS gets pure data.
    let (stream, server_thread) = server.connect();
    let mut quiet = Client::connect_with(stream, "quiet", 0, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(quiet.capabilities & CAP_PROGRESS, 0);
    let r = quiet.query(q).unwrap();
    assert_eq!(r.progress_events, 0);
    assert_eq!(r.batch, whole);
    drop(quiet);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
}

/// Frontend bugs surface as readable Exception packets and the session
/// stays usable afterwards.
#[test]
fn sql_errors_become_exceptions_with_readable_messages() {
    let db = shared_db(50);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (stream, server_thread) = server.connect();
    let mut client = Client::connect(stream, "errors").unwrap();

    for (bad, needle) in [
        (
            "SELECT user_id FROM events LIMIT -5",
            "LIMIT must be a non-negative integer",
        ),
        (
            "SELECT name FROM people WHERE name = 'oops",
            "unterminated string literal starting at offset",
        ),
        ("SELECT x FROM nowhere", "nowhere"),
        ("SELECT % FROM events", "unexpected character"),
    ] {
        match client.query(bad) {
            Err(WireError::Server { code: c, message }) => {
                assert_eq!(c, code::SQL, "{bad}");
                assert!(message.contains(needle), "{bad}: {message}");
            }
            other => panic!("{bad}: expected server exception, got {other:?}"),
        }
        // The connection survives query-level failures.
        let ok = client.query("SELECT name FROM people WHERE name = 'O''Brien'");
        assert_eq!(ok.expect("session still usable").batch.num_rows(), 2);
    }
    drop(client);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
}

/// `LIMIT 0` is legal and returns the empty-but-schema'd result on both
/// engines (regression for the negative-limit audit).
#[test]
fn limit_zero_returns_empty_schema_on_both_engines() {
    let db = shared_db(80);
    let q = "SELECT user_id, value FROM events LIMIT 0";
    let local = db.query(q).unwrap();
    assert_eq!(local.num_rows(), 0);
    assert_eq!(local.num_columns(), 2);
    let session = test_session(2);
    let run = session.sql_distributed(&db, q).unwrap();
    assert_eq!(run.batch, local);

    // And over the wire: one Data block carrying the schema, zero rows.
    let server = Server::new(session, db, ServerConfig::default());
    let (stream, server_thread) = server.connect();
    let mut client = Client::connect(stream, "limit0").unwrap();
    let r = client.query(q).unwrap();
    assert_eq!(r.chunks, 1);
    assert_eq!(r.batch, local);
    drop(client);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
}

/// Raw garbage instead of a handshake: the server answers with a
/// protocol Exception (or just closes) and the handler exits — no panic,
/// no hang.
#[test]
fn garbage_bytes_tear_down_cleanly() {
    let db = shared_db(10);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (mut stream, server_thread) = server.connect();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // Whatever comes back must parse as an Exception (the server cannot
    // resync, so it reports and closes).
    match read_packet(&mut stream, DEFAULT_MAX_FRAME) {
        Ok(Packet::Exception { code: c, .. }) => assert_eq!(c, code::PROTOCOL),
        Ok(other) => panic!("expected Exception, got {other:?}"),
        Err(WireError::Closed) => {}
        Err(e) => panic!("unexpected {e}"),
    }
    assert_eq!(server_thread.join().unwrap(), SessionEnd::ProtocolError);
}

/// A frame that claims more bytes than ever arrive (truncated body, then
/// disconnect) ends the session without a panic or hang.
#[test]
fn truncated_frame_then_disconnect() {
    let db = shared_db(10);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (mut stream, server_thread) = server.connect();
    // Length prefix says 100 bytes; send only 3 and vanish.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[3, 1, 2]).unwrap();
    drop(stream);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::ProtocolError);
}

/// An oversized length prefix is rejected up front — the server must
/// not allocate or read the claimed 4 GiB.
#[test]
fn oversized_frame_rejected() {
    let db = shared_db(10);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (mut stream, server_thread) = server.connect();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match read_packet(&mut stream, DEFAULT_MAX_FRAME) {
        Ok(Packet::Exception {
            code: c, message, ..
        }) => {
            assert_eq!(c, code::PROTOCOL);
            assert!(message.contains("exceeds"), "{message}");
        }
        Ok(other) => panic!("expected Exception, got {other:?}"),
        Err(WireError::Closed) => {}
        Err(e) => panic!("unexpected {e}"),
    }
    assert_eq!(server_thread.join().unwrap(), SessionEnd::ProtocolError);
}

/// Handshake version mismatch gets a VERSION exception naming both
/// versions, then the connection closes.
#[test]
fn version_mismatch_rejected() {
    let db = shared_db(10);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (mut stream, server_thread) = server.connect();
    write_packet(
        &mut stream,
        &Packet::ClientHello {
            version: 99,
            capabilities: 0,
            client_name: "from-the-future".into(),
        },
    )
    .unwrap();
    match read_packet(&mut stream, DEFAULT_MAX_FRAME).unwrap() {
        Packet::Exception {
            code: c, message, ..
        } => {
            assert_eq!(c, code::VERSION);
            assert!(
                message.contains(&PROTOCOL_VERSION.to_string()) && message.contains("99"),
                "{message}"
            );
        }
        other => panic!("expected Exception, got {other:?}"),
    }
    assert_eq!(server_thread.join().unwrap(), SessionEnd::ProtocolError);
}

/// Sending a Query before the handshake is a protocol error.
#[test]
fn query_before_handshake_rejected() {
    let db = shared_db(10);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let (mut stream, server_thread) = server.connect();
    write_packet(
        &mut stream,
        &Packet::Query {
            id: 1,
            sql: "SELECT 1".into(),
        },
    )
    .unwrap();
    match read_packet(&mut stream, DEFAULT_MAX_FRAME).unwrap() {
        Packet::Exception {
            code: c, message, ..
        } => {
            assert_eq!(c, code::PROTOCOL);
            assert!(message.contains("ClientHello"), "{message}");
        }
        other => panic!("expected Exception, got {other:?}"),
    }
    assert_eq!(server_thread.join().unwrap(), SessionEnd::ProtocolError);
}

/// A stream whose write side fails after a byte budget: deterministic
/// stand-in for a client that vanishes mid-result.
struct DropAfter<S> {
    inner: S,
    write_budget: usize,
}

impl<S: Read> Read for DropAfter<S> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(out)
    }
}

impl<S: Write> Write for DropAfter<S> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.write_budget < data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer vanished mid-stream",
            ));
        }
        self.write_budget -= data.len();
        self.inner.write(data)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Disconnect mid-result: the server hits a broken pipe while streaming
/// Data blocks, discards the query, and tears down as Disconnected —
/// never a panic, and never an EndOfStream after a failed write.
#[test]
fn disconnect_mid_stream_is_clean() {
    let db = shared_db(300);
    let server = Server::new(
        test_session(2),
        db,
        ServerConfig {
            block_rows: 16,
            ..ServerConfig::default()
        },
    );
    let (client_end, server_end) = skadi::wire::duplex();
    // Allow the handshake and a few chunks through, then break the pipe.
    let flaky = DropAfter {
        inner: server_end,
        write_budget: 4096,
    };
    let server2 = Arc::clone(&server);
    let handler = thread::spawn(move || server2.handle(flaky));

    let mut client = Client::connect(client_end, "doomed").unwrap();
    let err = client
        .query("SELECT user_id, kind, value FROM events ORDER BY value DESC")
        .expect_err("stream must not complete");
    // The client sees a truncated stream (connection closed mid-result),
    // never a partial result passed off as complete.
    assert!(
        !matches!(err, WireError::Server { .. }),
        "got server exception instead of cut stream: {err}"
    );
    assert_eq!(handler.join().expect("no panic"), SessionEnd::Disconnected);
}

/// Client drops right after sending a query (the racy end-to-end
/// variant): any teardown except ProtocolError is acceptable, and the
/// handler must neither panic nor hang. The bytes sent are all
/// well-formed — only the timing of the disconnect varies.
#[test]
fn drop_after_query_never_panics() {
    let db = shared_db(200);
    let server = Server::new(test_session(2), db, ServerConfig::default());
    for round in 0..8 {
        let (mut stream, server_thread) = server.connect();
        write_packet(
            &mut stream,
            &Packet::ClientHello {
                version: PROTOCOL_VERSION,
                capabilities: CAP_PROGRESS,
                client_name: format!("ghost-{round}"),
            },
        )
        .unwrap();
        match read_packet(&mut stream, DEFAULT_MAX_FRAME).unwrap() {
            Packet::ServerHello { .. } => {}
            other => panic!("expected ServerHello, got {other:?}"),
        }
        write_packet(
            &mut stream,
            &Packet::Query {
                id: 1,
                sql: "SELECT user_id, value FROM events".into(),
            },
        )
        .unwrap();
        drop(stream);
        let end = server_thread.join().expect("no panic");
        assert_ne!(end, SessionEnd::ProtocolError, "well-formed bytes only");
    }
}

/// Admission control: with the gate held shut, a query is rejected
/// immediately with an ADMISSION exception; after release it succeeds.
#[test]
fn admission_full_rejects_then_recovers() {
    let db = shared_db(60);
    let server = Server::new(
        test_session(2),
        db,
        ServerConfig {
            max_concurrent: 1,
            max_queued: 0,
            ..ServerConfig::default()
        },
    );
    let (stream, server_thread) = server.connect();
    let mut client = Client::connect(stream, "queued-out").unwrap();

    let slot = server
        .admission()
        .try_acquire()
        .expect("grab the only slot");
    match client.query("SELECT user_id FROM events LIMIT 3") {
        Err(WireError::Server { code: c, message }) => {
            assert_eq!(c, code::ADMISSION);
            assert!(message.contains("admission queue full"), "{message}");
        }
        other => panic!("expected admission rejection, got {other:?}"),
    }
    drop(slot);
    let r = client.query("SELECT user_id FROM events LIMIT 3").unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    drop(client);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
}

/// The same protocol over real TCP: serve on an ephemeral port, run a
/// client session, assert byte-identity — the transport is swappable.
#[test]
fn tcp_round_trip() {
    let db = shared_db(120);
    let expected = ipc::encode(&db.query(query_set()[0]).unwrap()).to_vec();
    let server = Server::new(test_session(2), db, ServerConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        server.handle(conn)
    });

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut client = Client::connect(stream, "tcp-client").unwrap();
    let r = client.query(query_set()[0]).unwrap();
    assert_eq!(ipc::encode(&r.batch).to_vec(), expected);
    drop(client);
    assert_eq!(acceptor.join().unwrap(), SessionEnd::CleanClose);
}

/// Compression is opt-in per connection. A legacy client that never
/// advertises CAP_COMPRESSION must receive plain IPC frames only, while
/// a modern client on the same server may receive compressed payloads —
/// and both decode to the identical batch.
#[test]
fn compression_is_negotiated_per_connection() {
    use skadi::arrow::compression;
    use skadi::wire::packet::CAP_COMPRESSION;

    // A wide repetitive result so compression actually engages.
    let db = shared_db(600);
    let q = "SELECT kind, user_id, value FROM events ORDER BY value DESC";
    let plain_encoded = ipc::encode(&db.query(q).unwrap());
    let server = Server::new(test_session(2), db, ServerConfig::default());

    // Legacy client: no compression capability. Raw-frame proof comes
    // from the reported payload byte count matching the plain encoding.
    let (stream, server_thread) = server.connect();
    let mut legacy =
        Client::connect_with(stream, "legacy", CAP_PROGRESS, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(legacy.capabilities & CAP_COMPRESSION, 0);
    let r_legacy = legacy.query(q).unwrap();
    drop(legacy);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);

    // Modern client: default capabilities include compression.
    let (stream, server_thread) = server.connect();
    let mut modern = Client::connect(stream, "modern").unwrap();
    assert_ne!(modern.capabilities & CAP_COMPRESSION, 0);
    let r_modern = modern.query(q).unwrap();
    drop(modern);
    assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);

    // Identical logical results either way.
    assert_eq!(r_legacy.batch, r_modern.batch);
    assert_eq!(
        ipc::encode(&r_legacy.batch).to_vec(),
        plain_encoded.to_vec()
    );

    // The payload really was compressible (sanity for the assertion
    // below) and the negotiated session shipped strictly fewer bytes.
    assert!(
        compression::maybe_compress(&plain_encoded).len() < plain_encoded.len(),
        "test payload should be compressible"
    );
    assert!(
        r_modern.payload_bytes < r_legacy.payload_bytes,
        "compressed session sent {} bytes, plain session {}",
        r_modern.payload_bytes,
        r_legacy.payload_bytes
    );
}

/// NaN ordering over the wire: `total_cmp` places NaN after +inf in an
/// ascending sort, deterministically, and the wire answer matches the
/// in-process engine bit for bit — on both the local and distributed
/// execution paths.
#[test]
fn nan_ordering_is_deterministic_over_the_wire() {
    fn nan_db() -> MemDb {
        let m = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("x", DataType::Float64, false),
            ]),
            vec![
                Array::from_i64(vec![1, 2, 3, 4, 5, 6]),
                Array::from_f64(vec![
                    f64::NAN,
                    1.5,
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                    -0.0,
                    f64::NAN,
                ]),
            ],
        )
        .unwrap();
        MemDb::new().register("m", m)
    }
    let q = "SELECT x FROM m ORDER BY x";
    let expected = nan_db().query(q).unwrap();
    // total_cmp order: -inf < -0.0 < 1.5 < +inf < NaN.
    match expected.column(0) {
        Array::Float64(xs) => {
            let got: Vec<f64> = (0..xs.len()).map(|i| xs.get(i).unwrap()).collect();
            assert_eq!(got[0], f64::NEG_INFINITY);
            assert_eq!(got[1].to_bits(), (-0.0f64).to_bits());
            assert_eq!(got[2], 1.5);
            assert_eq!(got[3], f64::INFINITY);
            assert!(got[4].is_nan() && got[5].is_nan(), "NaNs sort last");
        }
        other => panic!("unexpected x column {other:?}"),
    }

    for distributed in [false, true] {
        let server = Server::new(
            test_session(4),
            nan_db(),
            ServerConfig {
                distributed,
                ..ServerConfig::default()
            },
        );
        let (stream, server_thread) = server.connect();
        let mut client = Client::connect(stream, "nan-client").unwrap();
        let r = client.query(q).unwrap();
        assert_eq!(
            ipc::encode(&r.batch).to_vec(),
            ipc::encode(&expected).to_vec(),
            "distributed={distributed}"
        );
        drop(client);
        assert_eq!(server_thread.join().unwrap(), SessionEnd::CleanClose);
    }
}

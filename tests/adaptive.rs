//! Adaptive execution equivalence: `SessionBuilder::adaptive(true)` may
//! re-shard keyed consumers and swap join build sides, but the collected
//! result must stay **byte-identical** to the static plan — under every
//! placement policy, at every parallelism, and under chaos kill/recover
//! in every fault-tolerance mode. The local `MemDb` engine is the single
//! source of truth all runs are pinned against.

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::ipc;
use skadi::arrow::schema::{Field, Schema};
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;
use skadi::runtime::config::FtMode;
use skadi::store::ec::EcConfig;
use skadi_dcsim::rng::DetRng;
use skadi_dcsim::time::SimTime;

/// Hot-key-skewed fact table: only three distinct join/group keys, so a
/// shuffle lowered to 4 or 8 partitions leaves most buckets empty — the
/// exact shape the adaptive pilot exists to catch.
fn facts(n: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let keys: Vec<i64> = (0..n).map(|_| (rng.below(100) % 3) as i64).collect();
    let vals: Vec<Option<f64>> = (0..n)
        .map(|_| (!rng.chance(0.05)).then(|| rng.unit() * 40.0 - 10.0))
        .collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, true),
        ]),
        vec![Array::from_i64(keys), Array::from_opt_f64(vals)],
    )
    .unwrap()
}

/// Tiny dimension table — the *left* side of the join below, so the
/// nominal build side (the fact table) dwarfs the probe side and the
/// adaptive join must swap.
fn tiny() -> RecordBatch {
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("label", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(vec![0, 1, 2, 0, 1, 2, 0, 1, 2]),
            Array::from_utf8(&["a0", "b1", "c2", "d0", "e1", "f2", "g0", "h1", "i2"]),
        ],
    )
    .unwrap()
}

fn db() -> MemDb {
    MemDb::new()
        .register("facts", facts(3_000, 7))
        .register("tiny", tiny())
}

/// Joins a 9-row probe side against a 3000-row build side (swap bait)
/// and aggregates on a 3-value key (coalesce bait).
const JOIN_SQL: &str =
    "SELECT label, sum(v) AS s, count(*) AS n FROM tiny JOIN facts ON k = k GROUP BY label ORDER BY s";
const AGG_SQL: &str = "SELECT k, sum(v) AS s, count(*) AS n FROM facts GROUP BY k";

fn session(p: u32, policy: PlacementPolicy, adaptive: bool) -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .parallelism(p)
        .adaptive(adaptive)
        .runtime(RuntimeConfig::skadi_gen2().with_placement(policy))
        .build()
}

#[test]
fn adaptive_is_byte_identical_under_every_policy_and_parallelism() {
    let db = db();
    for sql in [JOIN_SQL, AGG_SQL] {
        let local = ipc::encode(&db.query(sql).unwrap()).to_vec();
        for policy in PlacementPolicy::ALL {
            for p in [1u32, 2, 4, 8] {
                let fixed = session(p, policy, false).sql_distributed(&db, sql).unwrap();
                let adaptive = session(p, policy, true).sql_distributed(&db, sql).unwrap();
                let ctx = format!("{policy} x{p} {sql:?}");
                assert_eq!(
                    ipc::encode(&fixed.batch).to_vec(),
                    local,
                    "{ctx}: static diverged from MemDb"
                );
                assert_eq!(
                    ipc::encode(&adaptive.batch).to_vec(),
                    local,
                    "{ctx}: adaptive diverged from MemDb"
                );
                assert!(fixed.replans.is_empty(), "{ctx}: static run re-planned");
                assert_eq!(
                    fixed.data_plane.build_swaps(),
                    0,
                    "{ctx}: static run swapped a build side"
                );
            }
        }
    }
}

#[test]
fn adaptive_actually_replans_and_swaps_on_skew() {
    let db = db();
    let run = session(8, PlacementPolicy::DataCentric, true)
        .sql_distributed(&db, JOIN_SQL)
        .unwrap();
    assert!(
        !run.replans.is_empty(),
        "3 distinct keys into 8 shards must coalesce"
    );
    for r in &run.replans {
        assert!(
            r.to_shards < r.from_shards && r.to_shards >= 1,
            "replan must shrink: {r:?}"
        );
    }
    assert!(
        run.data_plane.build_swaps() > 0,
        "3000-row build vs 9-row probe must swap"
    );
    // Re-planning shrinks the schedule: fewer tasks than the static plan.
    let fixed = session(8, PlacementPolicy::DataCentric, false)
        .sql_distributed(&db, JOIN_SQL)
        .unwrap();
    assert!(
        run.report.physical_vertices < fixed.report.physical_vertices,
        "coalesced plan should have fewer tasks ({} vs {})",
        run.report.physical_vertices,
        fixed.report.physical_vertices,
    );
}

#[test]
fn adaptive_is_deterministic() {
    let db = db();
    let a = session(8, PlacementPolicy::LoadAware, true)
        .sql_distributed(&db, JOIN_SQL)
        .unwrap();
    let b = session(8, PlacementPolicy::LoadAware, true)
        .sql_distributed(&db, JOIN_SQL)
        .unwrap();
    assert_eq!(
        ipc::encode(&a.batch).to_vec(),
        ipc::encode(&b.batch).to_vec()
    );
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.data_plane.build_swaps(), b.data_plane.build_swaps());
    assert_eq!(a.report.stats.makespan, b.report.stats.makespan);
}

#[test]
fn adaptive_is_byte_identical_under_chaos_in_every_ft_mode() {
    let db = db();
    let topo = presets::small_disagg_cluster();
    let servers = topo.servers();
    let mut plan = FailurePlan::none();
    for (i, &node) in servers.iter().take(2).enumerate() {
        plan = plan.kill_and_recover(
            node,
            SimTime::from_micros(2 + 3 * i as u64),
            SimTime::from_millis(6 + i as u64),
        );
    }
    let local = ipc::encode(&db.query(JOIN_SQL).unwrap()).to_vec();
    for ft in [
        FtMode::Lineage,
        FtMode::Replication(2),
        FtMode::ErasureCoding(EcConfig::RS_4_2),
    ] {
        for adaptive in [false, true] {
            let session = Session::builder()
                .topology(topo.clone())
                .parallelism(4)
                .adaptive(adaptive)
                .runtime(RuntimeConfig::skadi_gen2().with_ft(ft))
                .build();
            let run = session
                .sql_distributed_with_failures(&db, JOIN_SQL, &plan)
                .unwrap();
            assert_eq!(
                ipc::encode(&run.batch).to_vec(),
                local,
                "{ft:?} adaptive={adaptive}: chaos run diverged from MemDb"
            );
        }
    }
}

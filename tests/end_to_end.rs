//! Cross-crate integration tests: declarations in, measured execution
//! out, across every tier of the stack.

use skadi::pipeline::fig1_pipeline;
use skadi::prelude::*;

fn session() -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .build()
}

#[test]
fn sql_through_the_whole_stack() {
    let report = session()
        .sql(
            "SELECT country, sum(value) AS total FROM events \
             JOIN users ON user_id = user_id \
             WHERE value > 0.5 GROUP BY country ORDER BY total DESC LIMIT 10",
        )
        .expect("query runs");
    assert!(report.stats.finished > 0);
    assert_eq!(report.stats.abandoned, 0);
    // A join + aggregate + sort query must shuffle.
    assert!(report.physical_edges > report.physical_vertices);
}

#[test]
fn all_four_frontends_share_one_runtime() {
    let s = session();
    let sql = s.sql("SELECT user_id FROM events").unwrap();
    let mr = s
        .mapreduce(&MapReduceJob::new("logs", 1 << 18, 16 << 20, "key"))
        .unwrap();
    let ml = s
        .train(&TrainingPipeline::new("data", 1 << 12, 1 << 20, 1 << 18).steps(2))
        .unwrap();
    let gr = s
        .vertex_program(&VertexProgram::pagerank("g", 10_000, 100_000, 3))
        .unwrap();
    for r in [&sql, &mr, &ml, &gr] {
        assert!(r.stats.finished > 0, "{}", r.name);
        assert_eq!(r.stats.abandoned, 0, "{}", r.name);
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let a = session()
        .sql("SELECT kind, sum(value) FROM events GROUP BY kind")
        .unwrap();
    let b = session()
        .sql("SELECT kind, sum(value) FROM events GROUP BY kind")
        .unwrap();
    assert_eq!(a.stats.makespan, b.stats.makespan);
    assert_eq!(a.stats.net, b.stats.net);
    assert_eq!(a.stats.cost_units, b.stats.cost_units);
    assert_eq!(a.stats.stall_total, b.stats.stall_total);
}

#[test]
fn figure1_ordering_holds() {
    let run = |cfg: RuntimeConfig| {
        let s = Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .runtime(cfg)
            .build();
        fig1_pipeline(&s, 1).unwrap().run().unwrap().stats
    };
    let serverful = run(RuntimeConfig::serverful());
    let stateless = run(RuntimeConfig::stateless_serverless());
    let skadi = run(RuntimeConfig::skadi_gen2());

    // The paper's Figure-1 ordering: Skadi avoids durable bounces
    // entirely, stateless pays them on every edge.
    assert_eq!(skadi.durable_trips, 0);
    assert!(serverful.durable_trips > 0);
    assert!(stateless.durable_trips > serverful.durable_trips);
    assert!(skadi.makespan < stateless.makespan);
    // Pay-as-you-go beats reservation on cost.
    assert!(skadi.cost_units < serverful.cost_units);
}

#[test]
fn generation_ordering_holds_for_short_ops() {
    use skadi::runtime::task::TaskSpec;
    use skadi::runtime::{Cluster, Job, TaskId};
    let topo = presets::device_rack();
    let mut tasks = vec![TaskSpec::new(0, 20.0, 4 << 10).on(Backend::Gpu)];
    for i in 1..24 {
        tasks.push(
            TaskSpec::new(i, 20.0, 4 << 10)
                .after(TaskId(i - 1), 4 << 10)
                .on(Backend::Gpu),
        );
    }
    let job = Job::new("short", tasks).unwrap();
    let mut g1 = Cluster::new(&topo, RuntimeConfig::skadi_gen1());
    let mut g2 = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let s1 = g1.run(&job).unwrap();
    let s2 = g2.run(&job).unwrap();
    assert!(s2.makespan < s1.makespan);
}

#[test]
fn parallelism_speeds_up_wide_queries_until_overhead_wins() {
    let run = |p: u32| {
        Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .parallelism(p)
            .build()
            .sql("SELECT kind, sum(value) FROM events WHERE value > 0.1 GROUP BY kind")
            .unwrap()
            .stats
            .makespan
    };
    let p1 = run(1);
    let p4 = run(4);
    assert!(p4 < p1, "4-way {} vs 1-way {}", p4, p1);
}

#[test]
fn failure_during_pipeline_recovers_via_lineage() {
    use skadi::dcsim::time::SimTime;
    let topo = presets::small_disagg_cluster();
    let victim = topo.servers()[2];
    let s = Session::builder()
        .topology(topo)
        .catalog(Catalog::demo())
        .build();
    let failures = FailurePlan::none().kill(victim, SimTime::from_millis(5));
    let report = fig1_pipeline(&s, 1)
        .unwrap()
        .run_with_failures(&failures)
        .unwrap();
    assert_eq!(report.stats.abandoned, 0, "lineage must recover everything");
    assert!(report.stats.finished > 0);
}

#[test]
fn ir_fusion_survives_the_full_path() {
    // A fused query still returns the same *structure* of results (we
    // check compiled shape and clean execution with and without fusion).
    let q = "SELECT user_id FROM events WHERE value > 0.5";
    let fused = session().sql(q).unwrap();
    let unfused = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .without_optimizer()
        .build()
        .sql(q)
        .unwrap();
    assert!(fused.optimize.fused > 0);
    assert!(fused.physical_vertices < unfused.physical_vertices);
    assert_eq!(fused.stats.abandoned, 0);
    assert_eq!(unfused.stats.abandoned, 0);
}

#[test]
fn quickstart_trace_exports_valid_chrome_json() {
    use skadi::dcsim::span::{json_is_wellformed, Category};
    let s = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(RuntimeConfig::skadi_gen2().with_tracing(true))
        .build();
    let report = fig1_pipeline(&s, 1).unwrap().run().unwrap();
    let trace = &report.stats.trace;
    trace.validate().expect("span tree is well-formed");
    assert!(report.has_trace());
    assert!(
        trace.len() > 100,
        "quickstart pipeline should emit >100 spans, got {}",
        trace.len()
    );
    // The trace covers the full task lifecycle plus the data plane.
    assert!(trace.count_category(Category::Task) > 0);
    assert!(trace.count_category(Category::Run) > 0);
    assert!(trace.count_category(Category::Wait) > 0);
    assert!(trace.count_category(Category::Resolve) > 0);
    assert!(trace.count_category(Category::TierAccess) > 0);
    assert!(trace.count_category(Category::Control) > 0);
    assert!(trace.count_category(Category::Data) > 0);
    // The export is parseable JSON with one event per span (plus
    // metadata records naming processes/threads).
    let json = report.chrome_trace();
    assert!(json_is_wellformed(&json), "chrome export must parse");
    assert!(json.matches("\"ph\":\"X\"").count() == trace.len());
    // And the critical-path summary names its stall contributors.
    let summary = report.critical_path_summary(5);
    assert!(summary.contains("critical path:"), "{summary}");
    assert!(summary.contains("stall contributors"), "{summary}");
}

#[test]
fn gen1_pays_more_control_spans_per_op_than_gen2() {
    use skadi::dcsim::span::Category;
    let run = |cfg: RuntimeConfig| {
        let s = Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .runtime(cfg.with_tracing(true))
            .build();
        fig1_pipeline(&s, 1).unwrap().run().unwrap()
    };
    let g1 = run(RuntimeConfig::skadi_gen1());
    let g2 = run(RuntimeConfig::skadi_gen2());
    g1.stats.trace.validate().unwrap();
    g2.stats.trace.validate().unwrap();
    // Same job, same resolved edge count: pull pays a multi-message
    // round trip per edge, push a single ownership update.
    let per_op = |r: &JobReport| {
        r.stats.trace.count_category(Category::Control) as f64
            / r.stats.trace.count_category(Category::Resolve).max(1) as f64
    };
    assert!(
        per_op(&g1) > per_op(&g2),
        "gen1 {:.2} control spans/op should exceed gen2 {:.2}",
        per_op(&g1),
        per_op(&g2)
    );
}

#[test]
fn gang_job_outputs_survive_kill_and_recover() {
    use skadi::dcsim::time::SimTime;
    use skadi::runtime::task::{GangId, TaskSpec};
    use skadi::runtime::{Cluster, Job, TaskId};

    // A source feeding a 4-member gang feeding a sink: collective start
    // plus failure mid-gang exercises the release/restart path.
    let mut tasks = vec![TaskSpec::new(0, 500.0, 1 << 14)];
    for i in 1..=4u64 {
        tasks.push(
            TaskSpec::new(i, 4000.0, 1 << 12)
                .after(TaskId(0), 1 << 12)
                .in_gang(GangId(1)),
        );
    }
    let mut sink = TaskSpec::new(5, 500.0, 1 << 10);
    for i in 1..=4u64 {
        sink = sink.after(TaskId(i), 1 << 10);
    }
    tasks.push(sink);
    let job = Job::new("gang-chaos", tasks).unwrap();

    let topo = presets::small_disagg_cluster();
    for ft in [FtMode::Lineage, FtMode::Replication(2)] {
        let cfg = RuntimeConfig::skadi_gen2()
            .with_ft(ft)
            .with_gang(true)
            .with_debug_invariants(true);
        let mut calm = Cluster::new(&topo, cfg.clone());
        calm.run(&job).unwrap();

        // Kill a node while the gang is in flight, then bring it back.
        let victim = topo.servers()[1];
        let plan = FailurePlan::none().kill_and_recover(
            victim,
            SimTime::from_millis(2),
            SimTime::from_millis(6),
        );
        let mut stormy = Cluster::new(&topo, cfg);
        stormy
            .run_with_failures(&job, &plan)
            .unwrap_or_else(|e| panic!("{ft:?}: gang chaos run failed: {e}"));
        assert_eq!(
            calm.output_manifest(),
            stormy.output_manifest(),
            "{ft:?}: gang outputs diverged after kill+recover"
        );
    }
}

//! Query-profile consistency, determinism, skew detection, and the
//! Prometheus metrics surface.
//!
//! The profiling subsystem promises four things, each pinned here:
//!
//! 1. **Conservation** — rows recorded flowing over every physical edge
//!    reconcile exactly with the producer's `rows_out` and the
//!    consumer's `rows_in` (no rows invented or dropped by the
//!    bookkeeping), and the per-shard `output_bytes` in the profile sum
//!    to the run's `JobStats::measured_output_bytes`.
//! 2. **Determinism** — the JSON profile artifact and the untimed
//!    rendering are byte-identical across same-seed runs (wall times are
//!    excluded from both).
//! 3. **Goldens** — `EXPLAIN ANALYZE` output for three representative
//!    queries at parallelism 1 and 4 is pinned character-for-character.
//! 4. **Skew** — an artificially hot key at parallelism 4 raises the
//!    `[SKEW]` flag on the shuffled consumer.

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::schema::{Field, Schema};
use skadi::dcsim::trace::validate_prometheus;
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;

/// Small fixed tables: readable goldens, duplicate join keys, an
/// unmatched customer.
fn golden_db() -> MemDb {
    let orders = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("order_id", DataType::Int64, false),
            Field::new("cust", DataType::Int64, false),
            Field::new("amount", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(vec![1, 2, 3, 4, 5, 6, 7, 8]),
            Array::from_i64(vec![10, 20, 10, 30, 20, 10, 40, 20]),
            Array::from_f64(vec![5.0, 2.5, 9.0, 1.0, 4.0, 7.0, 3.0, 6.0]),
            Array::from_utf8(&["a", "b", "a", "b", "a", "b", "a", "b"]),
        ],
    )
    .unwrap();
    let custs = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("cust", DataType::Int64, false),
            Field::new("name", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(vec![10, 20, 30, 40, 50]),
            Array::from_utf8(&["alice", "bob", "carol", "dave", "erin"]),
        ],
    )
    .unwrap();
    MemDb::new()
        .register("orders", orders)
        .register("custs", custs)
}

fn session(parallelism: u32) -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .parallelism(parallelism)
        .runtime(RuntimeConfig::skadi_gen2())
        .build()
}

const Q_GROUP: &str = "SELECT tag, sum(amount) AS s, count(*) AS n FROM orders GROUP BY tag";
const Q_JOIN_GROUP: &str =
    "SELECT name, sum(amount) AS s FROM orders JOIN custs ON cust = cust GROUP BY name";
const Q_FILTER_TOP: &str =
    "SELECT order_id, amount FROM orders WHERE amount > 2 ORDER BY amount DESC LIMIT 3";

/// Rows are conserved across every recorded physical edge: a consumer's
/// `rows_in` is exactly the sum of rows delivered to it, and each
/// producer's `rows_out` is either partitioned across its consumers
/// (shuffle/scatter: deliveries sum to `rows_out`) or replicated to each
/// (pipeline/gather/broadcast: every delivery equals `rows_out`).
#[test]
fn edge_rows_reconcile_with_operator_counts() {
    let db = golden_db();
    for parallelism in [1u32, 2, 4] {
        for q in [Q_GROUP, Q_JOIN_GROUP, Q_FILTER_TOP] {
            let run = session(parallelism).sql_distributed(&db, q).unwrap();
            let dp = &run.data_plane;
            // Last execution per task wins (matches the profile).
            let mut by_task = std::collections::BTreeMap::new();
            for t in &dp.timings {
                by_task.insert(t.task.0, t);
            }
            for (task, t) in &by_task {
                let delivered: usize = dp
                    .edge_rows
                    .iter()
                    .filter(|((_, to), _)| to == task)
                    .map(|(_, rows)| rows)
                    .sum();
                assert_eq!(
                    t.rows_in, delivered,
                    "{q:?} x{parallelism}: task {task} rows_in vs delivered"
                );
            }
            for (producer, t) in &by_task {
                let out: Vec<usize> = dp
                    .edge_rows
                    .iter()
                    .filter(|((from, _), _)| from == producer)
                    .map(|(_, &rows)| rows)
                    .collect();
                if out.is_empty() {
                    continue; // the sink
                }
                let partitioned = out.iter().sum::<usize>() == t.rows_out;
                let replicated = out.iter().all(|&r| r == t.rows_out);
                assert!(
                    partitioned || replicated,
                    "{q:?} x{parallelism}: task {producer} rows_out={} vs deliveries {out:?}",
                    t.rows_out
                );
            }
        }
    }
}

/// The profile's per-shard `output_bytes` are the same measurements the
/// runtime prices: summed, they equal `JobStats::measured_output_bytes`.
#[test]
fn profile_bytes_match_job_stats() {
    let db = golden_db();
    for parallelism in [1u32, 4] {
        let run = session(parallelism)
            .sql_distributed(&db, Q_JOIN_GROUP)
            .unwrap();
        let profile = run.report.profile.as_ref().expect("distributed profile");
        let profile_bytes: u64 = profile
            .ops
            .iter()
            .flat_map(|o| o.shards.iter().map(|s| s.output_bytes))
            .sum();
        let stats_bytes: u64 = run.report.stats.measured_output_bytes.values().sum();
        assert_eq!(profile_bytes, stats_bytes, "x{parallelism}");
        assert!(stats_bytes > 0);
    }
}

/// Same-seed runs produce byte-identical JSON artifacts and untimed
/// renderings — distributed and local.
#[test]
fn profile_artifacts_are_deterministic() {
    let one = session(4)
        .sql_distributed(&golden_db(), Q_JOIN_GROUP)
        .unwrap();
    let two = session(4)
        .sql_distributed(&golden_db(), Q_JOIN_GROUP)
        .unwrap();
    let (p1, p2) = (one.report.profile.unwrap(), two.report.profile.unwrap());
    assert_eq!(p1.to_json(), p2.to_json());
    assert_eq!(p1.render(false), p2.render(false));

    let (_, l1) = golden_db().query_profiled(Q_JOIN_GROUP).unwrap();
    let (_, l2) = golden_db().query_profiled(Q_JOIN_GROUP).unwrap();
    assert_eq!(l1.to_json(), l2.to_json());
    assert_eq!(l1.render(false), l2.render(false));
}

/// In the local engine's linear profile, every operator's `rows_in`
/// equals its parent's `rows_out` (the chain invariant the distributed
/// edge test pins graph-wide). Joins are the exception: their `rows_in`
/// counts both sides, but only the left side is their chain parent, so
/// the invariant weakens to `>=` there.
#[test]
fn local_chain_conserves_rows() {
    let db = golden_db();
    for q in [Q_GROUP, Q_JOIN_GROUP, Q_FILTER_TOP] {
        let (_, profile) = db.query_profiled(q).unwrap();
        for op in &profile.ops {
            for &(parent, _) in &op.inputs {
                let p = profile.op(parent).expect("parent exists");
                if op.op.contains("join") {
                    assert!(
                        op.total_rows_in() >= p.total_rows_out(),
                        "{q:?}: join #{} rows_in {} < parent #{parent} rows_out {}",
                        op.op_id,
                        op.total_rows_in(),
                        p.total_rows_out()
                    );
                } else {
                    assert_eq!(
                        p.total_rows_out(),
                        op.total_rows_in(),
                        "{q:?}: op #{} rows_in vs parent #{parent} rows_out",
                        op.op_id
                    );
                }
            }
        }
    }
}

fn explain(parallelism: u32, q: &str) -> String {
    let run = session(parallelism)
        .sql_distributed(&golden_db(), q)
        .unwrap();
    run.report.profile.unwrap().render(false)
}

/// `EXPLAIN ANALYZE` golden output: three representative queries, each at
/// parallelism 1 and 4, untimed rendering (the deterministic portion).
#[test]
fn explain_analyze_goldens() {
    let cases: [(&str, u32, &str); 6] = [
        (Q_GROUP, 1, GOLDEN_GROUP_X1),
        (Q_GROUP, 4, GOLDEN_GROUP_X4),
        (Q_JOIN_GROUP, 1, GOLDEN_JOIN_GROUP_X1),
        (Q_JOIN_GROUP, 4, GOLDEN_JOIN_GROUP_X4),
        (Q_FILTER_TOP, 1, GOLDEN_FILTER_TOP_X1),
        (Q_FILTER_TOP, 4, GOLDEN_FILTER_TOP_X4),
    ];
    for (q, parallelism, want) in cases {
        let got = explain(parallelism, q);
        assert_eq!(got, want, "golden mismatch for {q:?} x{parallelism}");
    }
}

/// The timed `EXPLAIN ANALYZE` entry points run end to end and include
/// wall-time columns (not golden-able: wall times are real).
#[test]
fn timed_explain_analyze_runs() {
    let db = golden_db();
    let text = session(4)
        .explain_analyze(&db, &format!("EXPLAIN ANALYZE {Q_JOIN_GROUP}"))
        .unwrap();
    assert!(text.contains("rel.join"), "{text}");
    assert!(text.contains("time["), "{text}");
    let local = db
        .explain_analyze(&format!("EXPLAIN ANALYZE {Q_GROUP}"))
        .unwrap();
    assert!(local.contains("rel.aggregate"), "{local}");
    assert!(local.contains("time["), "{local}");
}

/// An artificially hot grouping key at parallelism 4: one shuffle
/// partition receives nearly every row, so the shuffled consumer's
/// `rows_in` spread crosses the skew threshold and the profile flags it.
#[test]
fn skewed_key_distribution_is_flagged() {
    let n = 4000usize;
    // 90% of rows share key 0; the rest spread over 400 keys.
    let keys: Vec<i64> = (0..n)
        .map(|i| if i % 10 == 0 { 1 + (i as i64 % 400) } else { 0 })
        .collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("key", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![Array::from_i64(keys), Array::from_f64(vals)],
    )
    .unwrap();
    let db = MemDb::new().register("events", events);
    let run = session(4)
        .sql_distributed(&db, "SELECT key, sum(val) AS s FROM events GROUP BY key")
        .unwrap();
    let profile = run.report.profile.unwrap();
    let skewed = profile.skewed_ops();
    assert!(
        skewed.iter().any(|o| o.op.contains("aggregate")),
        "expected the aggregate flagged, got {:?}",
        skewed.iter().map(|o| o.op.as_str()).collect::<Vec<_>>()
    );
    assert!(profile.render(false).contains("[SKEW]"));

    // A uniform key distribution must NOT raise the flag.
    let keys: Vec<i64> = (0..n).map(|i| i as i64 % 16).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("key", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![Array::from_i64(keys), Array::from_f64(vals)],
    )
    .unwrap();
    let db = MemDb::new().register("events", events);
    let run = session(4)
        .sql_distributed(&db, "SELECT key, sum(val) AS s FROM events GROUP BY key")
        .unwrap();
    let profile = run.report.profile.unwrap();
    assert!(
        profile.skewed_ops().is_empty(),
        "uniform keys flagged: {}",
        profile.render(false)
    );
}

/// A finished run's metrics export as valid Prometheus text exposition
/// and include the per-query latency histogram.
#[test]
fn prometheus_exposition_validates() {
    let run = session(4)
        .sql_distributed(&golden_db(), Q_JOIN_GROUP)
        .unwrap();
    let text = run.report.stats.metrics.to_prometheus();
    let series = validate_prometheus(&text).expect("valid exposition");
    assert!(series > 0);
    assert!(text.contains("query_latency"), "{text}");
    let h = run
        .report
        .stats
        .metrics
        .histogram("query_latency")
        .expect("latency histogram");
    assert_eq!(h.count(), 1, "one sample per job");
}

// ---------------------------------------------------------------------
// Goldens (regenerate by running the queries and pasting `render(false)`)
// ---------------------------------------------------------------------

const GOLDEN_GROUP_X1: &str = "\
EXPLAIN ANALYZE SELECT tag, sum(amount) AS s, count(*) AS n FROM orders GROUP BY tag (parallelism=1, skew>2x median)
#2 result shards=1 rows_in[min=2 med=2.0 max=2] rows_out[min=2 med=2.0 max=2] bytes=81
  #1 rel.aggregate shards=1 rows_in[min=8 med=8.0 max=8] rows_out[min=2 med=2.0 max=2] bytes=130 ht[slots=16 collisions=0] groups=2
    #0 orders shards=1 rows_in[min=0 med=0.0 max=0] rows_out[min=8 med=8.0 max=8] bytes=228
";

const GOLDEN_GROUP_X4: &str = "\
EXPLAIN ANALYZE SELECT tag, sum(amount) AS s, count(*) AS n FROM orders GROUP BY tag (parallelism=4, skew>2x median)
#2 result shards=1 rows_in[min=2 med=2.0 max=2] rows_out[min=2 med=2.0 max=2] bytes=81
  #1 rel.aggregate shards=4 rows_in[min=0 med=2.0 max=4] rows_out[min=0 med=0.5 max=1] bytes=336 ht[slots=64 collisions=0] groups=2
    #0 orders shards=4 rows_in[min=0 med=0.0 max=0] rows_out[min=2 med=2.0 max=2] bytes=535
";

const GOLDEN_JOIN_GROUP_X1: &str = "\
EXPLAIN ANALYZE SELECT name, sum(amount) AS s FROM orders JOIN custs ON cust = cust GROUP BY name (parallelism=1, skew>2x median)
#4 result shards=1 rows_in[min=4 med=4.0 max=4] rows_out[min=4 med=4.0 max=4] bytes=101
  #3 rel.aggregate shards=1 rows_in[min=8 med=8.0 max=8] rows_out[min=4 med=4.0 max=4] bytes=145 ht[slots=16 collisions=0] groups=4
    #2 rel.join shards=1 rows_in[min=13 med=13.0 max=13] rows_out[min=8 med=8.0 max=8] bytes=310 ht[slots=16 collisions=1]
      #0 orders shards=1 rows_in[min=0 med=0.0 max=0] rows_out[min=8 med=8.0 max=8] bytes=228
      #1 custs shards=1 rows_in[min=0 med=0.0 max=0] rows_out[min=5 med=5.0 max=5] bytes=154
";

const GOLDEN_JOIN_GROUP_X4: &str = "\
EXPLAIN ANALYZE SELECT name, sum(amount) AS s FROM orders JOIN custs ON cust = cust GROUP BY name (parallelism=4, skew>2x median)
#4 result shards=1 rows_in[min=4 med=4.0 max=4] rows_out[min=4 med=4.0 max=4] bytes=101
  #3 rel.aggregate shards=4 rows_in[min=0 med=2.0 max=4] rows_out[min=0 med=1.0 max=2] bytes=363 ht[slots=64 collisions=0] groups=4
    #2 rel.join shards=4 rows_in[min=0 med=1.5 max=10] rows_out[min=0 med=0.5 max=7] bytes=583 ht[slots=64 collisions=0] [SKEW]
      #0 orders shards=4 rows_in[min=0 med=0.0 max=0] rows_out[min=2 med=2.0 max=2] bytes=535
      #1 custs shards=4 rows_in[min=0 med=0.0 max=0] rows_out[min=1 med=1.0 max=2] bytes=304
";

const GOLDEN_FILTER_TOP_X1: &str = "\
EXPLAIN ANALYZE SELECT order_id, amount FROM orders WHERE amount > 2 ORDER BY amount DESC LIMIT 3 (parallelism=1, skew>2x median)
#4 result shards=1 rows_in[min=3 med=3.0 max=3] rows_out[min=3 med=3.0 max=3] bytes=70
  #3 rel.limit shards=1 rows_in[min=7 med=7.0 max=7] rows_out[min=3 med=3.0 max=3] bytes=101
    #2 rel.sort shards=1 rows_in[min=7 med=7.0 max=7] rows_out[min=7 med=7.0 max=7] bytes=143
      #1 kernel.fused [rel.filter+rel.project] shards=1 rows_in[min=8 med=8.0 max=8] rows_out[min=7 med=7.0 max=7] bytes=136 sel=0.8750
        #0 orders shards=1 rows_in[min=0 med=0.0 max=0] rows_out[min=8 med=8.0 max=8] bytes=228
";

const GOLDEN_FILTER_TOP_X4: &str = "\
EXPLAIN ANALYZE SELECT order_id, amount FROM orders WHERE amount > 2 ORDER BY amount DESC LIMIT 3 (parallelism=4, skew>2x median)
#4 result shards=1 rows_in[min=4 med=4.0 max=4] rows_out[min=3 med=3.0 max=3] bytes=70
  #3 rel.limit shards=4 rows_in[min=0 med=0.5 max=6] rows_out[min=0 med=0.5 max=3] bytes=268 [SKEW]
    #2 rel.sort shards=4 rows_in[min=0 med=0.5 max=6] rows_out[min=0 med=0.5 max=6] bytes=301 [SKEW]
      #1 kernel.fused [rel.filter+rel.project] shards=4 rows_in[min=2 med=2.0 max=2] rows_out[min=1 med=2.0 max=2] bytes=320 sel=0.8750
        #0 orders shards=4 rows_in[min=0 med=0.0 max=0] rows_out[min=2 med=2.0 max=2] bytes=535
";

//! Property-style chaos driver: ≥200 seeded random failure schedules
//! against seeded random jobs (plain tasks + a gang + an actor chain),
//! under each fault-tolerance mode, with the debug invariant checker on.
//!
//! Three suites:
//!
//! - **Survivable** ([`run_chaos`]): every kill recovers — including
//!   kills of the scheduler's own node, which force a control-plane
//!   election mid-job. The property is strict: the run must complete
//!   with *exactly* the outputs of the failure-free run. Any error —
//!   livelock, stall, invariant violation, abandoned task — or any
//!   manifest divergence is a recovery-path bug.
//! - **Permanent loss** ([`run_chaos_permanent`]): a random subset of
//!   nodes (possibly all of them) dies forever. The run must either
//!   still converge to the failure-free manifest or fail cleanly with
//!   `TaskAbandoned`/`Stalled` — never hang, never return a silently
//!   partial `Ok`.
//! - **Multi-job** ([`run_chaos_multi`]): 2-3 staggered jobs share the
//!   cluster while a survivable schedule fires; recovery must not leak
//!   state across job boundaries, so the combined manifest must match
//!   the failure-free run exactly.
//!
//! Replay one schedule with `skadi-cli chaos --seed N` (add
//! `--permanent` / `--multi` for the other suites) to debug.

use skadi_runtime::chaos::{run_chaos, run_chaos_multi, run_chaos_permanent};
use skadi_runtime::config::FtMode;
use skadi_runtime::error::RuntimeError;
use skadi_store::ec::EcConfig;

const SEEDS: u64 = 68; // x3 modes = 204 survivable schedules
const PERM_SEEDS: u64 = 32; // x3 modes = 96 permanent-loss schedules
const MULTI_SEEDS: u64 = 24; // x3 modes = 72 multi-job schedules

fn drive(ft: FtMode, label: &str) {
    let mut bad = Vec::new();
    for seed in 0..SEEDS {
        match run_chaos(seed, ft) {
            Ok(v) if v.equivalent() => {}
            Ok(v) => {
                let missing: Vec<String> = v
                    .baseline
                    .iter()
                    .zip(v.chaotic.iter())
                    .filter(|(b, c)| b != c)
                    .map(|(b, c)| format!("{:?} vs {:?}", b, c))
                    .collect();
                bad.push(format!(
                    "seed {seed}: manifests diverge ({} rows): {}",
                    missing.len(),
                    missing.join(", ")
                ));
            }
            Err(e) => bad.push(format!("seed {seed}: {e}")),
        }
    }
    assert!(
        bad.is_empty(),
        "{label}: {}/{SEEDS} chaos schedules failed:\n{}",
        bad.len(),
        bad.join("\n")
    );
}

/// Permanent-loss property: `Ok` must be byte-identical to the baseline;
/// `Err` must be the *clean* capacity-loss errors, nothing else. The
/// pre-failover runtime failed this suite by returning partial `Ok`s
/// (finished: 0) when every node died.
fn drive_permanent(ft: FtMode, label: &str) {
    let mut bad = Vec::new();
    for seed in 0..PERM_SEEDS {
        match run_chaos_permanent(seed, ft) {
            Ok(v) if v.equivalent() => {}
            Ok(v) => bad.push(format!(
                "seed {seed}: partial Ok — {} baseline rows vs {} chaotic, plan {:?}",
                v.baseline.len(),
                v.chaotic.len(),
                v.plan
            )),
            Err(RuntimeError::TaskAbandoned(_)) | Err(RuntimeError::Stalled { .. }) => {}
            Err(e) => bad.push(format!("seed {seed}: unclean failure: {e}")),
        }
    }
    assert!(
        bad.is_empty(),
        "{label}: {}/{PERM_SEEDS} permanent-loss schedules failed:\n{}",
        bad.len(),
        bad.join("\n")
    );
}

fn drive_multi(ft: FtMode, label: &str) {
    let mut bad = Vec::new();
    for seed in 0..MULTI_SEEDS {
        match run_chaos_multi(seed, ft) {
            Ok(v) if v.equivalent() => {}
            Ok(v) => bad.push(format!(
                "seed {seed}: multi-job manifests diverge ({} vs {} rows finished)",
                v.baseline.iter().filter(|(_, done, _)| *done).count(),
                v.chaotic.iter().filter(|(_, done, _)| *done).count()
            )),
            Err(e) => bad.push(format!("seed {seed}: {e}")),
        }
    }
    assert!(
        bad.is_empty(),
        "{label}: {}/{MULTI_SEEDS} multi-job schedules failed:\n{}",
        bad.len(),
        bad.join("\n")
    );
}

#[test]
fn chaos_schedules_converge_under_lineage() {
    drive(FtMode::Lineage, "lineage");
}

#[test]
fn chaos_schedules_converge_under_replication() {
    drive(FtMode::Replication(2), "replication(2)");
}

#[test]
fn chaos_schedules_converge_under_erasure_coding() {
    drive(FtMode::ErasureCoding(EcConfig::RS_4_2), "rs(4,2)");
}

#[test]
fn permanent_loss_ends_cleanly_under_lineage() {
    drive_permanent(FtMode::Lineage, "lineage");
}

#[test]
fn permanent_loss_ends_cleanly_under_replication() {
    drive_permanent(FtMode::Replication(2), "replication(2)");
}

#[test]
fn permanent_loss_ends_cleanly_under_erasure_coding() {
    drive_permanent(FtMode::ErasureCoding(EcConfig::RS_4_2), "rs(4,2)");
}

/// `FtMode::None` makes no recovery promise: permanent loss may abandon
/// dependents (`abandoned > 0` in an `Ok`), but it must still terminate
/// cleanly rather than hang or violate invariants.
#[test]
fn permanent_loss_terminates_without_ft() {
    for seed in 0..PERM_SEEDS {
        match run_chaos_permanent(seed, FtMode::None) {
            Ok(_) => {}
            Err(RuntimeError::TaskAbandoned(_)) | Err(RuntimeError::Stalled { .. }) => {}
            Err(e) => panic!("seed {seed}: unclean failure without FT: {e}"),
        }
    }
}

#[test]
fn multi_job_chaos_converges_under_lineage() {
    drive_multi(FtMode::Lineage, "lineage");
}

#[test]
fn multi_job_chaos_converges_under_replication() {
    drive_multi(FtMode::Replication(2), "replication(2)");
}

#[test]
fn multi_job_chaos_converges_under_erasure_coding() {
    drive_multi(FtMode::ErasureCoding(EcConfig::RS_4_2), "rs(4,2)");
}

/// Regicide: kill the boot scheduler, then kill the *newly elected*
/// scheduler while it is still reconstructing state from the raylets —
/// the schedule [`chaos_plan_regicide`] times the second strike just
/// after the election delay expires. The cluster must elect twice and
/// still converge byte-for-byte under every masking FT mode.
#[test]
fn regicide_mid_reconstruction_converges_across_modes() {
    use skadi_runtime::chaos::run_chaos_regicide;

    for ft in [
        FtMode::Lineage,
        FtMode::Replication(2),
        FtMode::ErasureCoding(EcConfig::RS_4_2),
    ] {
        for seed in 0..8 {
            let v = run_chaos_regicide(seed, ft)
                .unwrap_or_else(|e| panic!("{ft:?} seed {seed}: regicide run failed: {e}"));
            assert!(
                v.equivalent(),
                "{ft:?} seed {seed}: outputs diverged after double failover: {:?}",
                v.plan
            );
            assert!(
                v.stats.metrics.counter("elections") >= 2,
                "{ft:?} seed {seed}: expected a second election, got {}",
                v.stats.metrics.counter("elections")
            );
        }
    }
}

/// The headline failover scenario, spelled out: kill the scheduler's
/// boot node mid-job and bring it back. A survivor must win the
/// election, reconstruct state from the raylets, and converge to the
/// failure-free manifest under every masking FT mode.
#[test]
fn scheduler_kill_and_recover_converges_across_modes() {
    use skadi_dcsim::time::SimTime;
    use skadi_runtime::chaos::{chaos_config, chaos_job, chaos_topology};
    use skadi_runtime::cluster::Cluster;
    use skadi_runtime::failure::FailurePlan;

    let topo = chaos_topology();
    let head = topo.servers()[0];
    let job = chaos_job(3);
    let plan = FailurePlan::none().kill_and_recover(
        head,
        SimTime::from_micros(900),
        SimTime::from_micros(3_000),
    );
    for ft in [
        FtMode::Lineage,
        FtMode::Replication(2),
        FtMode::ErasureCoding(EcConfig::RS_4_2),
    ] {
        let cfg = chaos_config(ft);
        let mut calm = Cluster::new(&topo, cfg.clone());
        calm.run(&job).unwrap();
        let mut stormy = Cluster::new(&topo, cfg);
        let stats = stormy
            .run_with_failures(&job, &plan)
            .unwrap_or_else(|e| panic!("{ft:?}: scheduler-kill run failed: {e}"));
        assert!(
            stats.metrics.counter("elections") >= 1,
            "{ft:?}: scheduler died but no election ran"
        );
        assert_eq!(
            calm.output_manifest(),
            stormy.output_manifest(),
            "{ft:?}: outputs diverged after control-plane failover"
        );
    }
}

//! Property-style chaos driver: ≥200 seeded random failure schedules
//! against seeded random jobs (plain tasks + a gang + an actor chain),
//! under each fault-tolerance mode, with the debug invariant checker on.
//!
//! Every schedule is survivable by construction (the scheduler's node is
//! never killed and every kill recovers), so the property is strict: the
//! run must complete with *exactly* the outputs of the failure-free run.
//! Any error — livelock, stall, invariant violation, abandoned task — or
//! any manifest divergence is a recovery-path bug.
//!
//! Replay one schedule with `skadi-cli chaos --seed N` to debug.

use skadi_runtime::chaos::run_chaos;
use skadi_runtime::config::FtMode;
use skadi_store::ec::EcConfig;

const SEEDS: u64 = 68; // x3 modes = 204 schedules

fn drive(ft: FtMode, label: &str) {
    let mut bad = Vec::new();
    for seed in 0..SEEDS {
        match run_chaos(seed, ft) {
            Ok(v) if v.equivalent() => {}
            Ok(v) => {
                let missing: Vec<String> = v
                    .baseline
                    .iter()
                    .zip(v.chaotic.iter())
                    .filter(|(b, c)| b != c)
                    .map(|(b, c)| format!("{:?} vs {:?}", b, c))
                    .collect();
                bad.push(format!(
                    "seed {seed}: manifests diverge ({} rows): {}",
                    missing.len(),
                    missing.join(", ")
                ));
            }
            Err(e) => bad.push(format!("seed {seed}: {e}")),
        }
    }
    assert!(
        bad.is_empty(),
        "{label}: {}/{SEEDS} chaos schedules failed:\n{}",
        bad.len(),
        bad.join("\n")
    );
}

#[test]
fn chaos_schedules_converge_under_lineage() {
    drive(FtMode::Lineage, "lineage");
}

#[test]
fn chaos_schedules_converge_under_replication() {
    drive(FtMode::Replication(2), "replication(2)");
}

#[test]
fn chaos_schedules_converge_under_erasure_coding() {
    drive(FtMode::ErasureCoding(EcConfig::RS_4_2), "rs(4,2)");
}

//! Property-based tests over the core substrates' invariants.

use proptest::prelude::*;

use skadi::arrow::prelude::*;
use skadi::arrow::{ipc, marshal};
use skadi::dcsim::engine::EventQueue;
use skadi::dcsim::time::SimTime;
use skadi::flowgraph::partition::Partitioner;
use skadi::ownership::table::OwnershipTable;
use skadi::store::ec::{decode, encode, EcConfig};
use skadi::store::kv::LocalStore;
use skadi::store::object::ObjectId;
use skadi::store::policy::EvictionPolicy;
use skadi::store::tier::Tier;
use skadi_dcsim::topology::NodeId;

proptest! {
    /// The event queue delivers in non-decreasing time order, FIFO per
    /// instant, for any schedule.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Reed-Solomon round-trips under any erasure pattern that leaves at
    /// least k shards.
    #[test]
    fn ec_round_trips_any_recoverable_erasure(
        payload in prop::collection::vec(any::<u8>(), 0..2048),
        erasures in prop::collection::vec(0usize..6, 0..2),
    ) {
        let cfg = EcConfig::RS_4_2;
        let enc = encode(&payload, cfg).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            enc.shards.iter().cloned().map(Some).collect();
        for e in &erasures {
            shards[*e] = None;
        }
        let got = decode(&shards, enc.original_len, cfg).unwrap();
        prop_assert_eq!(got, payload);
    }

    /// IPC round-trips arbitrary typed batches.
    #[test]
    fn ipc_round_trips(
        ints in prop::collection::vec(prop::option::of(any::<i64>()), 0..100),
        strings in prop::collection::vec(prop::option::of("[a-z0-9]{0,12}"), 0..100),
    ) {
        let n = ints.len().min(strings.len());
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("s", DataType::Utf8, true),
        ]);
        let batch = RecordBatch::try_new(
            schema,
            vec![
                Array::from_opt_i64(ints[..n].to_vec()),
                Array::from_opt_utf8(strings[..n].iter().map(|o| o.as_deref())),
            ],
        ).unwrap();
        let back = ipc::decode(ipc::encode(&batch)).unwrap();
        prop_assert_eq!(&back, &batch);
        // The marshalling baseline must agree too.
        let back2 = marshal::from_rows(&marshal::to_rows(&batch)).unwrap();
        prop_assert_eq!(&back2, &batch);
    }

    /// Hash partitioning is stable and total: same key -> same shard;
    /// every row lands somewhere valid.
    #[test]
    fn partitioner_stable_and_total(
        keys in prop::collection::vec("[a-z]{1,8}", 1..100),
        parts in 1u32..16,
    ) {
        let p = Partitioner::Hash;
        for (i, k) in keys.iter().enumerate() {
            let a = p.assign(k.as_bytes(), i as u64, parts);
            let b = p.assign(k.as_bytes(), (i + 7) as u64, parts);
            prop_assert_eq!(a, b);
            prop_assert!(a < parts);
        }
    }

    /// The local store never exceeds capacity and never loses bytes:
    /// used == sum of resident object sizes after any operation sequence.
    #[test]
    fn store_capacity_invariant(ops in prop::collection::vec((0u64..20, 1u64..40), 1..100)) {
        let mut store = LocalStore::new(NodeId(0), Tier::HostDram, 200, EvictionPolicy::Lru);
        let mut t = 0u64;
        for (id, size) in ops {
            t += 1;
            let _ = store.put(ObjectId(id), size, None, SimTime::from_micros(t));
            prop_assert!(store.used() <= store.capacity());
            let expected: u64 = store.metas().iter().map(|m| m.size).sum();
            prop_assert_eq!(store.used(), expected);
        }
    }

    /// Ownership refcounts never go negative and the entry disappears
    /// exactly when the count hits zero.
    #[test]
    fn ownership_refcount_invariant(increfs in 0u32..20) {
        let mut table = OwnershipTable::new();
        let id = ObjectId(1);
        table.register(id, NodeId(0)).unwrap();
        for _ in 0..increfs {
            table.incref(id).unwrap();
        }
        // Registration grants one reference.
        for i in 0..increfs + 1 {
            let freed = table.decref(id).unwrap();
            prop_assert_eq!(freed, i == increfs);
        }
        prop_assert!(table.get(id).is_err());
        prop_assert!(table.decref(id).is_err());
    }

    /// SQL round-trip: any query we can render from a template parses and
    /// plans without panicking.
    #[test]
    fn sql_template_never_panics(
        val in 0i64..1000,
        limit in 1i64..100,
        desc in any::<bool>(),
        with_group in any::<bool>(),
    ) {
        use skadi::frontends::catalog::Catalog;
        use skadi::frontends::sql::plan_sql;
        let agg = if with_group { "kind, sum(value)" } else { "user_id" };
        let group = if with_group { "GROUP BY kind" } else { "" };
        let dir = if desc { "DESC" } else { "ASC" };
        let order_col = if with_group { "kind" } else { "user_id" };
        let q = format!(
            "SELECT {agg} FROM events WHERE value > {val} {group} ORDER BY {order_col} {dir} LIMIT {limit}"
        );
        let (g, _) = plan_sql(&q, &Catalog::demo()).unwrap();
        g.validate().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end determinism: any seed produces identical repeat runs.
    #[test]
    fn runs_are_deterministic_for_any_seed(seed in 0u64..1000) {
        use skadi::prelude::*;
        use skadi::runtime::task::TaskSpec;
        use skadi::runtime::{Cluster, Job, TaskId};
        let topo = presets::small_disagg_cluster();
        let mut cfg = RuntimeConfig::skadi_gen2();
        cfg.seed = seed;
        let job = Job::new(
            "p",
            vec![
                TaskSpec::new(0, 500.0, 1 << 16),
                TaskSpec::new(1, 500.0, 1 << 16).after(TaskId(0), 1 << 16),
                TaskSpec::new(2, 500.0, 1 << 16).after(TaskId(0), 1 << 16),
            ],
        ).unwrap();
        let a = Cluster::new(&topo, cfg.clone()).run(&job).unwrap();
        let b = Cluster::new(&topo, cfg).run(&job).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.net, b.net);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IR fusion preserves the op sequence: the fused kernel's body,
    /// flattened, is exactly the original chain, and the module stays
    /// verifiable with the same output value count.
    #[test]
    fn ir_fusion_preserves_chain(ops in prop::collection::vec(0u8..3, 1..8)) {
        use skadi::ir::dialect::{rel, tensor};
        use skadi::ir::{Module, PassManager};
        use skadi::ir::types::{frame_ty, ScalarType};

        let mut m = Module::new();
        let mut v = rel::scan(&mut m, "t", frame_ty(&[("a", ScalarType::I64)]));
        let mut expect: Vec<String> = Vec::new();
        for op in &ops {
            v = match op {
                0 => {
                    expect.push("rel.filter".into());
                    rel::filter(&mut m, v, "a > 0")
                }
                1 => {
                    expect.push("rel.project".into());
                    rel::project(&mut m, v, &["a"])
                }
                _ => {
                    expect.push("tensor.map".into());
                    tensor::map(&mut m, v, "f")
                }
            };
        }
        m.mark_output(v);
        let before_outputs = m.outputs().len();
        PassManager::standard().run(&mut m).unwrap();
        m.verify().unwrap();
        prop_assert_eq!(m.outputs().len(), before_outputs);
        // Everything per-row fused into one kernel (chains of length >= 2).
        if ops.len() >= 2 {
            let fused: Vec<_> = m
                .ops()
                .iter()
                .filter(|o| o.name == "kernel.fused")
                .collect();
            prop_assert_eq!(fused.len(), 1);
            let body = fused[0]
                .attr("body")
                .and_then(skadi::ir::Attr::as_str_list)
                .unwrap()
                .to_vec();
            prop_assert_eq!(body, expect);
        }
    }

    /// Physical lowering always produces the requested shard counts and
    /// an acyclic graph, for random linear pipelines.
    #[test]
    fn lowering_shard_counts_hold(
        par in 1u32..12,
        stages in 1usize..6,
        keyed in prop::collection::vec(any::<bool>(), 6),
    ) {
        use skadi::flowgraph::{lower_graph, FlowGraph, LowerConfig};
        use skadi::ir::BackendPolicy;

        let mut g = FlowGraph::new();
        let mut prev = g.add_source("in", 1 << 16, 1 << 20);
        let mut vertices = vec![prev];
        for keyed_edge in keyed.iter().take(stages) {
            let v = g.add_ir_op("rel.filter", 1 << 16, 1 << 20);
            if *keyed_edge {
                g.connect_keyed(prev, v, "k").unwrap();
            } else {
                g.connect(prev, v).unwrap();
            }
            vertices.push(v);
            prev = v;
        }
        let sink = g.add_sink("out");
        g.connect(prev, sink).unwrap();
        let phys = lower_graph(&g, &LowerConfig::new(par, BackendPolicy::cost_based())).unwrap();
        for v in &vertices {
            prop_assert_eq!(phys.shards_of(*v).len(), par as usize);
        }
        prop_assert_eq!(phys.shards_of(sink).len(), 1);
        phys.topo_order().unwrap();
    }

    /// Any small random DAG completes on the cluster with every task
    /// finished, and the makespan is at least the critical-path compute.
    #[test]
    fn random_dags_complete(
        n in 2u64..12,
        edges in prop::collection::vec((0u64..12, 1u64..12), 0..20),
        compute_us in 10.0f64..5000.0,
    ) {
        use skadi::prelude::*;
        use skadi::runtime::task::TaskSpec;
        use skadi::runtime::{Cluster, Job, TaskId};

        let mut tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec::new(i, compute_us, 1 << 12))
            .collect();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            // Forward edges only: guarantees a DAG.
            if a < b {
                tasks[b as usize].inputs.insert(TaskId(a), 1 << 12);
            }
        }
        let job = Job::new("random", tasks).unwrap();
        let topo = presets::small_disagg_cluster();
        let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
        let stats = c.run(&job).unwrap();
        prop_assert_eq!(stats.finished, n);
        prop_assert_eq!(stats.abandoned, 0);
        prop_assert!(
            stats.makespan.as_secs_f64() * 1e6 >= compute_us,
            "makespan {} < one task {}us",
            stats.makespan,
            compute_us
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SQL executor agrees with a naive row-at-a-time reference model
    /// on filter + projection over random data.
    #[test]
    fn sql_exec_matches_reference_model(
        ids in prop::collection::vec(0i64..50, 1..60),
        vals in prop::collection::vec(-100.0f64..100.0, 1..60),
        threshold in -100i64..100,
    ) {
        use skadi::arrow::array::{Array, Value};
        use skadi::arrow::batch::RecordBatch;
        use skadi::arrow::datatype::DataType;
        use skadi::arrow::schema::{Field, Schema};
        use skadi::frontends::exec::MemDb;

        let n = ids.len().min(vals.len());
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("v", DataType::Float64, false),
            ]),
            vec![
                Array::from_i64(ids[..n].to_vec()),
                Array::from_f64(vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let db = MemDb::new().register("t", batch);
        let out = db
            .query(&format!("SELECT id FROM t WHERE v > {threshold}"))
            .unwrap();

        // Reference: plain Rust filter.
        let expect: Vec<i64> = ids[..n]
            .iter()
            .zip(&vals[..n])
            .filter(|(_, v)| **v > threshold as f64)
            .map(|(i, _)| *i)
            .collect();
        prop_assert_eq!(out.num_rows(), expect.len());
        for (r, want) in expect.iter().enumerate() {
            prop_assert_eq!(out.column(0).value_at(r), Value::I64(*want));
        }
    }

    /// Grouped sums agree with a reference accumulation.
    #[test]
    fn sql_group_sum_matches_reference(
        keys in prop::collection::vec(0i64..5, 1..60),
        vals in prop::collection::vec(-10.0f64..10.0, 1..60),
    ) {
        use skadi::arrow::array::{Array, Value};
        use skadi::arrow::batch::RecordBatch;
        use skadi::arrow::datatype::DataType;
        use skadi::arrow::schema::{Field, Schema};
        use skadi::frontends::exec::MemDb;
        use std::collections::BTreeMap;

        let n = keys.len().min(vals.len());
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("v", DataType::Float64, false),
            ]),
            vec![
                Array::from_i64(keys[..n].to_vec()),
                Array::from_f64(vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let db = MemDb::new().register("t", batch);
        let out = db
            .query("SELECT k, sum(v) AS s FROM t GROUP BY k ORDER BY k")
            .unwrap();

        let mut expect: BTreeMap<i64, f64> = BTreeMap::new();
        for (k, v) in keys[..n].iter().zip(&vals[..n]) {
            *expect.entry(*k).or_insert(0.0) += v;
        }
        prop_assert_eq!(out.num_rows(), expect.len());
        for (r, (k, s)) in expect.iter().enumerate() {
            prop_assert_eq!(out.column_by_name("k").unwrap().value_at(r), Value::I64(*k));
            match out.column_by_name("s").unwrap().value_at(r) {
                Value::F64(got) => prop_assert!((got - s).abs() < 1e-6),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}

/// Deterministic pseudo-facts for a `(seed, node)` pair — varied enough
/// that locality, load, and slot counts all differ across nodes.
fn synthetic_facts(seed: u64) -> impl Fn(NodeId) -> skadi::runtime::NodeFacts {
    move |node: NodeId| {
        let h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1000_0000_01B3u64.wrapping_mul(node.0 as u64 + 1));
        skadi::runtime::NodeFacts {
            local_input_bytes: (h % 64) << 20,
            load: (h >> 16) as u32 % 16,
            free_slots: (h >> 32) as u32 % 4,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every placement policy picks a member of `eligible`, and two
    /// placers driven in lockstep over the same facts pick identically —
    /// placement is a pure function of (eligible, facts, cursor), never
    /// of wall clock or ambient randomness.
    #[test]
    fn placement_picks_eligible_and_is_deterministic(
        n_nodes in 1u32..40,
        fact_seeds in prop::collection::vec(any::<u64>(), 1..25),
    ) {
        use skadi::runtime::{Placer, PlacementPolicy};
        let eligible: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        for policy in PlacementPolicy::ALL {
            let mut a = Placer::new(policy);
            let mut b = Placer::new(policy);
            for &seed in &fact_seeds {
                let pick = a.place(&eligible, synthetic_facts(seed)).unwrap();
                prop_assert!(
                    eligible.contains(&pick),
                    "{policy}: picked {pick:?} outside the eligible set"
                );
                prop_assert_eq!(
                    pick,
                    b.place(&eligible, synthetic_facts(seed)).unwrap(),
                    "{} placers diverged on identical inputs", policy
                );
            }
            prop_assert!(a.place(&[], synthetic_facts(0)).is_none());
        }
    }

    /// Scheduler failover must not disturb the rotation: a placer that
    /// rebuilds mid-sequence ([`Placer::rebuild_for_failover`], the
    /// newly elected scheduler's path) produces exactly the placements
    /// of one that never failed — under every policy, at any failover
    /// point.
    #[test]
    fn placement_cursor_survives_failover(
        n_nodes in 1u32..16,
        steps in 2usize..40,
        fail_at in 0usize..40,
        seed in any::<u64>(),
    ) {
        use skadi::runtime::{Placer, PlacementPolicy};
        let eligible: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        for policy in PlacementPolicy::ALL {
            let mut steady = Placer::new(policy);
            let mut failing = Placer::new(policy);
            for i in 0..steps {
                if i == fail_at % steps {
                    failing.rebuild_for_failover();
                }
                let f = seed.wrapping_add(i as u64);
                prop_assert_eq!(
                    steady.place(&eligible, synthetic_facts(f)).unwrap(),
                    failing.place(&eligible, synthetic_facts(f)).unwrap(),
                    "{} diverged after failover at step {}", policy, i
                );
            }
        }
    }

    /// Round-robin never double-places: over one full rotation with all
    /// nodes eligible, every node is used exactly once — even when the
    /// scheduler fails over mid-rotation.
    #[test]
    fn round_robin_rotation_is_exact_despite_failover(
        n_nodes in 1u32..24,
        fail_at in 0u32..24,
    ) {
        use skadi::runtime::{NodeFacts, Placer, PlacementPolicy};
        let eligible: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        let idle = |_: NodeId| NodeFacts {
            local_input_bytes: 0,
            load: 0,
            free_slots: 1,
        };
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..n_nodes {
            if i == fail_at % n_nodes {
                p.rebuild_for_failover();
            }
            let pick = p.place(&eligible, idle).unwrap();
            prop_assert!(
                seen.insert(pick),
                "round-robin double-placed {pick:?} within one rotation"
            );
        }
        prop_assert_eq!(seen.len(), n_nodes as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any layered DAG, traced, yields a well-formed span tree, and two
    /// identical runs export byte-identical Chrome JSON.
    #[test]
    fn traced_runs_are_wellformed_and_byte_reproducible(
        widths in prop::collection::vec(1u64..4, 1..4),
        compute in 10.0f64..500.0,
        bytes_pow in 8u32..18,
        gen2 in any::<bool>(),
    ) {
        use skadi::dcsim::topology::presets;
        use skadi::runtime::task::TaskSpec;
        use skadi::runtime::{Cluster, Job, RuntimeConfig};

        // Layered DAG: each task consumes every task of the previous
        // layer (shuffle-like), so resolution, tiering, and scheduling
        // all fire.
        let bytes = 1u64 << bytes_pow;
        let mut tasks = Vec::new();
        let mut prev = Vec::new();
        let mut id = 0u64;
        for w in &widths {
            let mut layer = Vec::new();
            for _ in 0..*w {
                let mut s = TaskSpec::new(id, compute, bytes);
                for p in &prev {
                    s = s.after(*p, bytes);
                }
                layer.push(s.id);
                tasks.push(s);
                id += 1;
            }
            prev = layer;
        }
        let job = Job::new("layered", tasks).unwrap();
        let topo = presets::small_disagg_cluster();
        let cfg = if gen2 {
            RuntimeConfig::skadi_gen2()
        } else {
            RuntimeConfig::skadi_gen1()
        };
        let run = || {
            let mut c = Cluster::new(&topo, cfg.clone().with_tracing(true));
            c.run(&job).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert!(a.trace.validate().is_ok(), "{:?}", a.trace.validate());
        prop_assert_eq!(a.trace.to_chrome_json(), b.trace.to_chrome_json());
        // Every finished task has its umbrella span.
        use skadi::dcsim::span::Category;
        prop_assert_eq!(a.trace.count_category(Category::Task) as u64, a.finished);
    }
}
